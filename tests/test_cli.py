"""CLI, summary and DOT-export tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.api import gs_nc
from repro.dominance.graph import DominanceGraph

from tests.conftest import paper_attributes


class TestCLI:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "sf+slashdot", "--scale",
                     "0.05"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "k_max" in out

    def test_search(self, capsys):
        code = main([
            "search", "--dataset", "sf+slashdot", "--scale", "0.1",
            "--k", "4", "--query-size", "2", "--members",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAC search" in out

    def test_case(self, capsys):
        assert main(["case", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "Jiawei Han" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSummary:
    def test_summary_nonempty(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        text = res.summary()
        assert "partition" in text
        assert "|H^t_k|=7" in text

    def test_summary_empty(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2], 6, 9.0, paper_region)
        assert "no communities" in res.summary()

    def test_summary_truncates(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        text = res.summary(max_rows=0)
        assert "more" in text or len(res.partitions) == 0


class TestDotExport:
    def test_fig4b_dot(self, paper_region):
        attrs = {v: np.asarray(x) for v, x in paper_attributes().items()
                 if v <= 7}
        gd = DominanceGraph(attrs, paper_region)
        dot = gd.to_dot(labels={v: f"v{v}" for v in range(1, 8)})
        assert dot.startswith("digraph Gd {")
        assert '"2" -> "3"' in dot
        assert '"4" -> "1"' in dot
        assert '"3" -> "7"' in dot
        assert '"2" -> "7"' not in dot  # transitive reduction
        assert dot.count("rank=same") == 3  # three layers
