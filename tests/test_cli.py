"""CLI, summary and DOT-export tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.api import gs_nc
from repro.dominance.graph import DominanceGraph

from tests.conftest import paper_attributes


class TestCLI:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "sf+slashdot", "--scale",
                     "0.05"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "k_max" in out

    def test_search(self, capsys):
        code = main([
            "search", "--dataset", "sf+slashdot", "--scale", "0.1",
            "--k", "4", "--query-size", "2", "--members",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAC search" in out

    def test_case(self, capsys):
        assert main(["case", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "Jiawei Han" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_library_errors_are_clean(self, capsys):
        # ReproError from any command surfaces as error + exit 2
        code = main([
            "search", "--dataset", "sf+slashdot", "--scale", "0.05",
            "--k", "4", "--query-size", "2", "--j", "0",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_search_explain(self, capsys):
        code = main([
            "search", "--dataset", "sf+slashdot", "--scale", "0.05",
            "--k", "4", "--query-size", "2", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan for" in out and "range filter" in out

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_search_json(self, capsys):
        import json

        code = main([
            "search", "--dataset", "sf+slashdot", "--scale", "0.05",
            "--k", "4", "--query-size", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"]["k"] == 4
        assert "partitions" in payload and "engine" in payload
        for entry in payload["partitions"]:
            assert sorted(entry) == ["communities", "weight"]

    def test_search_explain_json(self, capsys):
        import json

        code = main([
            "search", "--dataset", "sf+slashdot", "--scale", "0.05",
            "--k", "4", "--query-size", "2", "--explain", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["searcher"] in ("GS-NC", "LS-NC")
        assert "plan for" in payload["summary"]


class TestServeCommand:
    def test_bad_service_config_is_clean_error(self, capsys):
        code = main([
            "serve", "--dataset", "sf+slashdot", "--scale", "0.05",
            "--workers", "0",
        ])
        assert code == 2
        assert "max_concurrency" in capsys.readouterr().err

    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--dataset", "fl+yelp", "--scale", "0.1",
            "--snapshot", "idx/", "--port", "0", "--workers", "8",
            "--queue-depth", "2", "--default-deadline", "1.5",
        ])
        assert args.func.__name__ == "cmd_serve"
        assert args.snapshot == "idx/"
        assert args.workers == 8
        assert args.default_deadline == 1.5


class TestBatchCommand:
    BASE = ["batch", "--dataset", "sf+slashdot", "--scale", "0.05"]

    def _write(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_batch_runs_and_reports_cache(self, capsys, tmp_path):
        line = '{"query_size": 2, "query_seed": 1, "k": 4, "algorithm": "local"}'
        path = self._write(tmp_path, ["# comment", line, "", line])
        assert main([*self.BASE, "--requests", path, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "line-2:" in out and "line-4:" in out
        assert "batch: 2 request(s)" in out
        assert "cache hits=" in out

    def test_batch_rejects_bad_json(self, capsys, tmp_path):
        path = self._write(tmp_path, ["{not json"])
        assert main([*self.BASE, "--requests", path]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_batch_rejects_bad_request(self, capsys, tmp_path):
        path = self._write(
            tmp_path, ['{"query": [1, 2], "k": 4, "problem": "best"}']
        )
        assert main([*self.BASE, "--requests", path]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err and "problem" in err

    def test_batch_requires_k(self, capsys, tmp_path):
        path = self._write(tmp_path, ['{"query": [1, 2]}'])
        assert main([*self.BASE, "--requests", path]) == 2
        assert "missing required field 'k'" in capsys.readouterr().err

    def test_batch_empty_input(self, capsys, tmp_path):
        path = self._write(tmp_path, ["# only a comment"])
        assert main([*self.BASE, "--requests", path]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_batch_missing_file(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main([*self.BASE, "--requests", missing]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_batch_region_conflicts_with_sigma(self, capsys, tmp_path):
        path = self._write(tmp_path, [
            '{"query": [1, 2], "k": 4, "sigma": 0.02,'
            ' "region": {"lows": [0.29, 0.29], "highs": [0.31, 0.31]}}'
        ])
        assert main([*self.BASE, "--requests", path]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_batch_invalid_region_bounds_name_the_line(
        self, capsys, tmp_path
    ):
        path = self._write(tmp_path, [
            '{"query": [1, 2], "k": 4,'
            ' "region": {"lows": [0.5, 0.5], "highs": [0.3, 0.3]}}'
        ])
        assert main([*self.BASE, "--requests", path]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err and "lo <= hi" in err

    def test_batch_malformed_region_spec(self, capsys, tmp_path):
        path = self._write(
            tmp_path, ['{"query": [1, 2], "k": 4, "region": {"low": [0.1]}}']
        )
        assert main([*self.BASE, "--requests", path]) == 2
        assert "'lows' and 'highs'" in capsys.readouterr().err

    def test_batch_infers_topj_from_j(self, capsys, tmp_path):
        # mirror of `search --j 3`: an explicit j > 1 means top-j
        path = self._write(
            tmp_path,
            ['{"query_size": 2, "query_seed": 1, "k": 4, "j": 2,'
             ' "algorithm": "local"}'],
        )
        assert main([*self.BASE, "--requests", path, "--workers", "1"]) == 0
        assert "line-1:" in capsys.readouterr().out

    def test_batch_unknown_user_names_line(self, capsys, tmp_path):
        path = self._write(
            tmp_path, ['{"query": [99999999], "k": 4}']
        )
        assert main([*self.BASE, "--requests", path]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err and "99999999" in err

    def test_batch_region_dimension_mismatch(self, capsys, tmp_path):
        path = self._write(tmp_path, [
            '{"query": [1, 2], "k": 4,'
            ' "region": {"lows": [0.4], "highs": [0.6]}}'  # d=2 vs d=3
        ])
        assert main([*self.BASE, "--requests", path]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err and "d=2" in err

    def test_batch_badly_typed_field_is_clean_error(
        self, capsys, tmp_path
    ):
        path = self._write(tmp_path, ['{"query": [1, 2], "k": "four"}'])
        assert main([*self.BASE, "--requests", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: line 1") and "Traceback" not in err


class TestIndexCommand:
    DATASET = ["--dataset", "sf+slashdot", "--scale", "0.05"]

    def _build(self, tmp_path, capsys, *extra):
        out = str(tmp_path / "snap")
        code = main(["index", "build", *self.DATASET, "--out", out, *extra])
        assert code == 0, capsys.readouterr().err
        return out

    def test_build_info_verify_round_trip(self, capsys, tmp_path):
        warm = tmp_path / "warm.jsonl"
        warm.write_text('{"query_size": 2, "query_seed": 1, "k": 4}\n')
        out = self._build(tmp_path, capsys, "--warm", str(warm))
        built = capsys.readouterr().out
        assert "snapshot written" in built
        assert "fingerprint  sha256:" in built
        assert "filter=1 core=1 dominance=1" in built

        assert main(["index", "info", out]) == 0
        info = capsys.readouterr().out
        assert "repro-index-snapshot v1" in info
        assert "g-tree" in info

        assert main(["index", "verify", out]) == 0
        assert "snapshot ok" in capsys.readouterr().out

        assert main([
            "index", "verify", out, *self.DATASET,
        ]) == 0
        assert "verified against --dataset" in capsys.readouterr().out

    def test_verify_wrong_dataset_is_clean_error(self, capsys, tmp_path):
        out = self._build(tmp_path, capsys)
        capsys.readouterr()
        code = main([
            "index", "verify", out, "--dataset", "sf+slashdot",
            "--scale", "0.1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_info_on_missing_snapshot_is_clean_error(
        self, capsys, tmp_path
    ):
        code = main(["index", "info", str(tmp_path / "absent")])
        assert code == 2
        assert "not an index snapshot" in capsys.readouterr().err

    def test_build_no_gtree(self, capsys, tmp_path):
        out = self._build(tmp_path, capsys, "--no-gtree")
        assert "g-tree       absent" in capsys.readouterr().out
        assert main(["index", "verify", out]) == 0

    def test_build_rejects_bad_warm_file(self, capsys, tmp_path):
        warm = tmp_path / "warm.jsonl"
        warm.write_text('{"query": [1, 2]}\n')  # missing k
        out = str(tmp_path / "snap")
        code = main([
            "index", "build", *self.DATASET, "--out", out,
            "--warm", str(warm),
        ])
        assert code == 2
        assert "missing required field 'k'" in capsys.readouterr().err

    def test_loadable_by_engine(self, capsys, tmp_path):
        from repro import MACEngine, datasets

        out = self._build(tmp_path, capsys)
        ds = datasets.load_dataset("sf+slashdot", scale=0.05, seed=7)
        engine = MACEngine.load(out, ds.network)
        assert engine.network.has_gtree


class TestSummary:
    def test_summary_nonempty(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        text = res.summary()
        assert "partition" in text
        assert "|H^t_k|=7" in text

    def test_summary_empty(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2], 6, 9.0, paper_region)
        assert "no communities" in res.summary()

    def test_summary_truncates(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        text = res.summary(max_rows=0)
        assert "more" in text or len(res.partitions) == 0


class TestDotExport:
    def test_fig4b_dot(self, paper_region):
        attrs = {v: np.asarray(x) for v, x in paper_attributes().items()
                 if v <= 7}
        gd = DominanceGraph(attrs, paper_region)
        dot = gd.to_dot(labels={v: f"v{v}" for v in range(1, 8)})
        assert dot.startswith("digraph Gd {")
        assert '"2" -> "3"' in dot
        assert '"4" -> "1"' in dot
        assert '"3" -> "7"' in dot
        assert '"2" -> "7"' not in dot  # transitive reduction
        assert dot.count("rank=same") == 3  # three layers
