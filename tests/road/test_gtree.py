"""G-tree correctness: exact agreement with plain Dijkstra."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.road.dijkstra import bounded_dijkstra, dijkstra, network_distance
from repro.road.gtree import GTree
from repro.road.network import RoadNetwork, SpatialPoint

from tests.conftest import paper_road


def _grid_road(side: int, seed: int) -> RoadNetwork:
    rng = np.random.default_rng(seed)
    road = RoadNetwork()
    for i in range(side):
        for j in range(side):
            road.add_vertex(i * side + j, (float(j), float(i)))
    for i in range(side):
        for j in range(side):
            v = i * side + j
            if j + 1 < side and rng.random() < 0.9:
                road.add_edge(v, v + 1, float(rng.uniform(1, 5)))
            if i + 1 < side and rng.random() < 0.9:
                road.add_edge(v, v + side, float(rng.uniform(1, 5)))
    return road


class TestConstruction:
    def test_leaf_size_validation(self):
        with pytest.raises(GraphError):
            GTree(paper_road(), leaf_size=1)

    def test_every_vertex_in_exactly_one_leaf(self):
        road = _grid_road(8, 0)
        gt = GTree(road, leaf_size=8)
        assert gt.num_leaves >= 2
        for v in road.vertices():
            gt.leaf_of(v)  # must not raise

    def test_unknown_vertex(self):
        gt = GTree(paper_road(), leaf_size=4)
        with pytest.raises(GraphError):
            gt.leaf_of(999)


class TestRangeQuery:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("bound", [3.0, 8.0, 20.0])
    def test_matches_bounded_dijkstra(self, seed, bound):
        road = _grid_road(7, seed)
        gt = GTree(road, leaf_size=6)
        for source in [0, 24, 48]:
            expected = bounded_dijkstra(road, source, bound)
            actual = gt.range_query(source, bound)
            assert set(actual) == set(expected)
            for v, d in expected.items():
                assert actual[v] == pytest.approx(d)

    def test_unbounded_matches_full_dijkstra(self):
        road = _grid_road(6, 5)
        gt = GTree(road, leaf_size=5)
        expected = dijkstra(road, 7)
        actual = gt.range_query(7, float("inf"))
        assert set(actual) == set(expected)
        for v, d in expected.items():
            assert actual[v] == pytest.approx(d)

    def test_source_on_edge(self):
        road = _grid_road(6, 2)
        gt = GTree(road, leaf_size=5)
        u, v, w = next(iter(road.edges()))
        p = SpatialPoint.on_edge(u, v, w / 3)
        expected = bounded_dijkstra(road, p, 10.0)
        actual = gt.range_query(p, 10.0)
        assert set(actual) == set(expected)
        for x, d in expected.items():
            assert actual[x] == pytest.approx(d)

    def test_small_bound_stays_in_source_leaf(self):
        road = _grid_road(8, 1)
        gt = GTree(road, leaf_size=8)
        actual = gt.range_query(0, 1.0)
        expected = bounded_dijkstra(road, 0, 1.0)
        assert set(actual) == set(expected)

    def test_disconnected_component_unreachable(self):
        road = _grid_road(5, 3)
        road.add_vertex(999, (50.0, 50.0))
        road.add_vertex(998, (51.0, 50.0))
        road.add_edge(998, 999, 1.0)
        gt = GTree(road, leaf_size=5)
        result = gt.range_query(0, 100.0)
        assert 999 not in result and 998 not in result


class TestDistance:
    def test_matches_network_distance(self):
        road = _grid_road(6, 4)
        gt = GTree(road, leaf_size=5)
        rng = np.random.default_rng(0)
        vertices = sorted(road.vertices())
        for _ in range(10):
            a, b = rng.choice(vertices, 2)
            assert gt.distance(int(a), int(b)) == pytest.approx(
                network_distance(road, int(a), int(b))
            )

    def test_paper_road_distances(self):
        road = paper_road()
        gt = GTree(road, leaf_size=4)
        assert gt.distance(7, 6) == pytest.approx(7.0)
        assert gt.distance(3, 6) == pytest.approx(9.0)


class TestQueryDistanceFilter:
    def test_matches_dijkstra_backend(self):
        from repro.road.dijkstra import query_distances

        road = _grid_road(7, 6)
        gt = GTree(road, leaf_size=6)
        points = [SpatialPoint.at_vertex(0), SpatialPoint.at_vertex(30)]
        for bound in (5.0, 12.0):
            expected = query_distances(road, points, bound)
            actual = gt.query_distances(points, bound)
            assert set(actual) == set(expected)
            for v, d in expected.items():
                assert actual[v] == pytest.approx(d)
