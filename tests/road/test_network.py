"""RoadNetwork and SpatialPoint unit tests."""

import pytest

from repro.errors import GraphError
from repro.road.network import RoadNetwork, SpatialPoint


class TestSpatialPoint:
    def test_vertex_point(self):
        p = SpatialPoint.at_vertex(3)
        assert p.on_vertex
        assert p.u == 3 and p.v is None and p.offset == 0.0

    def test_edge_point(self):
        p = SpatialPoint.on_edge(1, 2, 0.5)
        assert not p.on_vertex
        assert (p.u, p.v, p.offset) == (1, 2, 0.5)

    def test_vertex_point_with_offset_rejected(self):
        with pytest.raises(GraphError):
            SpatialPoint(1, None, 0.5)

    def test_negative_offset_rejected(self):
        with pytest.raises(GraphError):
            SpatialPoint(1, 2, -0.1)

    def test_frozen(self):
        p = SpatialPoint.at_vertex(1)
        with pytest.raises(AttributeError):
            p.u = 2


class TestRoadNetwork:
    def test_add_edge_and_weight(self):
        r = RoadNetwork()
        r.add_edge(1, 2, 5.0)
        assert r.weight(1, 2) == 5.0
        assert r.weight(2, 1) == 5.0
        assert r.num_edges == 1

    def test_edge_reweight_keeps_count(self):
        r = RoadNetwork()
        r.add_edge(1, 2, 5.0)
        r.add_edge(1, 2, 7.0)
        assert r.num_edges == 1
        assert r.weight(1, 2) == 7.0

    def test_negative_weight_rejected(self):
        r = RoadNetwork()
        with pytest.raises(GraphError):
            r.add_edge(1, 2, -1.0)

    def test_self_loop_rejected(self):
        r = RoadNetwork()
        with pytest.raises(GraphError):
            r.add_edge(1, 1, 1.0)

    def test_coordinates(self):
        r = RoadNetwork()
        r.add_vertex(1, (2.0, 3.0))
        r.add_vertex(2)
        assert r.coordinates(1) == (2.0, 3.0)
        assert r.has_coordinates(1)
        assert not r.has_coordinates(2)
        with pytest.raises(GraphError):
            r.coordinates(2)

    def test_validate_point(self):
        r = RoadNetwork()
        r.add_edge(1, 2, 4.0)
        r.validate_point(SpatialPoint.at_vertex(1))
        r.validate_point(SpatialPoint.on_edge(1, 2, 3.0))
        with pytest.raises(GraphError):
            r.validate_point(SpatialPoint.at_vertex(9))
        with pytest.raises(GraphError):
            r.validate_point(SpatialPoint.on_edge(1, 2, 5.0))

    def test_subgraph(self):
        r = RoadNetwork()
        r.add_vertex(1, (0, 0))
        r.add_edge(1, 2, 1.0)
        r.add_edge(2, 3, 1.0)
        s = r.subgraph([1, 2])
        assert set(s.vertices()) == {1, 2}
        assert s.num_edges == 1
        assert s.coordinates(1) == (0.0, 0.0)

    def test_degree_statistics(self, road):
        assert road.num_vertices == 15
        assert road.average_degree() == pytest.approx(
            2 * road.num_edges / 15
        )
        assert road.max_degree() >= 3


class TestFlatWeightPatch:
    """Weight-only edge updates patch the cached CSR view in place."""

    def make(self) -> RoadNetwork:
        r = RoadNetwork()
        r.add_edge(1, 2, 3.0)
        r.add_edge(2, 3, 4.0)
        r.add_edge(1, 3, 5.0)
        return r

    def test_weight_update_keeps_the_cached_view(self):
        r = self.make()
        fg = r.flat()
        r.add_edge(1, 2, 9.0)  # existing edge: weight-only
        assert r.flat() is fg  # the CSR view was patched, not rebuilt
        ru, rv = fg.row_of(1), fg.row_of(2)
        s, e = fg.indptr[ru], fg.indptr[ru + 1]
        assert fg.weights[s:e][fg.indices[s:e] == rv] == 9.0
        s, e = fg.indptr[rv], fg.indptr[rv + 1]
        assert fg.weights[s:e][fg.indices[s:e] == ru] == 9.0
        assert r.weight(1, 2) == 9.0

    def test_new_edge_still_invalidates(self):
        r = self.make()
        fg = r.flat()
        r.add_edge(3, 4, 1.0)  # topology change: CSR must rebuild
        assert r.flat() is not fg
        assert r.flat().n == 4

    def test_readonly_weights_are_copied_not_mutated(self):
        r = self.make()
        fg = r.flat()
        original = fg.weights
        original.flags.writeable = False
        r.add_edge(1, 2, 9.0)
        assert r.flat() is fg
        assert fg.weights is not original  # copy-on-write for mmap views
        assert original.flags.writeable is False
