"""Shortest-path tests, cross-checked against networkx and the paper."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.road.dijkstra import (
    bounded_dijkstra,
    dijkstra,
    network_distance,
    query_distances,
)
from repro.road.network import RoadNetwork, SpatialPoint

from tests.conftest import paper_road


def _to_nx(road: RoadNetwork) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(road.vertices())
    for u, v, w in road.edges():
        g.add_edge(u, v, weight=w)
    return g


def _random_road(n: int, seed: int) -> RoadNetwork:
    rng = np.random.default_rng(seed)
    road = RoadNetwork()
    for v in range(n):
        road.add_vertex(v, tuple(rng.uniform(0, 100, 2)))
    for v in range(1, n):
        u = int(rng.integers(v))
        road.add_edge(u, v, float(rng.uniform(1, 10)))
    extra = n // 2
    for _ in range(extra):
        u, v = rng.integers(n, size=2)
        if u != v:
            road.add_edge(int(u), int(v), float(rng.uniform(1, 10)))
    return road


class TestPaperDistances:
    """The exact numbers the paper derives from Fig. 1(b)."""

    def test_dist_r7_r6_is_7(self, road):
        assert network_distance(road, 7, 6) == pytest.approx(7.0)

    def test_dist_r3_r6_is_9(self, road):
        assert network_distance(road, 3, 6) == pytest.approx(9.0)

    def test_query_distance_of_v7(self, road):
        """D_Q(v7) = 7 for Q = {v2, v3, v6} (Section II-B)."""
        points = [SpatialPoint.at_vertex(q) for q in (2, 3, 6)]
        dq = query_distances(road, points)
        assert dq[7] == pytest.approx(7.0)

    def test_query_distance_of_subgraph(self, road):
        """D_Q({v2,v3,v6,v7}) = dist(r3, r6) = 9."""
        points = [SpatialPoint.at_vertex(q) for q in (2, 3, 6)]
        dq = query_distances(road, points)
        assert max(dq[v] for v in (2, 3, 6, 7)) == pytest.approx(9.0)

    def test_periphery_beyond_t9(self, road):
        points = [SpatialPoint.at_vertex(q) for q in (2, 3, 6)]
        dq = query_distances(road, points, bound=9.0)
        assert set(dq) == {1, 2, 3, 4, 5, 6, 7}


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_single_source_matches(self, seed):
        road = _random_road(40, seed)
        expected = nx.single_source_dijkstra_path_length(
            _to_nx(road), 0, weight="weight"
        )
        actual = dijkstra(road, 0)
        assert set(actual) == set(expected)
        for v, d in expected.items():
            assert actual[v] == pytest.approx(d)

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_is_prefix(self, seed):
        road = _random_road(40, seed)
        full = dijkstra(road, 0)
        bound = float(np.median(list(full.values())))
        limited = bounded_dijkstra(road, 0, bound)
        assert set(limited) == {v for v, d in full.items() if d <= bound}
        for v, d in limited.items():
            assert d == pytest.approx(full[v])


class TestEdgePoints:
    def test_source_on_edge(self):
        road = RoadNetwork()
        road.add_edge(1, 2, 10.0)
        road.add_edge(2, 3, 5.0)
        p = SpatialPoint.on_edge(1, 2, 4.0)
        d = dijkstra(road, p)
        assert d[1] == pytest.approx(4.0)
        assert d[2] == pytest.approx(6.0)
        assert d[3] == pytest.approx(11.0)

    def test_same_edge_shortcut(self):
        """Two points on one edge: along-edge path may beat endpoints."""
        road = RoadNetwork()
        road.add_edge(1, 2, 10.0)
        road.add_edge(1, 3, 1.0)
        road.add_edge(3, 2, 1.0)
        a = SpatialPoint.on_edge(1, 2, 4.0)
        b = SpatialPoint.on_edge(1, 2, 5.0)
        assert network_distance(road, a, b) == pytest.approx(1.0)

    def test_same_edge_opposite_orientation(self):
        road = RoadNetwork()
        road.add_edge(1, 2, 10.0)
        a = SpatialPoint.on_edge(1, 2, 4.0)
        b = SpatialPoint.on_edge(2, 1, 5.0)  # = offset 5 from u=2
        assert network_distance(road, a, b) == pytest.approx(1.0)

    def test_disconnected_is_inf(self):
        road = RoadNetwork()
        road.add_edge(1, 2, 1.0)
        road.add_vertex(9)
        assert math.isinf(network_distance(road, 1, 9))


class TestQueryDistances:
    def test_max_aggregation(self):
        road = paper_road()
        points = [SpatialPoint.at_vertex(q) for q in (2, 6)]
        dq = query_distances(road, points)
        d2 = dijkstra(road, 2)
        d6 = dijkstra(road, 6)
        for v, d in dq.items():
            assert d == pytest.approx(max(d2[v], d6[v]))

    def test_bound_filters_every_query(self):
        road = paper_road()
        points = [SpatialPoint.at_vertex(q) for q in (2, 6)]
        dq = query_distances(road, points, bound=5.0)
        assert all(d <= 5.0 for d in dq.values())
        # v4 is within 5 of r2 but 8 of r6 -> excluded.
        assert 4 not in dq
