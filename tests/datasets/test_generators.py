"""Dataset generator tests: determinism, shape statistics, validity."""

import numpy as np
import pytest

from repro.datasets.attributes import KINDS, generate_attributes
from repro.datasets.locations import checkin_locations
from repro.datasets.roads import grid_road
from repro.datasets.socials import bfs_partition, power_law_social
from repro.errors import DatasetError
from repro.graph.core import core_decomposition


class TestGridRoad:
    def test_deterministic(self):
        a = grid_road(400, seed=3)
        b = grid_road(400, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_connected(self):
        road = grid_road(900, seed=1)
        start = next(road.vertices())
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in road.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert len(seen) == road.num_vertices

    def test_road_like_average_degree(self):
        road = grid_road(2000, seed=2)
        assert 2.0 <= road.average_degree() <= 3.2  # Table II: ~2.5

    def test_coordinates_present(self):
        road = grid_road(100, seed=0)
        for v in road.vertices():
            assert road.has_coordinates(v)

    def test_weights_positive(self):
        road = grid_road(200, seed=5)
        assert all(w > 0 for _u, _v, w in road.edges())

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            grid_road(2)

    def test_bad_drop_fraction(self):
        with pytest.raises(DatasetError):
            grid_road(100, drop_fraction=1.0)


class TestPowerLawSocial:
    def test_deterministic(self):
        a, _ = power_law_social(300, 6.0, seed=4)
        b, _ = power_law_social(300, 6.0, seed=4)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_average_degree_close(self):
        g, _ = power_law_social(1500, 8.0, seed=1)
        assert 6.0 <= g.average_degree() <= 11.0

    def test_heavy_tail(self):
        g, _ = power_law_social(1500, 6.0, seed=2)
        assert g.max_degree() > 5 * g.average_degree()

    def test_core_depth_from_planting(self):
        g, _ = power_law_social(1200, 6.0, seed=3)
        k_max = max(core_decomposition(g).values())
        assert k_max >= 16  # deep enough for the paper's k sweeps

    def test_groups_partition_vertices(self):
        g, groups = power_law_social(500, 5.0, seed=5)
        union = set()
        for grp in groups:
            assert not (union & set(grp))
            union |= set(grp)
        assert union == set(g.vertices())

    def test_bfs_partition_sizes(self):
        g, _ = power_law_social(400, 5.0, seed=6)
        rng = np.random.default_rng(0)
        groups = bfs_partition(g, 8, rng)
        assert sum(len(x) for x in groups) == 400


class TestAttributes:
    @pytest.mark.parametrize("kind", KINDS)
    def test_shape_and_range(self, kind):
        x = generate_attributes(500, 4, kind=kind, seed=1)
        assert x.shape == (500, 4)
        assert x.min() >= 0.0 and x.max() <= 10.0

    def test_deterministic(self):
        a = generate_attributes(100, 3, seed=2)
        b = generate_attributes(100, 3, seed=2)
        assert np.array_equal(a, b)

    def test_correlated_really_correlated(self):
        x = generate_attributes(3000, 2, kind="correlated", seed=3)
        r = np.corrcoef(x[:, 0], x[:, 1])[0, 1]
        assert r > 0.85

    def test_anticorrelated_negative(self):
        x = generate_attributes(3000, 2, kind="anticorrelated", seed=4)
        r = np.corrcoef(x[:, 0], x[:, 1])[0, 1]
        assert r < -0.3

    def test_independent_uncorrelated(self):
        x = generate_attributes(3000, 2, kind="independent", seed=5)
        r = np.corrcoef(x[:, 0], x[:, 1])[0, 1]
        assert abs(r) < 0.1

    def test_real_zero_inflated(self):
        x = generate_attributes(3000, 3, kind="real", seed=6)
        zero_rows = np.sum(np.all(x < 1e-9, axis=1))
        assert zero_rows > 1000  # most Yelp users have zero compliments

    def test_unknown_kind(self):
        with pytest.raises(DatasetError):
            generate_attributes(10, 2, kind="weird")

    def test_bad_dimensions(self):
        with pytest.raises(DatasetError):
            generate_attributes(10, 0)


class TestCheckinLocations:
    def test_all_users_mapped_to_road_vertices(self):
        road = grid_road(300, seed=0)
        locs = checkin_locations(road, range(50), seed=1)
        assert set(locs) == set(range(50))
        for p in locs.values():
            assert p.on_vertex
            assert p.u in road

    def test_groups_colocate_friends(self):
        """Users of one group must be much closer to each other than to
        a random other group (the LBSN property)."""
        road = grid_road(900, seed=2)
        groups = [list(range(0, 25)), list(range(25, 50))]
        locs = checkin_locations(
            road, range(50), seed=3, groups=groups, scatter=0.02
        )
        coords = {u: np.asarray(road.coordinates(locs[u].u)) for u in range(50)}

        def spread(users):
            pts = np.asarray([coords[u] for u in users])
            return float(np.linalg.norm(pts - pts.mean(axis=0), axis=1).mean())

        within = (spread(groups[0]) + spread(groups[1])) / 2
        between = float(
            np.linalg.norm(
                np.mean([coords[u] for u in groups[0]], axis=0)
                - np.mean([coords[u] for u in groups[1]], axis=0)
            )
        )
        assert between > within

    def test_requires_coordinates(self):
        from repro.road.network import RoadNetwork

        road = RoadNetwork()
        road.add_edge(1, 2, 1.0)
        with pytest.raises(DatasetError):
            checkin_locations(road, [1], seed=0)
