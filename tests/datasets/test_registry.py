"""Registry and case-study dataset tests."""

import numpy as np
import pytest

from repro.datasets.aminer import (
    DM_AUTHORS,
    QUERY_AUTHORS,
    aminer_case_study,
)
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_statistics,
    load_dataset,
)
from repro.errors import DatasetError
from repro.graph.core import core_decomposition


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("sf+nothing")

    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("sf+slashdot", scale=0.0)

    def test_all_names_load_small(self):
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale=0.05, seed=3)
            assert ds.network.social.num_users >= 60
            assert ds.network.road.num_vertices >= 100
            assert ds.network.social.dimensionality == 3

    def test_deterministic(self):
        a = load_dataset("sf+slashdot", scale=0.1, seed=9)
        b = load_dataset("sf+slashdot", scale=0.1, seed=9)
        assert a.network.social.num_edges == b.network.social.num_edges
        va = sorted(a.network.social.graph.vertices())[:10]
        for v in va:
            assert np.array_equal(
                a.network.social.attribute(v), b.network.social.attribute(v)
            )
            assert a.network.social.location(v) == b.network.social.location(v)

    def test_yelp_gets_real_attributes(self):
        ds = load_dataset("fl+yelp", scale=0.05, seed=2)
        assert ds.attribute_kind == "real"

    def test_attribute_kind_override(self):
        ds = load_dataset(
            "sf+slashdot", scale=0.05, seed=2, attribute_kind="correlated"
        )
        assert ds.attribute_kind == "correlated"

    def test_dimensions_parameter(self):
        ds = load_dataset("sf+slashdot", scale=0.05, dimensions=5, seed=1)
        assert ds.network.social.dimensionality == 5

    def test_suggest_query_satisfiable(self):
        ds = load_dataset("sf+slashdot", scale=0.3, seed=7)
        q = ds.suggest_query(4, k=6, t=ds.default_t, seed=1)
        assert len(q) == 4
        assert ds.network.maximal_kt_core(q, 6, ds.default_t) is not None

    def test_statistics_row(self):
        row = dataset_statistics("sf+slashdot", scale=0.05, seed=1)
        assert row["dataset"] == "sf+slashdot"
        assert row["vertices"] >= 60
        assert row["k_max"] >= 4
        assert 2.0 <= row["road_dg_avg"] <= 3.2


class TestAminerCaseStudy:
    def test_structure(self):
        cs = aminer_case_study(num_background=300, groups=12, seed=5)
        assert set(QUERY_AUTHORS) <= set(cs.author_id)
        assert len(cs.query) == 4
        graph = cs.network.social.graph
        assert graph.num_vertices >= 300
        # the DM community is a deep core (the case study uses k = 5)
        numbers = core_decomposition(graph)
        han = cs.author_id["Jiawei Han"]
        assert numbers[han] >= 5

    def test_names_roundtrip(self):
        cs = aminer_case_study(num_background=200, groups=8, seed=1)
        names = cs.names(cs.query)
        assert sorted(names) == sorted(QUERY_AUTHORS)

    def test_attribute_tiers_descend(self):
        cs = aminer_case_study(num_background=200, groups=8, seed=2)
        attrs = cs.network.social.attributes
        top = np.mean([attrs[cs.author_id[a]] for a in DM_AUTHORS[:7]])
        tail = np.mean([attrs[cs.author_id[a]] for a in DM_AUTHORS[12:]])
        assert top > tail + 1.0

    def test_keywords_assigned(self):
        cs = aminer_case_study(num_background=150, groups=6, seed=3)
        assert all(
            cs.keywords[cs.author_id[a]] == "DM" for a in QUERY_AUTHORS
        )
