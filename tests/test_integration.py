"""End-to-end integration tests on generated road-social networks.

These exercise the full pipeline (generator → range filter → (k,t)-core →
Gd → GS/LS → partitions) at a small scale and assert the cross-algorithm
consistency properties that the paper's experiments rely on.
"""

import numpy as np
import pytest

from repro import PreferenceRegion, datasets, gs_nc, gs_topj, ls_nc, ls_topj
from repro.core.peeling import nc_mac_at, top_j_at
from repro.dominance.graph import DominanceGraph


@pytest.fixture(scope="module")
def small_world():
    ds = datasets.load_dataset("sf+slashdot", scale=0.2, seed=7)
    return ds


@pytest.fixture(scope="module")
def region():
    return PreferenceRegion.from_sigma([0.33, 0.33], 0.01)


def _query(ds, k, t, seed=1):
    return ds.suggest_query(3, k=k, t=t, seed=seed)


class TestPipeline:
    def test_gs_and_ls_agree_at_default_sigma(self, small_world, region):
        ds = small_world
        q = _query(ds, 6, ds.default_t)
        gs = gs_nc(ds.network, q, 6, ds.default_t, region)
        ls = ls_nc(ds.network, q, 6, ds.default_t, region)
        assert not gs.is_empty
        assert ls.nc_communities() <= gs.nc_communities()
        # Fig. 12 behaviour: at the default sigma the ratio is ~1.
        assert len(ls.nc_communities()) >= max(
            1, int(0.7 * len(gs.nc_communities()))
        )

    def test_gs_partitions_agree_with_oracle(self, small_world, region):
        ds = small_world
        q = _query(ds, 6, ds.default_t)
        res = gs_nc(ds.network, q, 6, ds.default_t, region)
        kt = ds.network.maximal_kt_core(q, 6, ds.default_t)
        attrs = ds.network.social.attributes_for(kt.graph.vertices())
        gd = DominanceGraph(attrs, region)
        rng = np.random.default_rng(0)
        for w in region.sample(rng, 10):
            owners = [e for e in res.partitions if e.cell.contains(w, 1e-9)]
            assert owners
            scores = {v: gd.score_at(v, w) for v in kt.vertices}
            expected = nc_mac_at(kt.graph, q, 6, scores)
            assert any(e.best.members == expected for e in owners)

    def test_topj_chains_nested(self, small_world, region):
        ds = small_world
        q = _query(ds, 6, ds.default_t)
        res = gs_topj(ds.network, q, 6, ds.default_t, region, j=3)
        for entry in res.partitions:
            members = [c.members for c in entry.communities]
            for better, worse in zip(members, members[1:]):
                assert better < worse  # strictly nested chain

    def test_ls_topj_agrees_with_oracle_at_samples(self, small_world, region):
        ds = small_world
        q = _query(ds, 6, ds.default_t)
        res = ls_topj(ds.network, q, 6, ds.default_t, region, j=2)
        kt = ds.network.maximal_kt_core(q, 6, ds.default_t)
        attrs = ds.network.social.attributes_for(kt.graph.vertices())
        gd = DominanceGraph(attrs, region)
        for entry in res.partitions:
            w = entry.sample_weight()
            scores = {v: gd.score_at(v, w) for v in kt.vertices}
            expected = top_j_at(kt.graph, q, 6, scores, 2)
            assert [c.members for c in entry.communities] == expected

    def test_members_respect_query_distance(self, small_world, region):
        ds = small_world
        t = ds.default_t
        q = _query(ds, 6, t)
        res = gs_nc(ds.network, q, 6, t, region)
        dq = ds.network.query_distance_filter(q, t)
        for entry in res.partitions:
            for v in entry.best.members:
                assert dq[v] <= t

    def test_varying_t_monotone_htk(self, small_world, region):
        ds = small_world
        q = _query(ds, 6, ds.default_t)
        sizes = []
        for t in (ds.default_t, ds.default_t * 1.5, ds.default_t * 2):
            res = gs_nc(ds.network, q, 6, t, region)
            sizes.append(res.htk_vertices)
        assert sizes == sorted(sizes)

    def test_higher_k_smaller_htk(self, small_world, region):
        ds = small_world
        q = _query(ds, 8, ds.default_t, seed=3)
        r8 = gs_nc(ds.network, q, 8, ds.default_t, region)
        r6 = gs_nc(ds.network, q, 6, ds.default_t, region)
        assert r8.htk_vertices <= r6.htk_vertices


class TestCaseStudySmoke:
    def test_aminer_case_runs(self):
        cs = datasets.aminer_case_study(
            num_background=250, groups=10, seed=11
        )
        region = PreferenceRegion(
            [0.1, 0.3, 0.05], [0.3, 0.5, 0.1]
        )  # the Fig. 15 region (d = 4)
        res = ls_nc(
            cs.network, cs.query, 5, 1e9, region
        )
        assert not res.is_empty
        names = cs.names(res.partitions[0].best.members)
        assert "Jiawei Han" in names
