"""The append-only delta log beside a snapshot, and replay on load."""

import json

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import SnapshotError
from repro.live import add_social_edge, remove_social_edge, update_attributes
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store import DELTA_VERSION, append_delta, read_deltas
from repro.store.snapshot import snapshot_info

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(**knobs) -> MACRequest:
    knobs.setdefault("algorithm", "global")
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "snap"
    MACEngine(make_network()).save(path)
    return path


class TestAppendAndRead:
    def test_missing_log_is_depth_zero(self, snapshot):
        assert read_deltas(snapshot) == []
        assert snapshot_info(snapshot)["delta_depth"] == 0

    def test_append_assigns_gapless_sequence(self, snapshot):
        assert append_delta(snapshot, [add_social_edge(1, 4)]) == 1
        assert append_delta(
            snapshot, [{"op": "remove_social_edge", "u": 1, "v": 4}]
        ) == 2
        records = read_deltas(snapshot)
        assert [r["seq"] for r in records] == [1, 2]
        assert all(r["delta_version"] == DELTA_VERSION for r in records)
        assert records[0]["mutations"] == [
            {"op": "add_social_edge", "u": 1, "v": 4}
        ]
        assert snapshot_info(snapshot)["delta_depth"] == 2

    def test_append_requires_a_real_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError):
            append_delta(tmp_path / "nowhere", [add_social_edge(1, 4)])


class TestReadValidation:
    def _write(self, snapshot, text):
        (snapshot / "deltas.jsonl").write_text(text)

    def test_corrupt_json_is_typed(self, snapshot):
        self._write(snapshot, "{not json\n")
        with pytest.raises(SnapshotError, match="corrupted delta log"):
            read_deltas(snapshot)

    def test_version_mismatch_is_typed(self, snapshot):
        self._write(snapshot, json.dumps(
            {"delta_version": 99, "seq": 1,
             "mutations": [{"op": "add_social_edge", "u": 1, "v": 4}]}
        ) + "\n")
        with pytest.raises(SnapshotError, match="version 99"):
            read_deltas(snapshot)

    def test_empty_mutations_is_typed(self, snapshot):
        self._write(snapshot, json.dumps(
            {"delta_version": DELTA_VERSION, "seq": 1, "mutations": []}
        ) + "\n")
        with pytest.raises(SnapshotError, match="no mutations"):
            read_deltas(snapshot)

    def test_sequence_gap_is_typed(self, snapshot):
        self._write(snapshot, json.dumps(
            {"delta_version": DELTA_VERSION, "seq": 5,
             "mutations": [{"op": "add_social_edge", "u": 1, "v": 4}]}
        ) + "\n")
        with pytest.raises(SnapshotError, match="seq"):
            read_deltas(snapshot)


class TestReplayOnLoad:
    def test_load_fast_forwards_through_the_log(self, snapshot):
        append_delta(snapshot, [add_social_edge(1, 4)])
        append_delta(snapshot, [
            remove_social_edge(2, 5),
            update_attributes(3, [9.5, 9.5, 9.5]),
        ])
        engine = MACEngine.load(snapshot, make_network())
        assert engine.delta_seq == 2
        graph = engine.network.social.graph
        assert graph.has_edge(1, 4) and not graph.has_edge(2, 5)

        def mutate(network):
            network.social.graph.add_edge(1, 4)
            network.social.graph.remove_edge(2, 5)
            network.social.set_attributes(3, (9.5, 9.5, 9.5))

        reference_network = make_network()
        mutate(reference_network)
        reference = MACEngine(reference_network)
        request = make_request()
        served, expected = engine.search(request), reference.search(request)
        assert served.htk_vertices == expected.htk_vertices
        assert served.communities() == expected.communities()

    def test_base_snapshot_is_never_rewritten(self, snapshot):
        digest_before = (snapshot / "manifest.json").read_bytes()
        append_delta(snapshot, [add_social_edge(1, 4)])
        MACEngine.load(snapshot, make_network())
        assert (snapshot / "manifest.json").read_bytes() == digest_before

    def test_replay_failure_names_the_seq(self, snapshot):
        # (2, 3) already exists in the base network: seq 1 cannot apply
        append_delta(snapshot, [add_social_edge(2, 3)])
        with pytest.raises(SnapshotError, match="seq 1"):
            MACEngine.load(snapshot, make_network())
