"""The `repro mutate` command and the `index info` delta-depth line."""

import pytest

from repro.cli import main

DATASET = ["--dataset", "sf+slashdot", "--scale", "0.02", "--seed", "7"]
#: (0, 5) is a non-adjacent user pair of that dataset.
ADD = '{"op": "add_social_edge", "u": 0, "v": 5}\n'


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "snap"
    assert main([
        "index", "build", *DATASET, "--out", str(path), "--no-gtree",
    ]) == 0
    return path


def write(tmp_path, text: str) -> str:
    path = tmp_path / "muts.jsonl"
    path.write_text(text)
    return str(path)


class TestMutateCommand:
    def test_dry_run(self, tmp_path, capsys):
        muts = write(tmp_path, ADD)
        assert main(["mutate", *DATASET, "--file", muts]) == 0
        out = capsys.readouterr().out
        assert "applied 1 mutation(s) in 1 batch(es)" in out
        assert "add_social_edge=1" in out
        assert "dry run" in out

    def test_snapshot_mode_appends_to_the_delta_log(
        self, tmp_path, snapshot, capsys
    ):
        muts = write(tmp_path, ADD)
        assert main([
            "mutate", *DATASET, "--file", muts, "--snapshot", str(snapshot),
        ]) == 0
        out = capsys.readouterr().out
        assert "delta log    depth 1" in out
        assert (snapshot / "deltas.jsonl").is_file()
        assert main(["index", "info", str(snapshot)]) == 0
        assert "delta log    1 batch(es) replayed on load" in \
            capsys.readouterr().out
        # replay-aware: a second run starts after the logged batch, so
        # re-adding the same edge is a typed user error, not corruption
        assert main([
            "mutate", *DATASET, "--file", muts, "--snapshot", str(snapshot),
        ]) == 2
        assert "already exists" in capsys.readouterr().err

    def test_batch_record_lines_are_accepted(self, tmp_path, capsys):
        muts = write(
            tmp_path,
            '{"mutations": [{"op": "add_social_edge", "u": 0, "v": 5}]}\n'
            '{"mutations": [{"op": "remove_social_edge", "u": 0, "v": 5}]}\n',
        )
        assert main(["mutate", *DATASET, "--file", muts]) == 0
        assert "applied 2 mutation(s) in 2 batch(es)" in \
            capsys.readouterr().out

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        muts = write(tmp_path, "{not json\n")
        assert main(["mutate", *DATASET, "--file", muts]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_mixed_shapes_exit_2(self, tmp_path, capsys):
        muts = write(
            tmp_path,
            ADD + '{"mutations": [{"op": "remove_social_edge", '
                  '"u": 0, "v": 5}]}\n',
        )
        assert main(["mutate", *DATASET, "--file", muts]) == 2
        assert "mixes" in capsys.readouterr().err

    def test_empty_file_exits_2(self, tmp_path, capsys):
        muts = write(tmp_path, "# nothing here\n")
        assert main(["mutate", *DATASET, "--file", muts]) == 2
        assert "no mutations" in capsys.readouterr().err

    def test_unknown_user_is_a_clean_error(self, tmp_path, capsys):
        muts = write(
            tmp_path, '{"op": "add_social_edge", "u": 0, "v": 999999}\n'
        )
        assert main(["mutate", *DATASET, "--file", muts]) == 2
        assert "not in the social network" in capsys.readouterr().err
