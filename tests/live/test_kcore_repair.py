"""Randomized equivalence: incremental k-core repair vs full re-peel.

Both the python reference (:mod:`repro.live.kcore`) and the CSR row
kernels (:mod:`repro.kernels.livecore`) are driven through random
insert/delete walks over Erdős–Rényi graphs; after every step the
repaired coreness must equal a from-scratch Batagelj–Zaversnik
decomposition of the mutated graph, and each repair's reported delta
must be exactly the set of vertices whose coreness moved (by ±1).
"""

import numpy as np
import pytest

from repro.graph.core import core_decomposition
from repro.kernels import FlatGraph
from repro.kernels.core import core_numbers
from repro.kernels.livecore import (
    delete_edge_rows,
    insert_edge_rows,
    repair_delete_rows,
    repair_insert_rows,
)
from repro.live import repair_delete, repair_insert

from tests.conftest import random_graph


def random_walk_steps(graph, rng, steps):
    """Yield ``(u, v, insert?)`` steps, mutating ``graph`` as it goes."""
    vertices = sorted(graph)
    for _ in range(steps):
        u, v = (int(x) for x in rng.choice(vertices, size=2, replace=False))
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
            yield u, v, False
        else:
            graph.add_edge(u, v)
            yield u, v, True


class TestPythonRepair:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_walk_matches_full_repeel(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(30, 0.12, seed=seed + 100)
        coreness = core_decomposition(graph, backend="python")
        for u, v, inserted in random_walk_steps(graph, rng, steps=120):
            before = dict(coreness)
            if inserted:
                changed = repair_insert(graph, coreness, u, v)
            else:
                changed = repair_delete(graph, coreness, u, v)
            expected = core_decomposition(graph, backend="python")
            assert coreness == expected, (seed, u, v, inserted)
            # the delta is exactly the moved vertices, each by one
            moved = {w: c for w, c in expected.items() if before[w] != c}
            assert changed == moved
            assert all(
                abs(c - before[w]) == 1 for w, c in changed.items()
            )

    def test_insert_into_triangle_promotes_it(self):
        # 4-cycle + chord: adding the second chord lifts all four to core 3
        graph = random_graph(4, 0.0, seed=0)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]:
            graph.add_edge(u, v)
        coreness = core_decomposition(graph, backend="python")
        graph.add_edge(1, 3)
        changed = repair_insert(graph, coreness, 1, 3)
        assert coreness == {0: 3, 1: 3, 2: 3, 3: 3}
        assert set(changed) == {0, 1, 2, 3}


class TestFlatRepair:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_walk_matches_full_repeel(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(30, 0.12, seed=seed + 200)
        fg = FlatGraph.from_adjacency(graph)
        core = core_numbers(fg)
        row_of = {vid: row for row, vid in enumerate(fg.ids)}
        for u, v, inserted in random_walk_steps(graph, rng, steps=120):
            ru, rv = row_of[u], row_of[v]
            before = core.copy()
            if inserted:
                fg = insert_edge_rows(fg, ru, rv)
                core, changed = repair_insert_rows(fg, core, ru, rv)
            else:
                fg = delete_edge_rows(fg, ru, rv)
                core, changed = repair_delete_rows(fg, core, ru, rv)
            np.testing.assert_array_equal(
                core, core_numbers(fg), err_msg=str((seed, u, v, inserted))
            )
            moved = np.nonzero(core != before)[0]
            assert sorted(changed.tolist()) == moved.tolist()

    def test_splice_preserves_row_identity(self):
        graph = random_graph(12, 0.3, seed=5)
        fg = FlatGraph.from_adjacency(graph)
        u, v = 0, 1
        if not graph.has_edge(u, v):
            spliced = insert_edge_rows(fg, 0, 1)
        else:
            spliced = delete_edge_rows(fg, 0, 1)
        assert spliced.ids == fg.ids
        assert abs(spliced.indices.size - fg.indices.size) == 2

    def test_readonly_core_array_is_copied_not_mutated(self):
        # triangle + pendant: linking the pendant back in promotes it
        graph = random_graph(4, 0.0, seed=0)
        for u, v in [(0, 1), (1, 2), (2, 0), (2, 3)]:
            graph.add_edge(u, v)
        fg = FlatGraph.from_adjacency(graph)
        core = core_numbers(fg)
        core.flags.writeable = False
        row_of = {vid: row for row, vid in enumerate(fg.ids)}
        r0, r3 = row_of[0], row_of[3]
        spliced = insert_edge_rows(fg, r0, r3)
        repaired, changed = repair_insert_rows(spliced, core, r0, r3)
        assert changed.size > 0
        assert repaired is not core  # copy-on-write, mmap never touched
        np.testing.assert_array_equal(repaired, core_numbers(spliced))


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_python_and_flat_walks_agree(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(25, 0.15, seed=seed)
        coreness = core_decomposition(graph, backend="python")
        fg = FlatGraph.from_adjacency(graph)
        core = core_numbers(fg)
        row_of = {vid: row for row, vid in enumerate(fg.ids)}
        for u, v, inserted in random_walk_steps(graph, rng, steps=80):
            ru, rv = row_of[u], row_of[v]
            if inserted:
                repair_insert(graph, coreness, u, v)
                fg = insert_edge_rows(fg, ru, rv)
                core, _ = repair_insert_rows(fg, core, ru, rv)
            else:
                repair_delete(graph, coreness, u, v)
                fg = delete_edge_rows(fg, ru, rv)
                core, _ = repair_delete_rows(fg, core, ru, rv)
            assert {vid: int(core[row_of[vid]]) for vid in graph} == coreness
