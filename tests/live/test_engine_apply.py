"""`MACEngine.apply`: equivalence with rebuilds and footprint-scoped eviction."""

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import MutationError
from repro.live import (
    add_social_edge,
    move_user,
    remove_social_edge,
    update_attributes,
    update_road_weight,
)
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])

BACKENDS = ("python", "flat")


def make_network(mutate=None) -> RoadSocialNetwork:
    """The paper network, optionally with ``mutate(network)`` pre-applied."""
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    network = RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )
    if mutate is not None:
        mutate(network)
    return network


def make_request(**knobs) -> MACRequest:
    knobs.setdefault("algorithm", "global")
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


def stable(result) -> tuple:
    return (
        result.htk_vertices,
        [sorted(entry.best.members) for entry in result.partitions],
    )


class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_social_edge_batch_matches_rebuild(self, backend):
        engine = MACEngine(make_network(), backend=backend)
        engine.search(make_request())  # warm every stage
        summary = engine.apply([
            add_social_edge(1, 4), remove_social_edge(2, 5),
        ])
        assert summary["applied"] == 2
        assert summary["by_kind"] == {
            "add_social_edge": 1, "remove_social_edge": 1,
        }
        assert summary["delta_seq"] == 1

        def mutate(network):
            network.social.graph.add_edge(1, 4)
            network.social.graph.remove_edge(2, 5)

        reference = MACEngine(make_network(mutate), backend=backend)
        request = make_request()
        assert stable(engine.search(request)) == stable(
            reference.search(request)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_attribute_update_matches_rebuild(self, backend):
        engine = MACEngine(make_network(), backend=backend)
        engine.search(make_request())
        engine.apply([update_attributes(3, [9.5, 9.5, 9.5])])

        def mutate(network):
            network.social.set_attributes(3, (9.5, 9.5, 9.5))

        reference = MACEngine(make_network(mutate), backend=backend)
        request = make_request()
        assert stable(engine.search(request)) == stable(
            reference.search(request)
        )

    def test_road_weight_update_matches_rebuild(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        engine.apply([update_road_weight(6, 7, 20.0)])

        def mutate(network):
            network.road.add_edge(6, 7, 20.0)

        reference = MACEngine(make_network(mutate))
        request = make_request()
        # rerouting 6-7 pushes v7's query distance past t: the filter
        # shrinks, so this really exercises the global eviction
        assert stable(engine.search(request)) == stable(
            reference.search(request)
        )

    def test_move_user_matches_rebuild(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        engine.apply([move_user(12, SpatialPoint.at_vertex(1))])

        def mutate(network):
            network.social.set_location(12, SpatialPoint.at_vertex(1))

        reference = MACEngine(make_network(mutate))
        request = make_request()
        assert stable(engine.search(request)) == stable(
            reference.search(request)
        )

    def test_wire_dicts_are_accepted(self):
        engine = MACEngine(make_network())
        summary = engine.apply([{"op": "add_social_edge", "u": 1, "v": 4}])
        assert summary["by_kind"] == {"add_social_edge": 1}
        assert engine.network.social.graph.has_edge(1, 4)


class TestFootprint:
    def test_disjoint_edge_keeps_everything_warm(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        # (12, 15): both endpoints outside the warm (Q, t=9) filter
        summary = engine.apply([add_social_edge(12, 15)])
        assert summary["evicted"] == 0
        again = engine.search(make_request())
        assert again.extra["engine"]["cache"] == {"result": "hit"}
        assert engine.telemetry().cache_evicted_by_mutation == 0

    def test_insert_repairs_warm_filter_in_place(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        summary = engine.apply([add_social_edge(1, 4)])
        assert summary["repaired_entries"] >= 1
        assert summary["evicted"] >= 1  # both endpoints are members
        again = engine.search(make_request())
        # downstream stages recompute, but the repaired filter stays warm
        assert again.extra["engine"]["cache"]["filter"] == "hit"

    def test_member_edge_delete_evicts(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        summary = engine.apply([remove_social_edge(2, 7)])
        assert summary["evicted"] >= 1
        again = engine.search(make_request())
        assert again.extra["engine"]["cache"].get("result") != "hit"

    def test_non_member_attribute_update_keeps_entries(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        summary = engine.apply([update_attributes(12, [0.5, 0.5, 0.5])])
        assert summary["evicted"] == 0
        again = engine.search(make_request())
        assert again.extra["engine"]["cache"] == {"result": "hit"}

    def test_member_attribute_update_evicts(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        summary = engine.apply([update_attributes(5, [0.5, 0.5, 0.5])])
        assert summary["evicted"] >= 1

    def test_move_and_road_weight_evict_globally(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        summary = engine.apply([move_user(12, SpatialPoint.at_vertex(1))])
        assert summary["evicted"] >= 1
        engine.search(make_request())
        summary = engine.apply([update_road_weight(11, 12, 2.0)])
        assert summary["evicted"] >= 1


class TestAtomicity:
    def test_rejected_batch_leaves_everything_untouched(self):
        engine = MACEngine(make_network())
        engine.search(make_request())
        with pytest.raises(MutationError, match="mutation 1"):
            engine.apply([
                add_social_edge(1, 4),
                add_social_edge(2, 3),  # already exists
            ])
        assert not engine.network.social.graph.has_edge(1, 4)
        assert engine.delta_seq == 0
        assert engine.telemetry().mutations == 0
        again = engine.search(make_request())
        assert again.extra["engine"]["cache"] == {"result": "hit"}

    def test_empty_batch_is_rejected(self):
        with pytest.raises(MutationError, match="batch is empty"):
            MACEngine(make_network()).apply([])


class TestTelemetry:
    def test_counters_and_delta_seq(self):
        engine = MACEngine(make_network())
        engine.apply([add_social_edge(1, 4)])
        engine.apply([
            remove_social_edge(1, 4), update_attributes(3, [1.0, 1.0, 1.0]),
        ])
        assert engine.delta_seq == 2
        tel = engine.telemetry()
        assert tel.mutations == 3
        assert tel.mutations_by_kind == {
            "add_social_edge": 1,
            "remove_social_edge": 1,
            "update_attributes": 1,
        }

    def test_reset_preserves_delta_seq(self):
        engine = MACEngine(make_network())
        engine.apply([add_social_edge(1, 4)])
        engine.reset_telemetry()
        assert engine.telemetry().mutations == 0
        # delta_seq is state (snapshot replay depth), not a counter
        assert engine.delta_seq == 1
