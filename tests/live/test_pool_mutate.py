"""Fleet-wide mutation broadcast across the worker-process tier."""

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import MutationError, ReloadError
from repro.live import add_social_edge
from repro.pool import WorkerPool
from repro.road.network import SpatialPoint
from repro.service.protocol import result_to_wire
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store.fingerprint import network_fingerprint

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])

STABLE = ("query", "partitions", "htk_vertices", "htk_edges")


def make_network(mutate=None) -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    network = RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )
    if mutate is not None:
        mutate(network)
    return network


def make_request(**knobs) -> MACRequest:
    knobs.setdefault("algorithm", "global")
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


def stable(wire: dict) -> dict:
    return {key: wire[key] for key in STABLE}


class TestBroadcast:
    def test_batch_reaches_every_worker_uniformly(self):
        with WorkerPool(MACEngine(make_network()), 2) as pool:
            summary = pool.mutate_wire(
                [{"op": "add_social_edge", "u": 1, "v": 4}]
            )
            assert summary["applied"] == 1
            assert summary["workers"] == 2
            assert summary["applied_workers"] == 2
            assert summary["uniform"] is True
            assert summary["respawned"] == 0
            assert summary["delta_seq"] == 1

            def mutate(network):
                network.social.graph.add_edge(1, 4)

            mutated = make_network(mutate)
            assert summary["fingerprint"] == network_fingerprint(mutated)
            assert pool.snapshot_wire()["delta_seq"] == 1
            assert pool.fingerprint == summary["fingerprint"]
            for entry in pool.workers_wire()["workers"]:
                assert entry["fingerprint"] == summary["fingerprint"]

            # post-mutation, every query answers from the mutated graph
            request = make_request()
            expected = result_to_wire(MACEngine(mutated).search(request))
            for _ in range(4):  # both workers take a turn
                assert stable(pool.search_wire(request)) == stable(expected)
            assert pool.pool_wire()["mutations"] == 1

    def test_rejected_batch_leaves_the_fleet_serving(self):
        with WorkerPool(MACEngine(make_network()), 2) as pool:
            with pytest.raises(MutationError, match="already exists"):
                pool.mutate_wire([add_social_edge(2, 3)])
            assert pool.snapshot_wire()["delta_seq"] == 0
            request = make_request()
            expected = result_to_wire(MACEngine(make_network()).search(request))
            assert stable(pool.search_wire(request)) == stable(expected)

    def test_unstarted_pool_is_typed(self):
        pool = WorkerPool(MACEngine(make_network()), 1)
        with pytest.raises(ReloadError, match="not started"):
            pool.mutate_wire([add_social_edge(1, 4)])

    def test_sequential_batches_advance_delta_seq(self):
        with WorkerPool(MACEngine(make_network()), 1) as pool:
            pool.mutate_wire([add_social_edge(1, 4)])
            summary = pool.mutate_wire(
                [{"op": "remove_social_edge", "u": 1, "v": 4}]
            )
            assert summary["delta_seq"] == 2
            assert summary["uniform"] is True
            assert pool.snapshot_wire()["delta_seq"] == 2
            # add + remove round-trips to the original content
            assert summary["fingerprint"] == network_fingerprint(
                make_network()
            )
