"""`POST /v1/admin/mutate` end to end: client, telemetry, delta logging."""

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import MutationError, QueryError
from repro.live import add_social_edge, update_attributes
from repro.road.network import SpatialPoint
from repro.service import MACService, ServiceClient
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store import read_deltas

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network(mutate=None) -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    network = RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )
    if mutate is not None:
        mutate(network)
    return network


def make_request(**knobs) -> MACRequest:
    knobs.setdefault("algorithm", "global")
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


class TestMutateEndpoint:
    def test_mutate_and_serve_from_the_mutated_graph(self):
        svc = MACService(MACEngine(make_network()), port=0, max_concurrency=2)
        with svc, ServiceClient(port=svc.port) as client:
            summary = client.mutate([
                add_social_edge(1, 4),
                {"op": "update_attributes", "user": 3,
                 "attributes": [9.5, 9.5, 9.5]},
            ])
            assert summary["applied"] == 2
            assert summary["delta_seq"] == 1
            assert summary["logged"] is False  # no snapshot behind this server

            def mutate(network):
                network.social.graph.add_edge(1, 4)
                network.social.set_attributes(3, (9.5, 9.5, 9.5))

            request = make_request()
            expected = MACEngine(make_network(mutate)).search(request)
            served = client.search(request)
            assert served.htk_vertices == expected.htk_vertices
            assert [sorted(p.best) for p in served.partitions] == \
                [sorted(e.best.members) for e in expected.partitions]

            health = client.healthz()
            assert health["snapshot"]["delta_seq"] == 1
            metrics = client.metrics()
            assert metrics["service"]["mutations"] == 1
            assert metrics["service"]["deltas_logged"] == 0
            assert metrics["engine"]["mutations"] == 2
            assert metrics["engine"]["mutations_by_kind"] == {
                "add_social_edge": 1, "update_attributes": 1,
            }

    def test_invalid_batch_is_a_typed_400(self):
        svc = MACService(MACEngine(make_network()), port=0, max_concurrency=2)
        with svc, ServiceClient(port=svc.port) as client:
            with pytest.raises(MutationError, match="already exists"):
                client.mutate([add_social_edge(2, 3)])
            assert client.healthz()["snapshot"]["delta_seq"] == 0

    def test_empty_batch_is_a_query_error(self):
        svc = MACService(MACEngine(make_network()), port=0, max_concurrency=2)
        with svc, ServiceClient(port=svc.port) as client:
            with pytest.raises(QueryError, match="non-empty"):
                client._call("POST", "/v1/admin/mutate", {"mutations": []})
            with pytest.raises(QueryError, match="mutations"):
                client._call("POST", "/v1/admin/mutate", {"batch": []})

    def test_mutations_are_logged_beside_the_snapshot(self, tmp_path):
        snapshot = tmp_path / "snap"
        network = make_network()
        MACEngine(network).save(snapshot)
        engine = MACEngine.load(snapshot, network)
        svc = MACService(
            engine, port=0, max_concurrency=2, snapshot_path=str(snapshot)
        )
        with svc, ServiceClient(port=svc.port) as client:
            summary = client.mutate([update_attributes(3, [9.5, 9.5, 9.5])])
            assert summary["logged"] is True
            assert client.metrics()["service"]["deltas_logged"] == 1
        records = read_deltas(snapshot)
        assert [r["seq"] for r in records] == [1]
        assert records[0]["mutations"] == [{
            "op": "update_attributes", "user": 3,
            "attributes": [9.5, 9.5, 9.5],
        }]
        # a later boot from the same snapshot replays the mutation
        replayed = MACEngine.load(snapshot, make_network())
        assert replayed.delta_seq == 1
        assert list(
            replayed.network.social.attributes[3]
        ) == [9.5, 9.5, 9.5]
