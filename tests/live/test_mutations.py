"""Wire codec and all-or-nothing batch validation of typed mutations."""

import pytest

from repro.errors import MutationError
from repro.live import (
    MUTATION_KINDS,
    add_social_edge,
    move_user,
    mutation_from_wire,
    mutation_to_wire,
    normalize_batch,
    remove_social_edge,
    update_attributes,
    update_road_weight,
    validate_batch,
)
from repro.road.network import SpatialPoint


class TestWireCodec:
    @pytest.mark.parametrize("mutation", [
        add_social_edge(3, 17),
        remove_social_edge(5, 2),
        update_attributes(5, [0.2, 0.9, 0.4]),
        move_user(5, SpatialPoint.on_edge(2, 3, 1.5)),
        move_user(7, SpatialPoint.at_vertex(4)),
        update_road_weight(2, 3, 9.0),
    ])
    def test_round_trip(self, mutation):
        wire = mutation_to_wire(mutation)
        assert wire["op"] in MUTATION_KINDS
        assert mutation_from_wire(wire) == mutation
        # the wire form is JSON-safe
        import json

        assert mutation_from_wire(json.loads(json.dumps(wire))) == mutation

    def test_unknown_op_is_typed(self):
        with pytest.raises(MutationError, match="unknown mutation op"):
            mutation_from_wire({"op": "truncate_graph"})

    def test_non_object_is_typed(self):
        with pytest.raises(MutationError, match="must be an object"):
            mutation_from_wire([1, 2])

    def test_bool_is_not_an_endpoint(self):
        with pytest.raises(MutationError, match="integer 'u'"):
            mutation_from_wire({"op": "add_social_edge", "u": True, "v": 2})

    def test_missing_endpoint_is_typed(self):
        with pytest.raises(MutationError, match="integer 'v'"):
            mutation_from_wire({"op": "remove_social_edge", "u": 1})

    def test_bad_attributes_are_typed(self):
        with pytest.raises(MutationError, match="'attributes' list"):
            mutation_from_wire({"op": "update_attributes", "user": 1,
                                "attributes": "high"})
        with pytest.raises(MutationError, match="must be numbers"):
            mutation_from_wire({"op": "update_attributes", "user": 1,
                                "attributes": [0.1, "x"]})

    def test_bad_point_is_typed(self):
        with pytest.raises(MutationError, match="'point' object"):
            mutation_from_wire({"op": "move_user", "user": 1, "point": 3})

    def test_bad_weight_is_typed(self):
        with pytest.raises(MutationError, match="numeric 'weight'"):
            mutation_from_wire({"op": "update_road_weight", "u": 1, "v": 2,
                                "weight": "fast"})


class TestNormalizeBatch:
    def test_mixes_typed_and_wire(self):
        batch = normalize_batch([
            add_social_edge(1, 4),
            {"op": "remove_social_edge", "u": 4, "v": 5},
        ])
        assert batch[0] == add_social_edge(1, 4)
        assert batch[1] == remove_social_edge(4, 5)

    def test_foreign_type_is_typed(self):
        with pytest.raises(MutationError, match="expected a mutation"):
            normalize_batch(["add_social_edge"])


class TestValidateBatch:
    def test_empty_batch_is_rejected(self, paper_network):
        with pytest.raises(MutationError, match="batch is empty"):
            validate_batch(paper_network, [])

    def test_self_loop_is_rejected(self, paper_network):
        with pytest.raises(MutationError, match="self-loop"):
            validate_batch(paper_network, [add_social_edge(3, 3)])

    def test_unknown_user_is_rejected(self, paper_network):
        with pytest.raises(MutationError, match="user 99"):
            validate_batch(paper_network, [add_social_edge(1, 99)])

    def test_duplicate_edge_is_rejected(self, paper_network):
        with pytest.raises(MutationError, match="already exists"):
            validate_batch(paper_network, [add_social_edge(2, 3)])

    def test_missing_edge_is_rejected(self, paper_network):
        with pytest.raises(MutationError, match="does not exist"):
            validate_batch(paper_network, [remove_social_edge(1, 4)])

    def test_error_names_the_offending_mutation(self, paper_network):
        with pytest.raises(MutationError, match=r"mutation 1 \(add_social"):
            validate_batch(paper_network, [
                add_social_edge(1, 4), add_social_edge(2, 3),
            ])

    def test_prefix_overlay_add_then_remove(self, paper_network):
        # (1, 4) does not exist, yet removing it after adding it is fine
        validate_batch(paper_network, [
            add_social_edge(1, 4), remove_social_edge(1, 4),
        ])

    def test_prefix_overlay_remove_then_add(self, paper_network):
        validate_batch(paper_network, [
            remove_social_edge(2, 3), add_social_edge(2, 3),
        ])

    def test_prefix_overlay_double_add_is_rejected(self, paper_network):
        with pytest.raises(MutationError, match="already exists"):
            validate_batch(paper_network, [
                add_social_edge(1, 4), add_social_edge(4, 1),
            ])

    def test_attribute_dimensionality_is_checked(self, paper_network):
        with pytest.raises(MutationError, match="expected 3 attributes"):
            validate_batch(paper_network, [update_attributes(3, [0.1, 0.2])])

    def test_attributes_must_be_finite(self, paper_network):
        with pytest.raises(MutationError, match="finite"):
            validate_batch(
                paper_network,
                [update_attributes(3, [0.1, float("nan"), 0.2])],
            )

    def test_move_point_is_validated(self, paper_network):
        with pytest.raises(MutationError, match="not in network"):
            validate_batch(
                paper_network, [move_user(3, SpatialPoint.at_vertex(99))]
            )
        with pytest.raises(MutationError, match="exceeds edge length"):
            validate_batch(
                paper_network,
                [move_user(3, SpatialPoint.on_edge(1, 2, 100.0))],
            )

    def test_road_weight_needs_an_existing_edge(self, paper_network):
        with pytest.raises(MutationError, match="does not exist"):
            validate_batch(paper_network, [update_road_weight(1, 15, 2.0)])
        with pytest.raises(MutationError, match="non-negative"):
            validate_batch(paper_network, [update_road_weight(1, 2, -1.0)])
