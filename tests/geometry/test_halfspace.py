"""Half-space and score arithmetic tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.halfspace import (
    Halfspace,
    expand_weights,
    reduce_weights,
    score,
    score_halfspace,
)

vec3 = st.lists(
    st.floats(0.0, 10.0, allow_nan=False), min_size=3, max_size=3
).map(np.asarray)


class TestScore:
    def test_paper_example(self):
        """S(v7) = 4.47 for weights (0.2, 0.3) and x = (2.1, 5.0, 5.1)."""
        x = np.array([2.1, 5.0, 5.1])
        assert score(x, np.array([0.2, 0.3])) == pytest.approx(4.47)

    def test_one_dimension(self):
        assert score(np.array([7.5]), np.zeros(0)) == 7.5

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            score(np.array([1.0, 2.0]), np.array([0.1, 0.2]))

    @settings(max_examples=50, deadline=None)
    @given(vec3, st.floats(0.01, 0.45), st.floats(0.01, 0.45))
    def test_reduced_equals_full(self, x, w1, w2):
        """Reduced-form score equals the plain weighted sum."""
        w = np.array([w1, w2])
        full = expand_weights(w)
        assert score(x, w) == pytest.approx(float(np.dot(full, x)))


class TestWeights:
    def test_expand(self):
        w = expand_weights(np.array([0.2, 0.3]))
        assert w == pytest.approx([0.2, 0.3, 0.5])

    def test_reduce_roundtrip(self):
        w = np.array([0.1, 0.4, 0.5])
        assert expand_weights(reduce_weights(w)) == pytest.approx(w)

    def test_reduce_validates_sum(self):
        with pytest.raises(GeometryError):
            reduce_weights(np.array([0.5, 0.6]))


class TestHalfspace:
    def test_normalized(self):
        h = Halfspace.make(np.array([3.0, 4.0]), 10.0)
        assert np.linalg.norm(h.a) == pytest.approx(1.0)
        assert h.b == pytest.approx(2.0)

    def test_contains(self):
        h = Halfspace.make(np.array([1.0, 0.0]), 0.5)  # w1 <= 0.5
        assert h.contains(np.array([0.3, 0.9]))
        assert not h.contains(np.array([0.7, 0.0]))

    def test_complement(self):
        h = Halfspace.make(np.array([1.0, 0.0]), 0.5)
        c = h.complement()
        assert not c.contains(np.array([0.3, 0.0]))
        assert c.contains(np.array([0.7, 0.0]))
        # boundary belongs to both (closed half-spaces)
        assert h.contains(np.array([0.5, 0.0]))
        assert c.contains(np.array([0.5, 0.0]))

    def test_degenerate(self):
        everything = Halfspace.make(np.zeros(2), 1.0)
        nothing = Halfspace.make(np.zeros(2), -1.0)
        assert everything.is_degenerate and everything.degenerate_everything
        assert nothing.is_degenerate and not nothing.degenerate_everything


class TestScoreHalfspace:
    @settings(max_examples=50, deadline=None)
    @given(vec3, vec3, st.floats(0.02, 0.44), st.floats(0.02, 0.44))
    def test_halfspace_matches_score_comparison(self, xu, xv, w1, w2):
        """w is in score_halfspace(u, v) exactly when S(u) >= S(v)."""
        h = score_halfspace(xu, xv)
        w = np.array([w1, w2])
        su, sv = score(xu, w), score(xv, w)
        if su > sv + 1e-7:
            assert h.contains(w)
        elif su < sv - 1e-7:
            assert not h.contains(w, tol=-1e-9)

    def test_identical_vectors_give_everything(self):
        x = np.array([1.0, 2.0, 3.0])
        h = score_halfspace(x, x)
        assert h.is_degenerate and h.degenerate_everything

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            score_halfspace(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
