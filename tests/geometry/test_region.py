"""PreferenceRegion tests."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.region import PreferenceRegion


class TestValidation:
    def test_paper_region(self, paper_region):
        assert paper_region.dim == 2
        assert paper_region.num_attributes == 3

    def test_lo_above_hi_rejected(self):
        with pytest.raises(GeometryError):
            PreferenceRegion([0.5], [0.4])

    def test_outside_unit_interval_rejected(self):
        with pytest.raises(GeometryError):
            PreferenceRegion([0.0], [0.5])
        with pytest.raises(GeometryError):
            PreferenceRegion([0.5], [1.0])

    def test_sum_of_highs_must_leave_room(self):
        """The dropped weight w_d must stay positive."""
        with pytest.raises(GeometryError):
            PreferenceRegion([0.4, 0.4], [0.6, 0.5])

    def test_mismatched_bounds(self):
        with pytest.raises(GeometryError):
            PreferenceRegion([0.1, 0.2], [0.3])

    def test_zero_dim_region(self):
        r = PreferenceRegion()
        assert r.dim == 0
        assert r.num_attributes == 1
        assert r.corners().shape == (1, 0)
        assert r.volume() == 1.0


class TestGeometry:
    def test_corners_paper_region(self, paper_region):
        corners = {tuple(c) for c in paper_region.corners()}
        assert corners == {
            (0.1, 0.2), (0.1, 0.4), (0.5, 0.2), (0.5, 0.4)
        }

    def test_pivot_is_center(self, paper_region):
        assert paper_region.pivot() == pytest.approx([0.3, 0.3])

    def test_contains(self, paper_region):
        assert paper_region.contains(np.array([0.3, 0.3]))
        assert paper_region.contains(np.array([0.1, 0.2]))  # corner
        assert not paper_region.contains(np.array([0.6, 0.3]))
        assert not paper_region.contains(np.array([0.3]))  # wrong dim

    def test_halfspaces_describe_box(self, paper_region):
        hs = paper_region.halfspaces()
        assert len(hs) == 4
        inside = np.array([0.3, 0.3])
        outside = np.array([0.05, 0.3])
        assert all(h.contains(inside) for h in hs)
        assert not all(h.contains(outside) for h in hs)

    def test_samples_inside(self, paper_region):
        rng = np.random.default_rng(0)
        pts = paper_region.sample(rng, 50)
        assert pts.shape == (50, 2)
        for p in pts:
            assert paper_region.contains(p)

    def test_volume(self, paper_region):
        assert paper_region.volume() == pytest.approx(0.4 * 0.2)

    def test_from_sigma(self):
        r = PreferenceRegion.from_sigma([0.3, 0.3], 0.01)
        assert r.highs - r.lows == pytest.approx([0.01, 0.01])
        assert r.pivot() == pytest.approx([0.3, 0.3])
