"""Convex cell tests across all three representations (interval, polygon,
LP) plus randomized consistency between the polygon and LP paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.cell import Cell
from repro.geometry.halfspace import Halfspace
from repro.geometry.region import PreferenceRegion


def _h(a, b):
    return Halfspace.make(np.asarray(a, dtype=float), b)


def _lp_cell(constraints) -> Cell:
    """Force the LP path by not providing vertices."""
    return Cell(2, tuple(constraints))


class TestInterval:
    def test_region_cell(self):
        r = PreferenceRegion([0.2], [0.6])
        c = Cell.from_region(r)
        assert not c.is_empty()
        assert 0.2 <= c.interior_point()[0] <= 0.6
        assert c.radius() == pytest.approx(0.2)

    def test_clip(self):
        c = Cell.from_region(PreferenceRegion([0.2], [0.6]))
        left = c.with_constraint(_h([1.0], 0.4))  # w <= 0.4
        assert left.interior_point()[0] == pytest.approx(0.3)
        empty = c.with_constraint(_h([1.0], 0.1))
        assert empty.is_empty()

    def test_side_of(self):
        c = Cell.from_region(PreferenceRegion([0.2], [0.6]))
        assert c.side_of(_h([1.0], 0.4)) == "split"
        assert c.side_of(_h([1.0], 0.9)) == "inside"
        assert c.side_of(_h([-1.0], -0.9)) == "outside"  # w >= 0.9


class TestPolygon:
    def test_region_cell(self, paper_region):
        c = Cell.from_region(paper_region)
        assert not c.is_empty()
        p = c.interior_point()
        assert paper_region.contains(p)

    def test_split_partitions(self, paper_region):
        c = Cell.from_region(paper_region)
        h = _h([1.0, 0.0], 0.3)  # w1 <= 0.3
        inside, outside = c.split(h)
        assert not inside.is_empty() and not outside.is_empty()
        assert inside.interior_point()[0] < 0.3
        assert outside.interior_point()[0] > 0.3

    def test_side_of_cases(self, paper_region):
        c = Cell.from_region(paper_region)
        assert c.side_of(_h([1.0, 0.0], 0.3)) == "split"
        assert c.side_of(_h([1.0, 0.0], 0.9)) == "inside"
        assert c.side_of(_h([-1.0, 0.0], -0.9)) == "outside"

    def test_degenerate_halfspace(self, paper_region):
        c = Cell.from_region(paper_region)
        assert c.side_of(_h([0.0, 0.0], 1.0)) == "inside"
        assert c.side_of(_h([0.0, 0.0], -1.0)) == "outside"

    def test_sliver_absorbed(self, paper_region):
        """A cut tangent to the boundary must not create an empty side."""
        c = Cell.from_region(paper_region)
        h = _h([1.0, 0.0], 0.1 + 1e-13)  # grazes the left edge
        assert c.side_of(h) != "split"

    def test_contains(self, paper_region):
        c = Cell.from_region(paper_region)
        sub = c.with_constraint(_h([1.0, 0.0], 0.3))
        assert sub.contains(np.array([0.2, 0.3]))
        assert not sub.contains(np.array([0.4, 0.3]))

    def test_radius_positive(self, paper_region):
        c = Cell.from_region(paper_region)
        assert c.radius() > 0.05


class TestLPPath:
    def test_matches_polygon_emptiness(self, paper_region):
        rng = np.random.default_rng(7)
        base_poly = Cell.from_region(paper_region)
        base_lp = _lp_cell(paper_region.halfspaces())
        for _ in range(40):
            a = rng.normal(size=2)
            b = float(
                a @ rng.uniform([0.1, 0.2], [0.5, 0.4])
            )  # passes through a random point of the box
            h = Halfspace.make(a, b)
            assert base_poly.side_of(h) == base_lp.side_of(h)
            poly = base_poly.with_constraint(h)
            lp = base_lp.with_constraint(h)
            assert poly.is_empty() == lp.is_empty()
            if not poly.is_empty():
                # both interior points satisfy all constraints
                for cell, other in ((poly, lp), (lp, poly)):
                    p = cell.interior_point()
                    assert other.contains(p, tol=1e-6)

    def test_zero_dim(self):
        c = Cell(0, ())
        assert not c.is_empty()
        assert c.interior_point().shape == (0,)
        empty = Cell(0, (Halfspace((), -1.0),))
        assert empty.is_empty()

    def test_lp_three_dims(self):
        region = PreferenceRegion([0.1, 0.1, 0.1], [0.3, 0.3, 0.3])
        c = Cell.from_region(region)
        assert c.vertices() is None  # LP path
        assert not c.is_empty()
        p = c.interior_point()
        assert region.contains(p)
        h = _h([1.0, 0.0, 0.0], 0.2)
        assert c.side_of(h) == "split"
        inside, outside = c.split(h)
        assert not inside.is_empty() and not outside.is_empty()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_split_preserves_membership(seed):
    """Random points land in exactly the child cell that contains them."""
    rng = np.random.default_rng(seed)
    region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
    c = Cell.from_region(region)
    a = rng.normal(size=2)
    b = float(a @ rng.uniform([0.1, 0.2], [0.5, 0.4]))
    h = Halfspace.make(a, b)
    if c.side_of(h) != "split":
        return
    inside, outside = c.split(h)
    for p in region.sample(rng, 25):
        in_in = inside.contains(p, tol=1e-9)
        in_out = outside.contains(p, tol=1e-9)
        assert in_in or in_out
        # strictly interior points of one side are not in the other
        if h.signed_slack(p) > 1e-7:
            assert in_in and not in_out
        elif h.signed_slack(p) < -1e-7:
            assert in_out and not in_in
