"""Preference-learning (region-from-feedback) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.halfspace import score
from repro.geometry.preference_learning import LearnedRegion


class TestConstruction:
    def test_needs_two_dimensions(self):
        with pytest.raises(GeometryError):
            LearnedRegion(1)

    def test_margin_validation(self):
        with pytest.raises(GeometryError):
            LearnedRegion(3, margin=0.6)

    def test_starts_consistent(self):
        lr = LearnedRegion(3)
        assert lr.is_consistent()
        assert lr.num_comparisons == 0
        w = lr.center()
        assert w.shape == (2,)


class TestObserve:
    def test_shrinks_toward_true_preference(self):
        """Feedback generated from a hidden weight must keep it inside."""
        rng = np.random.default_rng(0)
        true_w = np.array([0.25, 0.35])
        lr = LearnedRegion(3)
        for _ in range(40):
            a, b = rng.uniform(0, 10, (2, 3))
            if score(a, true_w) >= score(b, true_w):
                lr.observe(a, b)
            else:
                lr.observe(b, a)
        assert lr.is_consistent()
        assert lr.contains(true_w)
        box = lr.bounding_region()
        assert box.contains(true_w)
        # learning genuinely narrowed the estimate
        assert box.volume() < 0.5 * LearnedRegion(3).bounding_region().volume()

    def test_inconsistent_feedback_rejected(self):
        lr = LearnedRegion(3)
        a = np.array([9.0, 1.0, 1.0])
        b = np.array([1.0, 9.0, 9.0])
        assert lr.observe(a, b)
        # squeeze until the opposite judgement cannot hold anywhere
        for _ in range(5):
            lr.observe(a, b)
        accepted = lr.observe(b, a)
        if not accepted:
            assert lr.is_consistent()  # state preserved

    def test_dimension_check(self):
        lr = LearnedRegion(3)
        with pytest.raises(GeometryError):
            lr.observe([1.0, 2.0], [3.0, 4.0])

    def test_equal_items_are_noop_consistent(self):
        lr = LearnedRegion(3)
        x = np.array([5.0, 5.0, 5.0])
        assert lr.observe(x, x)
        assert lr.is_consistent()


class TestBoundingRegion:
    def test_box_encloses_estimate_center(self):
        lr = LearnedRegion(3)
        lr.observe([9.0, 5.0, 1.0], [1.0, 5.0, 9.0])
        box = lr.bounding_region()
        assert box.contains(lr.center())

    def test_four_dimensions_uses_lp_support(self):
        lr = LearnedRegion(4)
        rng = np.random.default_rng(1)
        true_w = np.array([0.2, 0.25, 0.2])
        for _ in range(25):
            a, b = rng.uniform(0, 10, (2, 4))
            if score(a, true_w) >= score(b, true_w):
                lr.observe(a, b)
            else:
                lr.observe(b, a)
        box = lr.bounding_region()
        assert box.dim == 3
        assert box.contains(lr.center())

    def test_feeds_mac_search(self, paper_network):
        """The learned box plugs straight into the MAC pipeline."""
        from repro import mac_search

        lr = LearnedRegion(3)
        lr.observe([9.0, 5.0, 2.0], [2.0, 5.0, 9.0])
        region = lr.bounding_region()
        res = mac_search(paper_network, [2, 3, 6], 3, 9.0, region)
        assert not res.is_empty


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_consistent_feedback_always_keeps_truth(seed):
    rng = np.random.default_rng(seed)
    true_w = rng.uniform(0.1, 0.35, 2)
    lr = LearnedRegion(3)
    for _ in range(15):
        a, b = rng.uniform(0, 10, (2, 3))
        if score(a, true_w) >= score(b, true_w):
            ok = lr.observe(a, b)
        else:
            ok = lr.observe(b, a)
        assert ok, "truthful feedback can never be inconsistent"
    assert lr.contains(true_w)
