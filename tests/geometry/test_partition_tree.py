"""Algorithm 2 (Partition) tests: leaves form a partition of the root."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.cell import Cell
from repro.geometry.halfspace import Halfspace
from repro.geometry.partition_tree import PartitionTree
from repro.geometry.region import PreferenceRegion


def _random_plane(rng, region):
    a = rng.normal(size=region.dim)
    point = rng.uniform(region.lows, region.highs)
    return Halfspace.make(a, float(a @ point))


class TestPartitionTree:
    def test_single_leaf_initially(self, paper_region):
        tree = PartitionTree(Cell.from_region(paper_region))
        assert tree.num_leaves == 1

    def test_crossing_plane_splits(self, paper_region):
        tree = PartitionTree(Cell.from_region(paper_region))
        tree.insert(Halfspace.make(np.array([1.0, 0.0]), 0.3))
        assert tree.num_leaves == 2

    def test_covering_plane_is_noop(self, paper_region):
        tree = PartitionTree(Cell.from_region(paper_region))
        tree.insert(Halfspace.make(np.array([1.0, 0.0]), 0.9))
        assert tree.num_leaves == 1

    def test_nested_splits(self, paper_region):
        tree = PartitionTree(Cell.from_region(paper_region))
        tree.insert(Halfspace.make(np.array([1.0, 0.0]), 0.3))
        tree.insert(Halfspace.make(np.array([0.0, 1.0]), 0.3))
        assert tree.num_leaves == 4
        # a plane crossing only the left cells splits exactly those
        tree.insert(Halfspace.make(np.array([1.0, 0.0]), 0.2))
        assert tree.num_leaves == 6

    def test_leaves_iteration_matches_count(self, paper_region):
        tree = PartitionTree(Cell.from_region(paper_region))
        rng = np.random.default_rng(3)
        for _ in range(6):
            tree.insert(_random_plane(rng, paper_region))
        assert len(list(tree.leaves())) == tree.num_leaves


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 5_000), st.integers(1, 7))
def test_leaves_partition_region(seed, num_planes):
    """Random interior points belong to exactly one leaf cell."""
    rng = np.random.default_rng(seed)
    region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
    tree = PartitionTree(Cell.from_region(region))
    planes = [_random_plane(rng, region) for _ in range(num_planes)]
    for h in planes:
        tree.insert(h)
    leaves = list(tree.leaves())
    for p in region.sample(rng, 30):
        margin = min(abs(h.signed_slack(p)) for h in planes)
        if margin < 1e-6:
            continue  # points on a boundary may belong to two cells
        owners = [c for c in leaves if c.contains(p, tol=1e-9)]
        assert len(owners) == 1
