"""Shared fixtures: the paper's running example (Figs. 1-5) and helpers.

The attribute table is Fig. 2(a) verbatim.  The road distances are
engineered to match every number the paper derives from Fig. 1(b):
``dist(r7, r6) = 7`` (= D_Q(v7)), ``dist(r3, r6) = 9`` (= D_Q of the
subgraph {v2,v3,v6,v7}), and H^9_3 = {v1..v7} for Q = {v2,v3,v6}, k = 3.
With R = [0.1,0.5] x [0.2,0.4] (Fig. 2(b)) the r-dominance graph then
reproduces Fig. 4(b): tops {v2,v4,v6}, middle {v3,v5,v1}, leaf v7, with
v4 ≻ v1 and v3 ≻ v7 and the initial leaf set {v7, v5, v1} of Section V-B.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.road.network import RoadNetwork, SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

#: Social edges of Fig. 1(a): dense cluster v1..v7 (exact, derived from
#: the paper's core claims), sparse periphery v8..v15 (faithful stand-in).
PAPER_SOCIAL_EDGES = [
    (1, 2), (1, 3), (1, 7),
    (2, 3), (2, 5), (2, 6), (2, 7),
    (3, 4), (3, 6), (3, 7),
    (4, 5), (4, 6),
    (5, 6),
    (6, 7),
    (7, 9), (8, 9), (8, 10), (9, 10), (9, 14), (10, 11),
    (11, 12), (12, 13), (13, 14), (14, 15), (11, 15),
]

#: Fig. 2(a): 3-dimensional attribute vectors of v1..v7.
PAPER_ATTRIBUTES = {
    1: (8.8, 3.6, 2.2),
    2: (5.9, 6.2, 6.0),
    3: (2.8, 5.6, 5.1),
    4: (9.0, 3.3, 3.4),
    5: (5.0, 7.6, 3.1),
    6: (5.2, 8.3, 4.3),
    7: (2.1, 5.0, 5.1),
}

#: Road edges (u, v, weight); r_i is the location of v_i.
PAPER_ROAD_EDGES = [
    (1, 2, 3.0), (2, 3, 4.0), (3, 7, 3.0), (2, 6, 5.0), (2, 5, 4.0),
    (5, 6, 3.0), (6, 7, 7.0), (2, 4, 5.0), (4, 6, 8.0), (4, 5, 4.0),
    # periphery, far (> 9) from the query cluster
    (7, 9, 15.0), (4, 8, 15.0), (8, 9, 5.0), (9, 10, 5.0), (10, 11, 5.0),
    (11, 12, 5.0), (12, 13, 5.0), (13, 14, 5.0), (14, 15, 5.0),
    (9, 14, 5.0), (11, 15, 5.0),
]


def paper_road() -> RoadNetwork:
    road = RoadNetwork()
    for v in range(1, 16):
        road.add_vertex(v, (float(v % 4), float(v // 4)))
    for u, v, w in PAPER_ROAD_EDGES:
        road.add_edge(u, v, w)
    return road


def paper_social_graph() -> AdjacencyGraph:
    return AdjacencyGraph(PAPER_SOCIAL_EDGES)


def paper_attributes() -> dict[int, np.ndarray]:
    """Attributes for all 15 vertices (v8..v15 get low filler vectors)."""
    attrs = {v: np.asarray(x, dtype=float) for v, x in PAPER_ATTRIBUTES.items()}
    rng = np.random.default_rng(42)
    for v in range(8, 16):
        attrs[v] = rng.uniform(0.5, 2.0, size=3)
    return attrs


@pytest.fixture
def road() -> RoadNetwork:
    return paper_road()


@pytest.fixture
def social_graph() -> AdjacencyGraph:
    return paper_social_graph()


@pytest.fixture
def paper_network() -> RoadSocialNetwork:
    """The full running example as a RoadSocialNetwork."""
    road = paper_road()
    graph = paper_social_graph()
    attrs = paper_attributes()
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(road, SocialNetwork(graph, attrs, locations))


@pytest.fixture
def paper_region() -> PreferenceRegion:
    """Fig. 2(b): R = [0.1, 0.5] x [0.2, 0.4] in the reduced domain."""
    return PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def random_graph(
    n: int, p: float, seed: int, ensure_vertices: bool = True
) -> AdjacencyGraph:
    """Erdős–Rényi helper for randomized tests."""
    rng = np.random.default_rng(seed)
    g = AdjacencyGraph()
    if ensure_vertices:
        for v in range(n):
            g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g
