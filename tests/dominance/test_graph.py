"""r-dominance graph (Gd) tests: Fig. 4(b) exactly, plus DAG invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dominance.graph import DominanceGraph
from repro.dominance.relation import r_dominates
from repro.errors import GeometryError
from repro.geometry.region import PreferenceRegion

from tests.conftest import PAPER_ATTRIBUTES


@pytest.fixture
def paper_gd(paper_region):
    attrs = {v: np.asarray(x) for v, x in PAPER_ATTRIBUTES.items()}
    return DominanceGraph(attrs, paper_region)


class TestFig4b:
    """The exact r-dominance graph of the paper's running example."""

    def test_roots_are_v2_v4_v6(self, paper_gd):
        assert sorted(paper_gd.roots) == [2, 4, 6]

    def test_leaves_are_v1_v5_v7(self, paper_gd):
        assert paper_gd.leaves_within(paper_gd.vertices()) == [1, 5, 7]

    def test_hasse_parents(self, paper_gd):
        assert sorted(paper_gd.parents[3]) == [2, 6]
        assert sorted(paper_gd.parents[5]) == [2, 6]
        assert sorted(paper_gd.parents[1]) == [4]
        # transitive reduction: v7's only parent is v3 (v2, v6 implied)
        assert sorted(paper_gd.parents[7]) == [3]

    def test_layers(self, paper_gd):
        assert paper_gd.layer(2) == paper_gd.layer(4) == paper_gd.layer(6) == 0
        assert paper_gd.layer(3) == paper_gd.layer(5) == paper_gd.layer(1) == 1
        assert paper_gd.layer(7) == 2

    def test_r_dominance_counts(self, paper_gd):
        assert paper_gd.r_dominance_count(2) == 0
        assert paper_gd.r_dominance_count(7) == 3  # v2, v3, v6
        assert paper_gd.r_dominance_count(1) == 1  # v4

    def test_ancestors_descendants(self, paper_gd):
        assert paper_gd.ancestors(7) == {2, 3, 6}
        assert paper_gd.descendants(2) == {3, 5, 7}
        assert paper_gd.descendants(4) == {1}


class TestSubsetSweeps:
    def test_leaves_within_subset(self, paper_gd):
        # Ge for H1 = {2,3,6,7}: the bottom layer is {7}.
        assert paper_gd.leaves_within({2, 3, 6, 7}) == [7]
        # Ge for H3 = {2..6}: v3/v5 dominate nothing inside; v4's only
        # descendant (v1) is outside -> leaves are {3, 4, 5}.
        assert paper_gd.leaves_within({2, 3, 4, 5, 6}) == [3, 4, 5]

    def test_tops_within_gc_of_h1(self, paper_gd):
        """Gc for H1 = {1, 4, 5}: lt(Gc) = {4, 5} (v1 under v4)."""
        assert paper_gd.tops_within({1, 4, 5}) == [4, 5]

    def test_descendant_flags(self, paper_gd):
        flags = paper_gd.has_descendant_in({7})
        assert flags[3] and flags[2] and flags[6]
        assert not flags[4] and not flags[1] and not flags[7]

    def test_ancestor_flags(self, paper_gd):
        flags = paper_gd.has_ancestor_in({4})
        assert flags[1]
        assert not flags[2] and not flags[7]


class TestScoresAndHalfspaces:
    def test_score_at(self, paper_gd):
        w = np.array([0.2, 0.3])
        assert paper_gd.score_at(7, w) == pytest.approx(4.47)

    def test_halfspace_cached(self, paper_gd):
        h1 = paper_gd.halfspace(7, 5)
        h2 = paper_gd.halfspace(7, 5)
        assert h1 is h2

    def test_halfspace_semantics(self, paper_gd, paper_region):
        h = paper_gd.halfspace(7, 5)  # S(v7) >= S(v5)
        rng = np.random.default_rng(0)
        for w in paper_region.sample(rng, 30):
            lhs = paper_gd.score_at(7, w) >= paper_gd.score_at(5, w)
            assert lhs == h.contains(w, tol=1e-9) or abs(
                paper_gd.score_at(7, w) - paper_gd.score_at(5, w)
            ) < 1e-7


class TestValidation:
    def test_empty_rejected(self, paper_region):
        with pytest.raises(GeometryError):
            DominanceGraph({}, paper_region)

    def test_dimension_mismatch(self, paper_region):
        with pytest.raises(GeometryError):
            DominanceGraph({1: np.array([1.0, 2.0])}, paper_region)

    def test_rtree_and_sort_paths_agree(self, paper_region):
        attrs = {v: np.asarray(x) for v, x in PAPER_ATTRIBUTES.items()}
        g1 = DominanceGraph(attrs, paper_region, use_rtree=True)
        g2 = DominanceGraph(attrs, paper_region, use_rtree=False)
        assert g1.parents == g2.parents
        assert g1.order == g2.order


class TestEqualVectors:
    def test_duplicate_attributes_stay_acyclic(self, paper_region):
        attrs = {
            1: np.array([5.0, 5.0, 5.0]),
            2: np.array([5.0, 5.0, 5.0]),
            3: np.array([1.0, 1.0, 1.0]),
        }
        gd = DominanceGraph(attrs, paper_region)
        # one of the twins dominates the other (deterministic tie-break)
        assert (2 in gd.descendants(1)) != (1 in gd.descendants(2))
        assert gd.leaves_within([1, 2, 3]) == [3]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 5_000), st.integers(4, 16))
def test_hasse_invariants_random(seed, n):
    """Arcs agree with r-dominance; reduction has no shortcuts; the
    insertion order is topological."""
    rng = np.random.default_rng(seed)
    region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
    attrs = {i: rng.uniform(0, 10, 3) for i in range(n)}
    gd = DominanceGraph(attrs, region)
    pos = {v: i for i, v in enumerate(gd.order)}
    for v in gd.vertices():
        for p in gd.parents[v]:
            assert r_dominates(attrs[p], attrs[v], region)
            assert pos[p] < pos[v]
            # no intermediate dominator between p and v
            for q in gd.ancestors(v) - {p}:
                assert not (
                    q in gd.descendants(p) and v in gd.descendants(q)
                )
    # every true dominance is reflected as ancestry
    ids = sorted(attrs)
    for u in ids:
        for v in ids:
            if u != v and r_dominates(attrs[u], attrs[v], region):
                if not r_dominates(attrs[v], attrs[u], region):
                    assert v in gd.descendants(u)
