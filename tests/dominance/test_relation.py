"""r-dominance tests: the Fig. 3 cases on the paper's exact numbers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dominance.relation import (
    DOMINATED,
    DOMINATES,
    EQUAL,
    INCOMPARABLE,
    corner_scores,
    dominance_case,
    dominates_box,
    r_dominates,
)
from repro.geometry.halfspace import score
from repro.geometry.region import PreferenceRegion

from tests.conftest import PAPER_ATTRIBUTES


def _x(v):
    return np.asarray(PAPER_ATTRIBUTES[v], dtype=float)


def _case(u, v, region):
    corners = region.corners()
    return dominance_case(
        corner_scores(_x(u), corners), corner_scores(_x(v), corners)
    )


class TestPaperCases:
    """Hand-verified relations of Fig. 4(b) over R=[0.1,0.5]x[0.2,0.4]."""

    def test_v4_dominates_v1(self, paper_region):
        assert _case(4, 1, paper_region) == DOMINATES
        assert _case(1, 4, paper_region) == DOMINATED

    def test_v3_dominates_v7(self, paper_region):
        assert _case(3, 7, paper_region) == DOMINATES

    def test_v2_dominates_v3_v5_v7(self, paper_region):
        for v in (3, 5, 7):
            assert _case(2, v, paper_region) == DOMINATES

    def test_v6_dominates_v3_v5_v7(self, paper_region):
        for v in (3, 5, 7):
            assert _case(6, v, paper_region) == DOMINATES

    def test_tops_incomparable(self, paper_region):
        assert _case(2, 6, paper_region) == INCOMPARABLE
        assert _case(2, 4, paper_region) == INCOMPARABLE
        assert _case(6, 4, paper_region) == INCOMPARABLE

    def test_initial_leaf_pairs_incomparable(self, paper_region):
        """v7, v5, v1: the initial leaves of Section V-B."""
        assert _case(7, 5, paper_region) == INCOMPARABLE
        assert _case(7, 1, paper_region) == INCOMPARABLE
        assert _case(1, 5, paper_region) == INCOMPARABLE

    def test_equal_vectors(self, paper_region):
        assert _case(2, 2, paper_region) == EQUAL

    def test_r_dominates_weak(self, paper_region):
        assert r_dominates(_x(4), _x(1), paper_region)
        assert r_dominates(_x(2), _x(2), paper_region)
        assert not r_dominates(_x(1), _x(4), paper_region)


class TestRegionSensitivity:
    def test_narrower_region_creates_dominance(self):
        """v2 vs v6 are incomparable on R but comparable on a sub-box."""
        left = PreferenceRegion([0.1, 0.2], [0.15, 0.25])
        # at (0.1, 0.2): S(v2)=6.03 > S(v6)=5.19 -> v2 dominates there
        assert _case(2, 6, left) == DOMINATES

    def test_one_dimension(self):
        region = PreferenceRegion()
        a, b = np.array([5.0]), np.array([3.0])
        assert r_dominates(a, b, region)
        assert not r_dominates(b, a, region)


class TestDominatesBox:
    def test_upper_corner_rule(self, paper_region):
        assert dominates_box(_x(2), np.array([2.0, 5.0, 5.0]), paper_region)
        assert not dominates_box(
            _x(7), np.array([9.0, 9.0, 9.0]), paper_region
        )


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_dominance_agrees_with_dense_sampling(seed):
    """corner test == 'for all w in R' on a dense sample grid."""
    rng = np.random.default_rng(seed)
    region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
    xu = rng.uniform(0, 10, 3)
    xv = rng.uniform(0, 10, 3)
    claimed = r_dominates(xu, xv, region)
    samples = region.sample(rng, 60)
    sampled_all_geq = all(
        score(xu, w) >= score(xv, w) - 1e-7 for w in samples
    )
    if claimed:
        assert sampled_all_geq
    # the converse needs the corners themselves:
    corners_all_geq = all(
        score(xu, c) >= score(xv, c) - 1e-12 for c in region.corners()
    )
    assert claimed == corners_all_geq


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_transitivity(seed):
    rng = np.random.default_rng(seed)
    region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
    xs = rng.uniform(0, 10, size=(3, 3))
    if r_dominates(xs[0], xs[1], region) and r_dominates(
        xs[1], xs[2], region
    ):
        assert r_dominates(xs[0], xs[2], region)
