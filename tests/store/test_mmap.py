"""Uncompressed snapshots + memory-mapped loads (the worker tier's diet)."""

import numpy as np
import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store.snapshot import _MmapArchive, _open_arrays, read_manifest

from tests.conftest import paper_attributes, paper_road, paper_social_graph


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


@pytest.fixture
def request_() -> MACRequest:
    return MACRequest.make(
        (2, 3, 6), 3, 9.0, PreferenceRegion([0.1, 0.2], [0.5, 0.4])
    )


def build_snapshot(tmp_path, request_, compress: bool):
    engine = MACEngine(make_network(), backend="flat", use_gtree=True)
    result = engine.search(request_)
    path = tmp_path / ("snap-c" if compress else "snap-u")
    manifest = engine.save(path, compress=compress)
    return path, manifest, result


def members(result):
    return [sorted(entry.best.members) for entry in result.partitions]


class TestUncompressedLayout:
    def test_manifest_records_the_layout(self, tmp_path, request_):
        path, manifest, _result = build_snapshot(tmp_path, request_, False)
        assert manifest["compressed"] is False
        assert read_manifest(path)["compressed"] is False
        path, manifest, _result = build_snapshot(tmp_path, request_, True)
        assert manifest["compressed"] is True

    def test_mmap_load_matches_the_compressed_round_trip(
        self, tmp_path, request_
    ):
        path, _manifest, cold = build_snapshot(tmp_path, request_, False)
        engine = MACEngine.load(path, make_network(), mmap=True)
        warm = engine.search(request_)
        assert members(warm) == members(cold)
        timings = warm.extra["engine"]["timings"]
        assert timings["filter"] == timings["core"] == 0.0

    def test_mmap_load_is_file_backed(self, tmp_path, request_):
        path, _manifest, _cold = build_snapshot(tmp_path, request_, False)
        engine = MACEngine.load(path, make_network(), mmap=True)
        flat = engine.network.road._flat

        def backing(arr):
            # from_arrays may wrap the memmap in zero-copy ndarray
            # views; walk the base chain to the memmap that owns the
            # buffer (whose own base is the raw mmap.mmap).
            while not isinstance(arr, np.memmap) and arr.base is not None:
                arr = arr.base
            return arr

        # The CSR payload is a read-only view into arrays.npz, not a
        # private copy — this is what N workers page-share.
        for arr in (flat.indptr, flat.indices):
            owner = backing(arr)
            assert isinstance(owner, np.memmap)
            assert str(owner.filename) == str(path / "arrays.npz")
            assert not arr.flags.writeable

    def test_archive_counts_mapped_members(self, tmp_path, request_):
        path, _manifest, _cold = build_snapshot(tmp_path, request_, False)
        with _open_arrays(path, mmap=True) as npz:
            assert isinstance(npz, _MmapArchive)
            arr = npz["road_flat.indptr"]
            assert isinstance(arr, np.memmap)
            assert npz.mapped == 1

    def test_mmap_member_equals_decompressed_member(self, tmp_path, request_):
        path, _manifest, _cold = build_snapshot(tmp_path, request_, False)
        plain = np.load(path / "arrays.npz")
        with _open_arrays(path, mmap=True) as npz:
            for key in sorted(plain.files):
                np.testing.assert_array_equal(np.asarray(npz[key]), plain[key])


class TestCompressedFallback:
    def test_mmap_on_a_compressed_snapshot_degrades_to_copies(
        self, tmp_path, request_
    ):
        path, _manifest, cold = build_snapshot(tmp_path, request_, True)
        with _open_arrays(path, mmap=True) as npz:
            arr = npz["road_flat.indptr"]
            assert not isinstance(arr, np.memmap)
            assert npz.mapped == 0
        engine = MACEngine.load(path, make_network(), mmap=True)
        assert members(engine.search(request_)) == members(cold)

    def test_default_load_still_reads_uncompressed_snapshots(
        self, tmp_path, request_
    ):
        path, _manifest, cold = build_snapshot(tmp_path, request_, False)
        engine = MACEngine.load(path, make_network())
        assert not isinstance(engine.network.road._flat.indptr, np.memmap)
        assert members(engine.search(request_)) == members(cold)
