"""Network fingerprints: determinism and sensitivity."""

from __future__ import annotations

from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store import network_fingerprint

from tests.conftest import paper_attributes, paper_road, paper_social_graph


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


class TestFingerprint:
    def test_deterministic_across_rebuilds(self):
        assert network_fingerprint(make_network()) == network_fingerprint(
            make_network()
        )

    def test_format(self):
        fp = network_fingerprint(make_network())
        assert fp.startswith("sha256:")
        assert len(fp) == len("sha256:") + 64

    def test_sensitive_to_road_edge(self):
        net = make_network()
        net.road.add_edge(1, 5, 2.0)
        assert network_fingerprint(net) != network_fingerprint(
            make_network()
        )

    def test_sensitive_to_road_weight(self):
        net = make_network()
        net.road.add_edge(1, 2, 3.5)  # was 3.0
        assert network_fingerprint(net) != network_fingerprint(
            make_network()
        )

    def test_sensitive_to_social_edge(self):
        net = make_network()
        net.social.graph.add_edge(1, 15)
        assert network_fingerprint(net) != network_fingerprint(
            make_network()
        )

    def test_sensitive_to_attributes(self):
        net = make_network()
        net.social.attributes[3] = net.social.attributes[3] + 0.25
        assert network_fingerprint(net) != network_fingerprint(
            make_network()
        )

    def test_sensitive_to_locations(self):
        net = make_network()
        net.social.set_location(4, SpatialPoint.on_edge(2, 3, 1.0))
        assert network_fingerprint(net) != network_fingerprint(
            make_network()
        )

    def test_dataset_fingerprint_is_reproducible(self):
        from repro import datasets

        a = datasets.load_dataset("sf+slashdot", scale=0.03, seed=7)
        b = datasets.load_dataset("sf+slashdot", scale=0.03, seed=7)
        c = datasets.load_dataset("sf+slashdot", scale=0.03, seed=8)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
