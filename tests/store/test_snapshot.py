"""Snapshot round-trips, warm-start guarantees, and failure modes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    MACEngine,
    MACRequest,
    PreferenceRegion,
    SnapshotError,
)
from repro.errors import GraphError
from repro.dominance.graph import DominanceGraph
from repro.kernels.flatgraph import FlatGraph
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store.snapshot import (
    FORMAT_VERSION,
    read_manifest,
    snapshot_info,
    verify_snapshot,
)

from tests.conftest import (
    paper_attributes,
    paper_road,
    paper_social_graph,
)


def make_network() -> RoadSocialNetwork:
    """A fresh, content-identical copy of the paper's running example."""
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


@pytest.fixture
def region() -> PreferenceRegion:
    return PreferenceRegion([0.1, 0.2], [0.5, 0.4])


@pytest.fixture
def request_(region) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, 9.0, region)


def warmed_snapshot(tmp_path, request_, backend: str, use_gtree: bool = True):
    """Build + search + save; returns (engine, result, snapshot path)."""
    engine = MACEngine(
        make_network(), backend=backend, use_gtree=use_gtree
    )
    result = engine.search(request_)
    path = tmp_path / "snap"
    engine.save(path)
    return engine, result, path


def members(result):
    return [sorted(entry.best.members) for entry in result.partitions]


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["flat", "python"])
    def test_first_query_after_load_builds_nothing(
        self, tmp_path, request_, backend
    ):
        _engine, cold, path = warmed_snapshot(tmp_path, request_, backend)
        engine = MACEngine.load(path, make_network())
        warm = engine.search(request_)

        timings = warm.extra["engine"]["timings"]
        assert timings["filter"] == 0.0
        assert timings["core"] == 0.0
        assert timings["dominance"] == 0.0
        cache = warm.extra["engine"]["cache"]
        assert cache["filter"] == "hit"
        assert cache["core"] == "hit"
        assert cache["dominance"] == "hit"
        stage = engine.telemetry().stage_seconds
        assert stage["filter"] == 0.0
        assert stage["core"] == 0.0
        assert stage["dominance"] == 0.0
        assert members(warm) == members(cold)
        assert warm.htk_vertices == cold.htk_vertices

    @pytest.mark.parametrize("backend", ["flat", "python"])
    def test_loaded_engine_matches_fresh_engine(
        self, tmp_path, request_, region, backend
    ):
        _engine, _cold, path = warmed_snapshot(tmp_path, request_, backend)
        loaded = MACEngine.load(path, make_network())
        fresh = MACEngine(
            make_network(), backend=backend, use_gtree=True
        )
        other = MACRequest.make(
            (2, 3, 6), 3, 9.0, region, j=2, problem="topj"
        )
        for req in (request_, other):
            assert members(loaded.search(req)) == members(fresh.search(req))

    def test_gtree_round_trips(self, tmp_path, request_):
        engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        network = make_network()
        MACEngine.load(path, network)
        assert network.has_gtree
        original = engine.network.gtree
        restored = network.gtree
        assert restored.num_nodes == original.num_nodes
        assert restored.num_leaves == original.num_leaves
        assert restored.leaf_size == original.leaf_size
        for source in (2, 6, 9, SpatialPoint.on_edge(2, 3, 1.5)):
            for bound in (5.0, 9.0, 40.0):
                assert restored.range_query(source, bound) == pytest.approx(
                    original.range_query(source, bound)
                )

    def test_infeasible_core_entry_round_trips(self, tmp_path, region):
        impossible = MACRequest.make((2, 3, 6), 9, 9.0, region)
        engine = MACEngine(make_network(), backend="flat")
        assert engine.search(impossible).partitions == []
        path = tmp_path / "snap"
        engine.save(path)
        loaded = MACEngine.load(path, make_network())
        result = loaded.search(impossible)
        assert result.partitions == []
        assert result.extra["engine"]["cache"]["core"] == "hit"
        stage = loaded.telemetry().stage_seconds
        assert stage["filter"] == stage["core"] == 0.0

    def test_engine_config_restored_and_overridable(
        self, tmp_path, request_
    ):
        engine = MACEngine(
            make_network(),
            backend="python",
            use_gtree=False,
            auto_local_threshold=7,
        )
        engine.search(request_)
        path = tmp_path / "snap"
        engine.save(path)
        loaded = MACEngine.load(path, make_network())
        assert loaded._default_backend == "python"
        assert loaded._default_use_gtree is False
        assert loaded.auto_local_threshold == 7
        overridden = MACEngine.load(
            path, make_network(), auto_local_threshold=99
        )
        assert overridden.auto_local_threshold == 99

    def test_save_returns_manifest_and_info_reads_back(
        self, tmp_path, request_
    ):
        engine = MACEngine(make_network(), backend="flat", use_gtree=True)
        engine.search(request_)
        manifest = engine.save(tmp_path / "snap")
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["fingerprint"].startswith("sha256:")
        info = snapshot_info(tmp_path / "snap")
        assert info["entry_counts"] == {
            "filter": 1, "core": 1, "dominance": 1,
        }
        assert info["has_gtree"] is True
        assert info["files"]["arrays.npz"] > 0

    def test_verify_ok_with_and_without_network(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        info = verify_snapshot(path)
        assert info["arrays_checked"] > 0
        assert info["fingerprint_checked"] is False
        info = verify_snapshot(path, network=make_network())
        assert info["fingerprint_checked"] is True


class TestFailureModes:
    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError, match="not an index snapshot"):
            MACEngine.load(tmp_path / "nope", make_network())

    def test_unparseable_manifest(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(SnapshotError, match="unreadable"):
            MACEngine.load(path, make_network())

    def test_format_version_mismatch(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version"):
            MACEngine.load(path, make_network())
        with pytest.raises(SnapshotError, match="format version"):
            verify_snapshot(path)

    def test_wrong_format_name(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format"] = "something-else"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="manifest"):
            read_manifest(path)

    def test_truncated_archive(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        arrays = path / "arrays.npz"
        data = arrays.read_bytes()
        arrays.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="corrupt"):
            MACEngine.load(path, make_network())
        with pytest.raises(SnapshotError, match="corrupt"):
            verify_snapshot(path)

    def test_garbage_archive(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        (path / "arrays.npz").write_bytes(b"\x00" * 128)
        with pytest.raises(SnapshotError, match="corrupt"):
            MACEngine.load(path, make_network())

    def test_missing_archive(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        (path / "arrays.npz").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            MACEngine.load(path, make_network())

    def test_missing_promised_array(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        arrays = dict(np.load(path / "arrays.npz"))
        arrays.pop("gtree.mat_w")
        np.savez_compressed(path / "arrays.npz", **arrays)
        with pytest.raises(SnapshotError, match="missing array"):
            verify_snapshot(path)
        with pytest.raises(SnapshotError, match="missing array"):
            MACEngine.load(path, make_network())

    def test_fingerprint_mismatch_on_load_and_verify(
        self, tmp_path, request_
    ):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        other = make_network()
        other.road.add_edge(1, 5, 2.0)
        with pytest.raises(SnapshotError, match="different network"):
            MACEngine.load(path, other)
        with pytest.raises(SnapshotError, match="does not match"):
            verify_snapshot(path, network=other)

    def test_resave_over_existing_snapshot(self, tmp_path, request_, region):
        engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        other = MACRequest.make((2, 3, 6), 4, 9.0, region)
        engine.search(other)
        engine.save(path)  # overwrite in place with more entries
        loaded = MACEngine.load(path, make_network())
        for req in (request_, other):
            result = loaded.search(req)
            assert result.extra["engine"]["cache"]["core"] == "hit"
        assert not list(tmp_path.glob("snap/tmp-*"))
        assert not list(tmp_path.glob("snap/*.tmp"))

    def test_interrupted_resave_cannot_pair_old_manifest_new_arrays(
        self, tmp_path, request_, region, monkeypatch
    ):
        # Crash-safety contract: once a re-save has begun writing, the
        # old manifest must already be gone, so a crash before the new
        # manifest lands leaves a snapshot that fails to load loudly.
        engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")

        boom = RuntimeError("simulated crash during savez")

        def exploding_savez(*args, **kwargs):
            raise boom

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(RuntimeError):
            engine.save(path)
        monkeypatch.undo()
        with pytest.raises(SnapshotError, match="not an index snapshot"):
            MACEngine.load(path, make_network())

    def test_save_refuses_file_path(self, tmp_path, request_):
        target = tmp_path / "occupied"
        target.write_text("hello")
        engine = MACEngine(make_network())
        with pytest.raises(SnapshotError, match="not a directory"):
            engine.save(target)


class TestContentChecksums:
    def test_save_records_a_checksum_per_array(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        manifest = json.loads((path / "manifest.json").read_text())
        checksums = manifest["checksums"]
        with np.load(path / "arrays.npz") as npz:
            assert set(checksums) == set(npz.files)
        assert all(len(digest) == 64 for digest in checksums.values())

    def test_deep_verify_passes_and_counts(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        shallow = verify_snapshot(path)
        assert shallow["deep"] is False
        assert shallow["checksums_checked"] == 0
        deep = verify_snapshot(path, deep=True)
        assert deep["deep"] is True
        assert deep["checksums_checked"] == deep["arrays_checked"] > 0

    def test_bit_rot_fails_deep_but_not_shallow(self, tmp_path, request_):
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        arrays = dict(np.load(path / "arrays.npz"))
        key = next(k for k, a in arrays.items() if a.size > 0)
        flipped = np.array(arrays[key])
        flipped.flat[0] += 1
        arrays[key] = flipped
        np.savez_compressed(path / "arrays.npz", **arrays)
        # Same dtype and shape: the structural check cannot see the rot.
        assert verify_snapshot(path)["arrays_checked"] > 0
        with pytest.raises(SnapshotError, match="content checksum"):
            verify_snapshot(path, deep=True)

    def test_pre_checksum_snapshots_stay_loadable(self, tmp_path, request_):
        """Snapshots saved before checksums existed (no ``checksums``
        table) still load and deep-verify — vacuously, with zero
        checksums checked — rather than failing the upgrade."""
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        manifest = json.loads((path / "manifest.json").read_text())
        del manifest["checksums"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        engine = MACEngine.load(path, make_network())
        assert engine.search(request_).partitions
        info = verify_snapshot(path, deep=True)
        assert info["deep"] is True
        assert info["checksums_checked"] == 0

    def test_checksum_is_layout_independent(self, tmp_path, request_):
        """The digest covers dtype/shape/content, not the npz encoding:
        an uncompressed re-save of identical arrays deep-verifies
        against the checksums recorded at compressed save time."""
        _engine, _result, path = warmed_snapshot(tmp_path, request_, "flat")
        arrays = dict(np.load(path / "arrays.npz"))
        np.savez(path / "arrays.npz", **arrays)  # uncompressed layout
        info = verify_snapshot(path, deep=True)
        assert info["checksums_checked"] > 0


class TestComponentCodecs:
    def test_flatgraph_array_round_trip_weighted(self):
        road = paper_road()
        original = road.flat()
        restored = FlatGraph.from_arrays(**original.to_arrays())
        assert restored.ids == original.ids
        assert np.array_equal(restored.indptr, original.indptr)
        assert np.array_equal(restored.indices, original.indices)
        assert np.array_equal(restored.weights, original.weights)
        assert restored.row_of(9) == original.row_of(9)
        assert 999 not in restored

    def test_flatgraph_array_round_trip_unweighted(self):
        original = FlatGraph.from_adjacency(paper_social_graph())
        restored = FlatGraph.from_arrays(**original.to_arrays())
        assert restored.ids == original.ids
        assert restored.weights is None
        assert np.array_equal(restored.indptr, original.indptr)

    def test_flatgraph_rejects_non_int_ids(self):
        fg = FlatGraph.from_adjacency(
            type("G", (), {
                "vertices": lambda self: ["a", "b"],
                "neighbors": lambda self, v: {"a": {"b"}, "b": {"a"}}[v],
            })()
        )
        with pytest.raises(GraphError, match="int-keyed"):
            fg.to_arrays()

    def test_dominance_from_hasse_identity(self, region):
        attrs = {
            v: x for v, x in paper_attributes().items() if v <= 7
        }
        original = DominanceGraph(attrs, region, backend="flat")
        restored = DominanceGraph.from_hasse(
            attrs, region, original.order, original.parents, backend="flat"
        )
        assert restored.order == original.order
        assert restored.parents == original.parents
        assert restored.children == original.children
        assert restored.roots == original.roots
        assert all(
            restored.layer(v) == original.layer(v) for v in original.order
        )
        assert restored.tops_within([1, 3, 5]) == original.tops_within(
            [1, 3, 5]
        )

    def test_dominance_from_hasse_rejects_bad_order(self, region):
        attrs = {v: x for v, x in paper_attributes().items() if v <= 3}
        original = DominanceGraph(attrs, region)
        with pytest.raises(GraphError, match="permutation"):
            DominanceGraph.from_hasse(
                attrs, region, original.order[:-1], original.parents
            )
