"""Stall watchdog: wedged workers are detected, killed, and refilled."""

import threading
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import ServiceError, WorkerStalled
from repro.pool import Fault, FaultPlan, WorkerPool
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(t: float = 9.0, **knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, t, REGION, **knobs)


def requests_routed_to(pool: WorkerPool, slot: int, count: int):
    """Distinct requests whose affinity route lands on ``slot``.

    Routing hashes the request's core identity, so perturbing ``t``
    walks the hash; the pool need not be started for ``route_for``.
    """
    out = []
    t = 9.0
    while len(out) < count:
        request = make_request(t=t)
        if pool.route_for(request) == slot:
            out.append(request)
        t += 0.01
        if t > 12.0:  # pragma: no cover - hash would have to be degenerate
            raise AssertionError("could not find requests for the slot")
    return out


def wait_until(predicate, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached before timeout")


def refilled(pool) -> bool:
    """The kill has landed AND the replacement is up: ``alive`` alone
    can be observed before the SIGKILLed worker's sentinel fires, while
    the old worker still counts as alive-but-stalled."""
    wire = pool.workers_wire()
    return (
        wire["restarts"] >= 1
        and wire["alive"] == wire["total"]
        and not any(w["stalled"] for w in wire["workers"])
    )


@pytest.fixture(scope="module")
def engine():
    return MACEngine(make_network())


class TestWedgeFaultParsing:
    @pytest.mark.parametrize("kind", ["hang", "busy_loop"])
    def test_wire_round_trip(self, kind):
        fault = Fault.parse(
            {"kind": kind, "slot": 1, "op": "search", "after": 2,
             "incarnation": None}
        )
        assert Fault.parse(fault.to_wire()) == fault
        # Wedge faults carry no seconds/exit_code payload on the wire.
        assert "seconds" not in fault.to_wire()
        assert "exit_code" not in fault.to_wire()

    def test_wedge_kind_matches_only_its_coordinates(self):
        plan = FaultPlan.parse(
            {"kind": "hang", "slot": 1, "op": "search", "after": 2}
        )
        assert plan.wedge_kind(1, 0, "search", 2) == "hang"
        assert plan.wedge_kind(1, 0, "search", 1) is None
        assert plan.wedge_kind(0, 0, "search", 2) is None
        assert plan.wedge_kind(1, 1, "search", 2) is None  # respawned
        assert plan.wedge_kind(1, 0, "ping", 2) is None

    def test_bad_config_is_typed(self):
        with pytest.raises(ServiceError, match="stall_timeout"):
            WorkerPool(MACEngine(make_network()), 1, stall_timeout=0.0)


class TestStallWatchdog:
    def test_watchdog_is_off_by_default(self, engine):
        plan = FaultPlan.parse({"kind": "hang", "slot": 0, "after": 1})
        pool = WorkerPool(engine, 1, fault_plan=plan).start()
        try:
            future = pool.submit_op(
                0, "search", (make_request(), time.monotonic())
            )
            time.sleep(1.2)
            # No watchdog: the wedge is invisible — the op just never
            # completes and the worker stays "alive".
            assert not future.done()
            assert pool.workers_wire()["alive"] == 1
            assert pool.pool_wire()["stalled_workers"] == 0
        finally:
            pool.stop(timeout=0.5)  # drain escalates past the wedge

    def test_hang_under_concurrent_load(self, engine):
        """The ISSUE acceptance scenario: one worker wedges mid-search
        under three-thread load; the watchdog SIGKILLs and refills it,
        the wedged request fails typed, and the others complete exactly.
        """
        stall = 0.6
        probe = WorkerPool(engine, 2)  # never started: routing only
        doomed = make_request()
        wedged_slot = probe.route_for(doomed)
        healthy = requests_routed_to(probe, 1 - wedged_slot, 2)
        plan = FaultPlan.parse(
            {"kind": "hang", "slot": wedged_slot, "op": "search",
             "after": 1, "incarnation": 0}
        )
        reference = [
            [[sorted(c.members) for c in e.communities]
             for e in engine.search(r).partitions]
            for r in healthy
        ]
        outcomes: dict = {}
        with WorkerPool(
            engine, 2, stall_timeout=stall, fault_plan=plan
        ) as pool:
            def run(name, request):
                try:
                    outcomes[name] = pool.search_wire(request)
                except Exception as exc:
                    outcomes[name] = exc

            started = time.monotonic()
            threads = [
                threading.Thread(target=run, args=(f"ok{i}", r))
                for i, r in enumerate(healthy)
            ] + [threading.Thread(target=run, args=("doomed", doomed))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert isinstance(outcomes["doomed"], WorkerStalled)
            assert "watchdog" in str(outcomes["doomed"])
            # The slot is refilled within ~2x the stall timeout.
            wait_until(
                lambda: refilled(pool),
                timeout=max(2 * stall - (time.monotonic() - started), 0.05) + 1.0,
            )
            for i, want in enumerate(reference):
                got = outcomes[f"ok{i}"]
                assert not isinstance(got, Exception), got
                assert [p["communities"] for p in got["partitions"]] == want
            wire = pool.pool_wire()
            assert wire["stalled_workers"] == 1
            assert wire["restarts"] >= 1
            assert wire["workers"][wedged_slot]["stalled"] is False  # refilled
            # The replacement incarnation serves the same request fine.
            assert pool.search_wire(doomed)["partitions"]

    def test_busy_loop_is_killed_and_refilled(self, engine):
        plan = FaultPlan.parse(
            {"kind": "busy_loop", "slot": 0, "op": "search", "after": 1}
        )
        with WorkerPool(
            engine, 1, stall_timeout=0.5, fault_plan=plan
        ) as pool:
            with pytest.raises(WorkerStalled, match="watchdog"):
                pool.search_wire(make_request())
            wait_until(lambda: refilled(pool))
            assert pool.search_wire(make_request())["partitions"]
            assert pool.pool_wire()["stalled_workers"] == 1

    def test_idle_wedge_is_caught_by_heartbeat(self, engine):
        """A worker that wedges with an empty queue is still detected:
        the supervisor's heartbeat ping becomes the unanswered op."""
        plan = FaultPlan.parse(
            {"kind": "hang", "slot": 0, "op": "ping", "after": 1}
        )
        with WorkerPool(
            engine, 1, stall_timeout=0.4, fault_plan=plan
        ) as pool:
            # No traffic at all: the heartbeat must both trigger the
            # wedge and detect it.
            wait_until(
                lambda: pool.pool_wire()["stalled_workers"] >= 1, timeout=10.0
            )
            wait_until(lambda: refilled(pool))
            assert pool.search_wire(make_request())["partitions"]

    def test_request_deadline_clamps_the_stall_budget(self, engine):
        """With stall_timeout 30s, a deadline-bearing request must not
        wait 30s for its wedged worker — the watchdog budget is clamped
        to the deadline plus a small grace."""
        plan = FaultPlan.parse(
            {"kind": "hang", "slot": 0, "op": "search", "after": 1}
        )
        with WorkerPool(
            engine, 1, stall_timeout=30.0, fault_plan=plan
        ) as pool:
            started = time.monotonic()
            with pytest.raises(WorkerStalled):
                pool.search_wire(make_request(deadline=0.3))
            assert time.monotonic() - started < 5.0

    def test_telemetry_stays_bounded_while_a_worker_is_wedged(self, engine):
        plan = FaultPlan.parse(
            {"kind": "hang", "slot": 0, "op": "search", "after": 1}
        )
        pool = WorkerPool(engine, 2, fault_plan=plan).start()
        try:
            wedger = threading.Thread(
                target=lambda: pool.submit_op(
                    0, "search", (make_request(), time.monotonic())
                )
            )
            wedger.start()
            wedger.join()
            time.sleep(0.3)  # the worker is now wedged mid-op
            started = time.monotonic()
            tel = pool.telemetry_wire(timeout=0.5)
            assert time.monotonic() - started < 2.0
            assert "searches" in tel
            health = pool.workers_wire()
            assert health["stalled_workers"] == 0  # watchdog off: not marked
            assert {w["worker"] for w in health["workers"]} == {0, 1}
        finally:
            pool.stop(timeout=0.5)
