"""Supervised-restart tests: kill workers and watch the tier recover."""

import os
import signal
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import WorkerCrashed
from repro.pool import WorkerPool
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(**knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


def wait_until(predicate, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached before timeout")


@pytest.fixture
def engine():
    return MACEngine(make_network())


class TestSupervisedRestart:
    def test_sigkill_fails_in_flight_and_restarts(self, engine):
        with WorkerPool(engine, 2) as pool:
            victim = 0
            in_flight = pool.submit_op(victim, "sleep", 60.0)
            pid = pool.pool_wire()["workers"][victim]["pid"]
            os.kill(pid, signal.SIGKILL)

            # Only the in-flight request fails — typed, and promptly
            # (never a hang on the dead process).
            started = time.monotonic()
            with pytest.raises(WorkerCrashed, match=f"worker {victim}"):
                in_flight.result(timeout=30)
            assert time.monotonic() - started < 10.0

            # The supervisor refills the slot from the pre-fork engine.
            wait_until(lambda: pool.workers_wire()["alive"] == 2)
            wire = pool.workers_wire()
            assert wire["restarts"] == 1
            assert wire["workers"][victim]["restarts"] == 1
            assert wire["workers"][victim]["pid"] != pid

            # Subsequent requests succeed, including on the new worker.
            result = pool.search_wire(make_request())
            assert result["partitions"]
            pool.submit_op(victim, "ping").result(timeout=30)
            assert pool.pool_wire()["crashed_requests"] == 1

    def test_abrupt_exit_op_is_supervised_too(self, engine):
        with WorkerPool(engine, 1) as pool:
            crash = pool.submit_op(0, "exit", 3)
            with pytest.raises(WorkerCrashed, match="exit code 3"):
                crash.result(timeout=30)
            wait_until(lambda: pool.workers_wire()["alive"] == 1)
            assert pool.search_wire(make_request())["partitions"]

    def test_all_workers_down_surfaces_typed_not_hanging(self, engine):
        with WorkerPool(engine, 1) as pool:
            pool.submit_op(0, "sleep", 60.0)
            pid = pool.pool_wire()["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            wait_until(lambda: not pool.pool_wire()["workers"][0]["alive"]
                       or pool.workers_wire()["restarts"] >= 1)
            # Whether we hit the dead window or the restarted worker,
            # the call returns promptly with an answer or a typed error.
            started = time.monotonic()
            try:
                pool.search_wire(make_request())
            except WorkerCrashed:
                pass
            assert time.monotonic() - started < 15.0

    def test_telemetry_survives_a_restart(self, engine):
        with WorkerPool(engine, 1) as pool:
            pool.search_wire(make_request())
            before = pool.telemetry_wire()["searches"]
            assert before >= 1
            pid = pool.pool_wire()["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            wait_until(lambda: (w := pool.workers_wire())["restarts"] >= 1
                       and w["alive"] == 1)
            # The dead worker's last snapshot stays folded in: merged
            # counters never go backwards across restarts.
            assert pool.telemetry_wire()["searches"] >= before
            pool.search_wire(make_request(time_budget=77.0))
            assert pool.telemetry_wire()["searches"] >= before + 1
