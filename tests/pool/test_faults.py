"""Deterministic fault injection: the chaos harness of the worker tier."""

import json
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import ReloadError, ServiceError, WorkerCrashed
from repro.pool import Fault, FaultPlan, PoolExecutor, WorkerPool
from repro.pool.faults import ENV_VAR
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store import save_snapshot

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(**knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


def wait_until(predicate, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached before timeout")


@pytest.fixture(scope="module")
def engine():
    return MACEngine(make_network())


class TestFaultParsing:
    def test_defaults(self):
        fault = Fault.parse({"kind": "kill"})
        assert fault.slot is None  # every slot
        assert fault.op == "search"
        assert fault.after == 1
        assert fault.incarnation == 0  # first incarnation only: no bomb
        assert fault.exit_code == 137

    def test_wire_round_trip(self):
        fault = Fault.parse(
            {"kind": "delay_reply", "slot": 2, "op": "ping",
             "after": 3, "seconds": 0.5, "incarnation": None}
        )
        assert Fault.parse(fault.to_wire()) == fault

    def test_unknown_kind_is_typed(self):
        with pytest.raises(ServiceError, match="fault kind must be one of"):
            Fault.parse({"kind": "segfault"})

    def test_unknown_field_is_typed(self):
        with pytest.raises(ServiceError, match="unknown fault field"):
            Fault.parse({"kind": "kill", "when": "now"})

    def test_bad_values_are_typed(self):
        for spec in (
            {"kind": "kill", "slot": -1},
            {"kind": "kill", "after": 0},
            {"kind": "kill", "incarnation": -2},
            {"kind": "delay_reply", "seconds": 0.0},
            {"kind": "stall_drain", "seconds": -1},
            {"kind": "corrupt_snapshot", "count": 0},
            "not a dict",
        ):
            with pytest.raises(ServiceError):
                Fault.parse(spec)


class TestFaultPlan:
    def test_parse_accepts_every_surface_shape(self):
        spec = [{"kind": "kill", "slot": 1}]
        as_list = FaultPlan.parse(spec)
        as_json = FaultPlan.parse(json.dumps(spec))
        as_single = FaultPlan.parse(spec[0])
        as_wrapped = FaultPlan.parse({"faults": spec})
        assert (
            as_list.to_wire() == as_json.to_wire()
            == as_single.to_wire() == as_wrapped.to_wire()
        )
        assert len(as_list) == 1 and bool(as_list)

    def test_empty_plans_are_falsy(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse([])

    def test_malformed_json_is_typed(self):
        with pytest.raises(ServiceError, match="fault plan"):
            FaultPlan.parse("{not json")

    def test_from_env(self):
        environ = {ENV_VAR: '[{"kind": "kill", "after": 7}]'}
        plan = FaultPlan.from_env(environ)
        assert len(plan) == 1
        assert plan.to_wire()[0]["after"] == 7
        assert not FaultPlan.from_env({})

    def test_kill_matches_only_its_coordinates(self):
        plan = FaultPlan.parse(
            {"kind": "kill", "slot": 1, "op": "search", "after": 2,
             "exit_code": 9}
        )
        assert plan.kill_code(1, 0, "search", 2) == 9
        assert plan.kill_code(1, 0, "search", 1) is None  # not the Mth
        assert plan.kill_code(1, 0, "search", 3) is None  # exactly once
        assert plan.kill_code(0, 0, "search", 2) is None  # other slot
        assert plan.kill_code(1, 1, "search", 2) is None  # respawned
        assert plan.kill_code(1, 0, "ping", 2) is None  # other op


class TestInjectedFaults:
    def test_kill_on_nth_request_then_recovery(self, engine):
        plan = FaultPlan.parse(
            {"kind": "kill", "slot": 0, "op": "search", "after": 2}
        )
        with WorkerPool(engine, 1, fault_plan=plan) as pool:
            assert pool.search_wire(make_request())["partitions"]
            with pytest.raises(WorkerCrashed, match="worker 0"):
                pool.search_wire(make_request())
            # The supervisor refills the slot; incarnation 1 does not
            # match the fault, so the fleet is healthy again.
            wait_until(lambda: pool.workers_wire()["alive"] == 1)
            assert pool.search_wire(make_request())["partitions"]
            wire = pool.pool_wire()
            assert wire["restarts"] == 1
            assert wire["crashed_requests"] == 1
            assert wire["fault_plan"] == plan.to_wire()

    def test_delayed_reply_slows_exactly_the_nth_op(self, engine):
        plan = FaultPlan.parse(
            {"kind": "delay_reply", "op": "ping", "after": 2,
             "seconds": 0.4}
        )
        with WorkerPool(engine, 1, fault_plan=plan) as pool:
            started = time.monotonic()
            pool.submit_op(0, "ping").result(timeout=30)
            assert time.monotonic() - started < 0.3  # first: undelayed
            started = time.monotonic()
            pool.submit_op(0, "ping").result(timeout=30)
            assert time.monotonic() - started >= 0.4

    def test_stalled_drain_is_terminated_within_the_timeout(self, engine):
        plan = FaultPlan.parse({"kind": "stall_drain", "seconds": 30.0})
        pool = WorkerPool(
            engine, 1, fault_plan=plan, drain_timeout=0.5
        ).start()
        pool.search_wire(make_request())
        started = time.monotonic()
        pool.stop(timeout=0.5)
        # The stop sentinel wedged in the stalled worker; the pool
        # escalates to terminate instead of waiting the full 30s.
        assert time.monotonic() - started < 10.0

    def test_corrupt_snapshot_rolls_the_reload_back(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "snap")
        plan = FaultPlan.parse({"kind": "corrupt_snapshot", "count": 1})
        with WorkerPool(engine, 1, fault_plan=plan) as pool:
            executor = PoolExecutor(pool)
            before = pool.snapshot_wire()
            with pytest.raises(ReloadError, match="rolled back"):
                executor.reload(tmp_path / "snap")
            # Fleet untouched: same generation, still serving.
            assert pool.snapshot_wire() == before
            assert pool.search_wire(make_request())["partitions"]
            # The fault budget is consumed: the retry goes through.
            summary = executor.reload(tmp_path / "snap")
            assert summary["generation"] == before["generation"] + 1
