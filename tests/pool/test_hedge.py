"""Hedged dispatch: a second worker races the straggling primary."""

import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import ServiceError
from repro.pool import FaultPlan, WorkerPool
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(**knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


@pytest.fixture(scope="module")
def engine():
    return MACEngine(make_network())


def straggler_plan(slot: int, count: int, seconds: float = 1.0) -> FaultPlan:
    """Delay every one of the first ``count`` searches on ``slot``."""
    return FaultPlan.parse([
        {"kind": "delay_reply", "slot": slot, "op": "search",
         "after": n, "seconds": seconds, "incarnation": None}
        for n in range(1, count + 1)
    ])


class TestHedgeConfig:
    def test_bad_hedge_after_is_typed(self, engine):
        for bad in (0.0, -1.0, "soon"):
            with pytest.raises(ServiceError, match="hedge_after"):
                WorkerPool(engine, 2, hedge_after=bad)

    def test_hedge_after_is_reported_in_pool_wire(self, engine):
        with WorkerPool(engine, 2, hedge_after=0.25) as pool:
            wire = pool.pool_wire()
            assert wire["hedge_after"] == 0.25
            assert wire["hedges"] == 0
            assert wire["hedge_wins"] == 0
            assert wire["hedge_discarded"] == 0


class TestHedgedDispatch:
    def test_hedge_rescues_a_straggling_primary(self, engine):
        request = make_request()
        slot = WorkerPool(engine, 2).route_for(request)
        plan = straggler_plan(slot, count=1, seconds=1.0)
        with WorkerPool(
            engine, 2, hedge_after=0.05, fault_plan=plan
        ) as pool:
            started = time.monotonic()
            result = pool.search_wire(request)
            elapsed = time.monotonic() - started
            assert result["partitions"]
            assert elapsed < 0.9  # the 1.0s straggler did not gate us
            wire = pool.pool_wire()
            assert wire["hedges"] == 1
            assert wire["hedge_wins"] == 1
            # The primary was still in flight when the hedge won.
            assert wire["hedge_discarded"] == 1

    def test_no_hedge_when_the_primary_is_fast(self, engine):
        with WorkerPool(engine, 2, hedge_after=5.0) as pool:
            for _ in range(3):
                assert pool.search_wire(make_request())["partitions"]
            wire = pool.pool_wire()
            assert wire["hedges"] == 0
            assert wire["hedge_wins"] == 0

    def test_counters_are_monotone_and_never_double_count(self, engine):
        rounds = 4
        request = make_request()
        slot = WorkerPool(engine, 2).route_for(request)
        plan = straggler_plan(slot, count=rounds, seconds=0.6)
        with WorkerPool(
            engine, 2, hedge_after=0.05, fault_plan=plan
        ) as pool:
            last = (0, 0, 0)
            for _ in range(rounds):
                assert pool.search_wire(request)["partitions"]
                wire = pool.pool_wire()
                now = (
                    wire["hedges"], wire["hedge_wins"],
                    wire["hedge_discarded"],
                )
                assert all(a >= b for a, b in zip(now, last))
                assert wire["hedge_wins"] <= wire["hedges"]
                assert wire["hedge_discarded"] <= wire["hedges"]
                last = now
            # One hedge per delayed search, each won exactly once.
            assert last[0] == rounds
            assert last[1] == rounds

    def test_single_worker_pool_never_hedges(self, engine):
        plan = straggler_plan(0, count=1, seconds=0.3)
        with WorkerPool(
            engine, 1, hedge_after=0.01, fault_plan=plan
        ) as pool:
            started = time.monotonic()
            assert pool.search_wire(make_request())["partitions"]
            # No second worker to race: the delay is simply paid.
            assert time.monotonic() - started >= 0.3
            assert pool.pool_wire()["hedges"] == 0

    def test_auto_mode_seeds_from_the_latency_ewma(self, engine):
        request = make_request()
        slot = WorkerPool(engine, 2).route_for(request)
        # First search is clean (seeds the EWMA); the second straggles.
        plan = FaultPlan.parse(
            {"kind": "delay_reply", "slot": slot, "op": "search",
             "after": 2, "seconds": 1.0, "incarnation": None}
        )
        with WorkerPool(
            engine, 2, hedge_after="auto", fault_plan=plan
        ) as pool:
            assert pool.search_wire(request)["partitions"]
            assert pool.pool_wire()["hedges"] == 0  # no sample before it
            started = time.monotonic()
            assert pool.search_wire(request)["partitions"]
            assert time.monotonic() - started < 0.9
            wire = pool.pool_wire()
            assert wire["hedge_after"] == "auto"
            assert wire["hedges"] == 1
            assert wire["hedge_wins"] == 1
