"""Functional tests of the worker tier: dispatch, equivalence, telemetry."""

import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import ServiceError
from repro.pool import WorkerPool
from repro.road.network import SpatialPoint
from repro.service.protocol import result_to_wire
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store.fingerprint import network_fingerprint

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])

#: Stable result fields: everything except per-call metadata (elapsed,
#: cache hit/miss annotations, stage timings).
STABLE = ("query", "partitions", "htk_vertices", "htk_edges")


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(k: int = 3, t: float = 9.0, **knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), k, t, REGION, **knobs)


def stable(wire: dict) -> dict:
    return {key: wire[key] for key in STABLE}


@pytest.fixture(scope="module")
def engine():
    return MACEngine(make_network())


@pytest.fixture(scope="module")
def pool(engine):
    with WorkerPool(engine, 2, spill_depth=2) as p:
        yield p


class TestValidation:
    def test_rejects_zero_workers(self, engine):
        with pytest.raises(ServiceError, match="num_workers"):
            WorkerPool(engine, 0)

    def test_rejects_bad_spill_depth(self, engine):
        with pytest.raises(ServiceError, match="spill_depth"):
            WorkerPool(engine, 1, spill_depth=0)

    def test_double_start_raises(self, pool):
        with pytest.raises(ServiceError, match="already started"):
            pool.start()


class TestDispatch:
    def test_search_matches_in_process_engine(self, pool):
        request = make_request(algorithm="global")
        expected = result_to_wire(MACEngine(make_network()).search(request))
        assert stable(pool.search_wire(request)) == stable(expected)

    def test_route_is_stable_and_in_range(self, pool):
        request = make_request()
        slot = pool.route_for(request)
        assert 0 <= slot < pool.num_workers
        assert all(pool.route_for(request) == slot for _ in range(5))

    def test_affinity_follows_the_stage_cache_prefix(self, pool):
        # Same (Q, k, t) prefix => same worker, whatever the rest of the
        # request looks like: siblings reuse that worker's stage caches.
        base = make_request()
        sibling = make_request(j=2, problem="topj", label="sibling")
        assert base.core_key == sibling.core_key
        assert pool.route_for(base) == pool.route_for(sibling)
        other = make_request(k=4)
        assert base.core_key != other.core_key  # may still collide mod N

    def test_repeat_search_hits_the_workers_result_cache(self, pool):
        request = make_request(algorithm="local", label="repeat")
        pool.search_wire(request)
        again = pool.search_wire(request)
        assert again["engine"]["cache"] == {"result": "hit"}

    def test_explain(self, pool):
        wire = pool.explain_wire(make_request(algorithm="global"))
        assert wire["searcher"] == "GS-NC"

    def test_unknown_op_surfaces_typed(self, pool):
        with pytest.raises(ServiceError, match="unknown worker op"):
            pool.submit_op(0, "bogus").result(timeout=30)

    def test_spills_off_a_deep_affinity_queue(self, pool):
        request = make_request()
        target = pool.route_for(request)
        before = dict(pool._dispatched)
        # Occupy the affinity worker beyond spill_depth; the other
        # worker is idle, so the next choice must spill to it.
        holds = [
            pool.submit_op(target, "sleep", 0.4)
            for _ in range(pool.spill_depth)
        ]
        chosen = pool._choose(request)
        assert chosen.slot != target
        assert pool._dispatched["spill"] == before["spill"] + 1
        for hold in holds:
            hold.result(timeout=30)
        # Queue drained: affinity routing resumes.
        assert pool._choose(request).slot == target


class TestTelemetry:
    def test_workers_wire_reports_liveness(self, pool, engine):
        wire = pool.workers_wire()
        assert wire["alive"] == wire["total"] == 2
        assert wire["restarts"] == 0
        fingerprint = network_fingerprint(engine.network)
        for entry in wire["workers"]:
            assert entry["alive"] is True
            assert entry["fingerprint"] == fingerprint
        assert pool.fingerprint == fingerprint

    def test_merged_telemetry_counts_fleet_searches(self, pool):
        before = pool.telemetry_wire()["searches"]
        # Distinct result keys (time_budget is part of the key but does
        # not change the local search) => real engine work on whichever
        # workers the requests land on.
        for budget in (111.0, 222.0):
            pool.search_wire(make_request(time_budget=budget))
        after = pool.telemetry_wire()["searches"]
        assert after >= before + 2

    def test_pool_wire_shape(self, pool):
        wire = pool.pool_wire()
        assert wire["num_workers"] == 2
        assert set(wire["dispatched"]) == {"affinity", "spill", "failover"}
        assert len(wire["workers"]) == 2
        for entry in wire["workers"]:
            assert entry["alive"] is True
            assert entry["queue_depth"] == 0
            assert entry["uptime_s"] > 0
            assert entry["qps"] >= 0

    def test_served_counter_advances(self, pool):
        slot = 0
        before = pool.pool_wire()["workers"][slot]["served"]
        pool.submit_op(slot, "ping").result(timeout=30)
        assert pool.pool_wire()["workers"][slot]["served"] == before + 1


class TestDeadlines:
    def test_queue_wait_charged_across_the_process_boundary(self, pool):
        request = make_request(deadline=0.2, label="budgeted")
        slot = pool.route_for(request)
        # Wedge the affinity worker *and* the spill target so the
        # budget burns in the pipe, not in the engine.
        holds = [
            pool.submit_op(s, "sleep", 0.6)
            for s in range(pool.num_workers)
            for _ in range(pool.spill_depth)
        ]
        from repro.errors import DeadlineExceeded

        with pytest.raises(DeadlineExceeded, match="queued for a worker"):
            pool.search_wire(request)
        for hold in holds:
            hold.result(timeout=30)
        del slot


class TestStop:
    def test_stop_is_idempotent_and_fails_late_submissions(self, engine):
        from repro.errors import WorkerCrashed

        pool = WorkerPool(engine, 1).start()
        assert stable(pool.search_wire(make_request())) is not None
        pool.stop()
        pool.stop()  # second stop is a no-op
        with pytest.raises(WorkerCrashed):
            pool.search_wire(make_request())

    def test_stop_fails_in_flight_requests_typed(self, engine):
        from repro.errors import WorkerCrashed

        pool = WorkerPool(engine, 1).start()
        hold = pool.submit_op(0, "sleep", 30.0)
        time.sleep(0.05)
        pool.stop(timeout=0.3)
        # Either stop()'s own leftover pass or the supervisor's death
        # handler wins the race; both surface typed.
        with pytest.raises(WorkerCrashed):
            hold.result(timeout=30)
