"""Zero-downtime operations: live snapshot swap and dynamic resizing."""

import threading
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import ReloadError, ServiceError, WorkerCrashed
from repro.pool import WorkerPool
from repro.pool.pool import _MAX_FAST_CRASHES, _backoff_delay
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(seed: int = 0, **knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


def wait_until(predicate, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached before timeout")


class PoisonedEngine:
    """Delegates everything, but dies at worker boot: the forked child
    calls ``reset_telemetry`` before its ready handshake."""

    def __init__(self, engine: MACEngine) -> None:
        self._engine = engine

    def reset_telemetry(self) -> None:
        raise RuntimeError("poisoned engine: refuses to boot in a worker")

    def __getattr__(self, name):
        return getattr(self._engine, name)


@pytest.fixture
def network():
    return make_network()


@pytest.fixture
def engine(network):
    return MACEngine(network)


class TestLiveSwap:
    def test_swap_loses_no_request_and_flips_atomically(self, network, engine):
        with WorkerPool(engine, 2) as pool:
            assert pool.search_wire(make_request())["partitions"]
            assert pool.generation == 0
            before_tel = pool.telemetry_wire()["searches"]

            failures: list[BaseException] = []
            served = [0]
            stop = threading.Event()

            def hammer() -> None:
                while not stop.is_set():
                    try:
                        pool.search_wire(make_request())
                        served[0] += 1
                    except BaseException as exc:  # noqa: BLE001
                        failures.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                summary = pool.swap(
                    MACEngine(network), source="swap-test", index_digest="b2"
                )
            finally:
                stop.set()
                for t in threads:
                    t.join()

            # The invariants of the tentpole: nothing lost, identity
            # flipped atomically, telemetry monotone across generations.
            assert failures == []
            assert served[0] > 0
            assert summary["generation"] == 1
            assert summary["drained"] + summary["terminated"] == 2
            wire = pool.snapshot_wire()
            assert wire == {
                "fingerprint": summary["fingerprint"],
                "generation": 1,
                "source": "swap-test",
                "index_digest": "b2",
                "delta_seq": 0,
            }
            assert all(
                w["generation"] == 1 for w in pool.workers_wire()["workers"]
            )
            after_tel = pool.telemetry_wire()["searches"]
            assert after_tel >= before_tel + served[0]
            assert pool.search_wire(make_request())["partitions"]

    def test_failed_swap_rolls_back_and_keeps_serving(self, network, engine):
        with WorkerPool(engine, 2) as pool:
            before = pool.snapshot_wire()
            with pytest.raises(ReloadError, match="rolled back"):
                pool.swap(PoisonedEngine(MACEngine(network)))
            assert pool.snapshot_wire() == before
            assert pool.workers_wire()["alive"] == 2
            assert pool.search_wire(make_request())["partitions"]
            # A good swap afterwards still lands on generation 1: the
            # failed attempt consumed no generation number.
            assert pool.swap(MACEngine(network))["generation"] == 1

    def test_swap_requires_a_started_pool(self, engine):
        pool = WorkerPool(engine, 1)
        with pytest.raises(ReloadError, match="not started"):
            pool.swap(engine)

    def test_in_flight_drain_casualty_is_typed(self, network, engine):
        with WorkerPool(engine, 1) as pool:
            stuck = pool.submit_op(0, "sleep", 60.0)
            summary = pool.swap(MACEngine(network), drain_timeout=0.3)
            # The sleeper could not drain in time: it was terminated and
            # its in-flight request failed typed — never silently lost.
            assert summary["terminated"] == 1
            with pytest.raises(WorkerCrashed, match="retired|draining"):
                stuck.result(timeout=30)
            assert pool.search_wire(make_request())["partitions"]


class TestResize:
    def test_grow_then_shrink(self, engine):
        with WorkerPool(engine, 2) as pool:
            grown = pool.resize(4)
            assert grown == {
                "workers": 4, "previous": 2, "grown": 2, "retired": 0,
                "drained": 0, "terminated": 0,
                "elapsed_s": grown["elapsed_s"],
            }
            assert pool.num_workers == 4
            assert pool.workers_wire()["alive"] == 4
            assert {
                w["generation"] for w in pool.workers_wire()["workers"]
            } == {0}
            for _ in range(4):
                assert pool.search_wire(make_request())["partitions"]

            shrunk = pool.resize(2)
            assert shrunk["retired"] == 2
            assert shrunk["drained"] + shrunk["terminated"] == 2
            assert pool.num_workers == 2
            wait_until(lambda: pool.workers_wire()["alive"] == 2)
            assert pool.search_wire(make_request())["partitions"]

    def test_shrink_finishes_in_flight_requests(self, engine):
        with WorkerPool(engine, 2) as pool:
            stuck = pool.submit_op(1, "sleep", 0.4)
            summary = pool.resize(1)
            assert summary["drained"] == 1
            assert stuck.result(timeout=30) == {"slept": 0.4}

    def test_resize_validates_num_workers(self, engine):
        with WorkerPool(engine, 1) as pool:
            with pytest.raises(ServiceError, match="num_workers"):
                pool.resize(0)

    def test_noop_resize(self, engine):
        with WorkerPool(engine, 2) as pool:
            summary = pool.resize(2)
            assert summary["grown"] == 0 and summary["retired"] == 0
            assert pool.workers_wire()["alive"] == 2

    def test_telemetry_monotone_across_shrink(self, engine):
        with WorkerPool(engine, 2) as pool:
            pool.search_wire(make_request())
            before = pool.telemetry_wire()["searches"]
            pool.resize(1)
            assert pool.telemetry_wire()["searches"] >= before


class TestCrashLoopBackoff:
    def test_backoff_schedule_is_exponential_and_capped(self):
        delays = [_backoff_delay(n) for n in range(1, _MAX_FAST_CRASHES + 1)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[-1] == 2.0  # capped
        assert _backoff_delay(100) == 2.0

    def test_crash_loop_backs_off_and_reports_state(self, engine):
        # Kill every incarnation on its first ping: a crash loop.
        from repro.pool import FaultPlan

        plan = FaultPlan.parse(
            {"kind": "kill", "slot": 0, "op": "ping", "after": 1,
             "incarnation": None}
        )
        with WorkerPool(engine, 1, fault_plan=plan) as pool:
            for _ in range(2):
                wait_until(lambda: pool.pool_wire()["workers"][0]["alive"])
                with pytest.raises(WorkerCrashed):
                    pool.submit_op(0, "ping").result(timeout=30)
            wait_until(
                lambda: pool.pool_wire()["workers"][0]["crash_loops"] >= 2
            )
            slot = pool.pool_wire()["workers"][0]
            assert slot["restarts"] >= 2
            # The supervisor is backing off, not fork-bombing: the
            # pending respawn carries a positive delay.
            assert (
                slot["restart_backoff_remaining"] > 0.0 or slot["alive"]
            )
