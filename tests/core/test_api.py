"""Public API tests: dispatch, validation, result helpers, G-tree path."""

import numpy as np
import pytest

from repro.core.api import gs_nc, gs_topj, ls_nc, ls_topj, mac_search
from repro.core.query import Community, MACQuery
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion

from tests.conftest import paper_attributes


class TestMACQuery:
    def test_make_normalizes(self, paper_region):
        q = MACQuery.make([6, 2, 2, 3], 3, 9.0, paper_region)
        assert q.query == (2, 3, 6)

    def test_validation(self, paper_region):
        with pytest.raises(QueryError):
            MACQuery.make([], 3, 9.0, paper_region)
        with pytest.raises(QueryError):
            MACQuery.make([1], 0, 9.0, paper_region)
        with pytest.raises(QueryError):
            MACQuery.make([1], 3, -1.0, paper_region)
        with pytest.raises(QueryError):
            MACQuery.make([1], 3, 9.0, paper_region, j=0)


class TestCommunity:
    def test_set_semantics(self):
        c1 = Community([1, 2, 3])
        c2 = Community([3, 2, 1])
        assert c1 == c2
        assert hash(c1) == hash(c2)
        assert len(c1) == 3
        assert 2 in c1

    def test_score_helpers(self):
        attrs = paper_attributes()
        c = Community([2, 7])
        w = np.array([0.2, 0.3])
        assert c.min_vertex_at(w, attrs) == 7
        assert c.score_at(w, attrs) == pytest.approx(4.47)


class TestMacSearchDispatch:
    def test_unknown_algorithm(self, paper_network, paper_region):
        with pytest.raises(QueryError):
            mac_search(
                paper_network, [2], 2, 9.0, paper_region, algorithm="magic"
            )

    def test_unknown_problem(self, paper_network, paper_region):
        with pytest.raises(QueryError):
            mac_search(
                paper_network, [2], 2, 9.0, paper_region, problem="best"
            )

    def test_invalid_j_rejected_even_for_nc(
        self, paper_network, paper_region
    ):
        with pytest.raises(QueryError, match="j must be >= 1"):
            mac_search(
                paper_network, [2, 3, 6], 3, 9.0, paper_region, j=0
            )

    def test_dimension_mismatch(self, paper_network):
        region = PreferenceRegion([0.2], [0.4])  # d = 2, network d = 3
        with pytest.raises(QueryError):
            mac_search(paper_network, [2], 2, 9.0, region)

    def test_missing_query_user(self, paper_network, paper_region):
        with pytest.raises(QueryError):
            mac_search(paper_network, [999], 2, 9.0, paper_region)

    @pytest.mark.parametrize("algorithm", ["global", "local"])
    @pytest.mark.parametrize("problem", ["nc", "topj"])
    def test_all_modes_run(self, paper_network, paper_region, algorithm, problem):
        res = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region,
            j=2, algorithm=algorithm, problem=problem,
        )
        assert not res.is_empty
        assert res.elapsed >= 0
        assert res.htk_vertices == 7

    def test_gtree_path_matches_dijkstra(self, paper_network, paper_region):
        plain = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region, use_gtree=False
        )
        fast = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region, use_gtree=True
        )
        assert plain.nc_communities() == fast.nc_communities()
        # has_gtree probes without building: the search itself cached it
        assert paper_network.has_gtree


class TestWrapperKwargs:
    """The gs_*/ls_* wrappers reject conflicting or unknown kwargs."""

    def test_nc_wrappers_reject_j(self, paper_network, paper_region):
        for wrapper in (gs_nc, ls_nc):
            with pytest.raises(QueryError, match="fixes j"):
                wrapper(paper_network, [2, 3, 6], 3, 9.0, paper_region, j=5)

    def test_wrappers_reject_algorithm_and_problem(
        self, paper_network, paper_region
    ):
        with pytest.raises(QueryError, match="algorithm"):
            gs_nc(
                paper_network, [2, 3, 6], 3, 9.0, paper_region,
                algorithm="local",
            )
        with pytest.raises(QueryError, match="problem"):
            ls_topj(
                paper_network, [2, 3, 6], 3, 9.0, paper_region, 2,
                problem="nc",
            )

    def test_wrappers_reject_unknown_kwargs(
        self, paper_network, paper_region
    ):
        with pytest.raises(QueryError, match="unknown keyword"):
            ls_nc(
                paper_network, [2, 3, 6], 3, 9.0, paper_region,
                use_gtrees=True,  # typo'd knob must not pass silently
            )

    def test_wrappers_accept_real_knobs(self, paper_network, paper_region):
        res = gs_topj(
            paper_network, [2, 3, 6], 3, 9.0, paper_region, 2,
            use_gtree=True, refinement="envelope", time_budget=30.0,
        )
        assert not res.is_empty
        res = ls_nc(
            paper_network, [2, 3, 6], 3, 9.0, paper_region,
            strategy="eq4", max_candidates=8, certification="chain",
        )
        assert not res.is_empty


class TestResultHelpers:
    def test_entry_at_and_communities(self, paper_network, paper_region):
        res = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region,
            j=2, problem="topj",
        )
        w = np.array([0.15, 0.3])
        entry = res.entry_at(w)
        assert entry is not None
        assert entry.cell.contains(w)
        assert res.entry_at(np.array([0.9, 0.9])) is None
        assert res.nc_communities() <= res.communities()

    def test_empty_result(self, paper_network, paper_region):
        res = mac_search(paper_network, [2], 6, 9.0, paper_region)
        assert res.is_empty
        assert res.communities() == set()
        assert res.entry_at(np.array([0.3, 0.3])) is None
