"""Road-social pairing and maximal (k,t)-core pipeline tests."""

import numpy as np
import pytest

from repro.errors import GraphError, QueryError
from repro.road.network import SpatialPoint
from repro.social.network import SocialNetwork

from tests.conftest import (
    paper_attributes,
    paper_road,
    paper_social_graph,
)
from repro.social.roadsocial import RoadSocialNetwork


class TestSocialNetwork:
    def test_dimensionality(self, paper_network):
        assert paper_network.social.dimensionality == 3

    def test_missing_attributes_rejected(self):
        graph = paper_social_graph()
        attrs = paper_attributes()
        del attrs[5]
        with pytest.raises(GraphError):
            SocialNetwork(graph, attrs)

    def test_inconsistent_dimensions_rejected(self):
        graph = paper_social_graph()
        attrs = paper_attributes()
        attrs[5] = np.array([1.0, 2.0])
        with pytest.raises(GraphError):
            SocialNetwork(graph, attrs)

    def test_location_handling(self, paper_network):
        social = paper_network.social
        assert social.location(2) == SpatialPoint.at_vertex(2)
        social.set_location(2, SpatialPoint.at_vertex(5))
        assert social.location(2) == SpatialPoint.at_vertex(5)
        with pytest.raises(GraphError):
            social.set_location(999, SpatialPoint.at_vertex(1))

    def test_statistics(self, paper_network):
        stats = paper_network.social.statistics()
        assert stats["vertices"] == 15
        assert stats["k_max"] == 3


class TestQueryDistanceFilter:
    def test_paper_filter_t9(self, paper_network):
        kept = paper_network.query_distance_filter([2, 3, 6], 9.0)
        assert set(kept) == {1, 2, 3, 4, 5, 6, 7}
        assert kept[7] == pytest.approx(7.0)

    def test_empty_query_rejected(self, paper_network):
        with pytest.raises(QueryError):
            paper_network.query_distance_filter([], 9.0)

    def test_unknown_query_rejected(self, paper_network):
        with pytest.raises(QueryError):
            paper_network.query_distance_filter([999], 9.0)

    def test_gtree_backend_matches(self, paper_network):
        plain = paper_network.query_distance_filter([2, 3, 6], 9.0)
        fast = paper_network.query_distance_filter(
            [2, 3, 6], 9.0, use_gtree=True
        )
        assert set(plain) == set(fast)
        for v in plain:
            assert plain[v] == pytest.approx(fast[v])

    def test_user_without_location_skipped(self):
        road = paper_road()
        graph = paper_social_graph()
        attrs = paper_attributes()
        locations = {
            v: SpatialPoint.at_vertex(v) for v in range(1, 15)
        }  # user 15 unlocated
        net = RoadSocialNetwork(
            road, SocialNetwork(graph, attrs, locations)
        )
        kept = net.query_distance_filter([9], 100.0)
        assert 15 not in kept

    def test_midedge_user_location(self):
        road = paper_road()
        graph = paper_social_graph()
        attrs = paper_attributes()
        locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
        locations[7] = SpatialPoint.on_edge(6, 7, 2.0)  # 2 from r6
        net = RoadSocialNetwork(road, SocialNetwork(graph, attrs, locations))
        kept = net.query_distance_filter([6], 3.0)
        assert 7 in kept
        assert kept[7] == pytest.approx(2.0)


class TestMaximalKTCore:
    def test_paper_h93(self, paper_network):
        kt = paper_network.maximal_kt_core([2, 3, 6], 3, 9.0)
        assert kt is not None
        assert kt.vertices == {1, 2, 3, 4, 5, 6, 7}
        assert kt.graph.min_degree() >= 3
        assert max(kt.query_distance.values()) <= 9.0

    def test_k_too_large(self, paper_network):
        assert paper_network.maximal_kt_core([2], 6, 9.0) is None

    def test_t_too_small(self, paper_network):
        # t=5 excludes v7 (D_Q(v7)=7): no 3-core with Q remains
        assert paper_network.maximal_kt_core([2, 3, 6], 3, 5.0) is None

    def test_invalid_parameters(self, paper_network):
        with pytest.raises(QueryError):
            paper_network.maximal_kt_core([2], -1, 9.0)
        with pytest.raises(QueryError):
            paper_network.maximal_kt_core([2], 2, -5.0)

    def test_k2_keeps_periphery_when_t_large(self, paper_network):
        kt = paper_network.maximal_kt_core([2], 2, 1000.0)
        assert kt is not None
        assert len(kt.vertices) >= 10  # periphery cycles join the 2-core
