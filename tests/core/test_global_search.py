"""Global search (Algorithm 1) tests: the paper's running example
end-to-end, partition coverage, and oracle cross-validation."""

import numpy as np
import pytest

from repro.core.api import gs_nc, gs_topj
from repro.core.global_search import GlobalSearch
from repro.core.peeling import nc_mac_at, top_j_at
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion

from tests.conftest import (
    paper_attributes,
    paper_social_graph,
    random_graph,
)

H1 = frozenset({2, 3, 6, 7})
H2 = frozenset({2, 3, 4, 5, 6, 7})
H3 = frozenset({2, 3, 4, 5, 6})
HTK = frozenset(range(1, 8))


@pytest.fixture
def paper_setup(paper_region):
    htk = paper_social_graph().subgraph(range(1, 8))
    attrs = {v: x for v, x in paper_attributes().items() if v <= 7}
    gd = DominanceGraph(attrs, paper_region)
    return htk, gd


class TestPaperExample:
    def test_nc_macs_are_h1_and_h3(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        entries = search.search_nc()
        found = {e.best.members for e in entries}
        assert found == {H1, H3}

    def test_h3_wins_at_02_03_and_h1_at_019_03(
        self, paper_setup, paper_region
    ):
        """Example 3's headline: a 0.01 weight shift flips the answer."""
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        entries = search.search_nc()

        def best_at(w):
            w = np.asarray(w)
            for e in entries:
                if e.cell.contains(w):
                    return e.best.members
            return None

        assert best_at([0.2, 0.3]) == H3
        assert best_at([0.19, 0.3]) == H1

    def test_top2_in_r1(self, paper_setup, paper_region):
        """Example 2: the top-2 MACs for w in R1 are H1 then H2."""
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        entries = search.search_topj(2)
        w = np.array([0.15, 0.3])
        entry = next(e for e in entries if e.cell.contains(w))
        assert [c.members for c in entry.communities] == [H1, H2]

    def test_partitions_cover_region(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        entries = search.search_nc()
        rng = np.random.default_rng(0)
        for w in paper_region.sample(rng, 60):
            owners = [e for e in entries if e.cell.contains(w, tol=1e-9)]
            assert owners, f"no partition contains {w}"

    def test_every_result_is_a_kt_core(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        for e in search.search_nc():
            sub = htk.subgraph(e.best.members)
            assert sub.min_degree() >= 3
            assert sub.is_connected()
            assert {2, 3, 6} <= e.best.members

    def test_stats_populated(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        entries = search.search_nc()
        assert search.stats.partitions == len(entries)
        assert search.stats.peel_rounds > 0

    def test_max_partitions_budget(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(
            htk, gd, [2, 3, 6], 3, paper_region, max_partitions=1
        )
        with pytest.raises(QueryError):
            search.run()

    def test_invalid_j(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        with pytest.raises(QueryError):
            search.search_topj(0)


class TestOracleCrossValidation:
    """The decisive correctness test: for random graphs and random
    weights, the partition output must agree with exact point peeling."""

    @pytest.mark.parametrize("seed", range(8))
    def test_nc_agrees_with_oracle(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(14, 0.45, seed=seed * 7 + 1)
        k = 3
        from repro.graph.core import k_core_containing

        pool = sorted(graph.vertices())
        q = [pool[rng.integers(len(pool))]]
        htk = k_core_containing(graph, q, k)
        if htk is None:
            pytest.skip("no k-core for this seed")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        search = GlobalSearch(htk, gd, q, k, region)
        entries = search.search_nc()

        def scores_at(w):
            return {v: gd.score_at(v, w) for v in htk.vertices()}

        for w in region.sample(rng, 25):
            owners = [e for e in entries if e.cell.contains(w, tol=1e-9)]
            assert owners
            expected = nc_mac_at(htk, q, k, scores_at(w))
            matching = [
                e for e in owners if e.best.members == expected
            ]
            # w may sit on a boundary between partitions; at least one
            # owner must agree with the oracle.
            assert matching, (
                f"w={w}: oracle={sorted(expected)}, "
                f"got={[sorted(e.best.members) for e in owners]}"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_topj_agrees_with_oracle(self, seed):
        rng = np.random.default_rng(seed + 100)
        graph = random_graph(12, 0.5, seed=seed * 13 + 5)
        from repro.graph.core import k_core_containing

        pool = sorted(graph.vertices())
        q = [pool[rng.integers(len(pool))]]
        htk = k_core_containing(graph, q, 3)
        if htk is None:
            pytest.skip("no k-core for this seed")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        j = 3
        search = GlobalSearch(htk, gd, q, 3, region)
        entries = search.search_topj(j)
        for w in region.sample(rng, 15):
            owners = [e for e in entries if e.cell.contains(w, tol=1e-9)]
            assert owners
            scores = {v: gd.score_at(v, w) for v in htk.vertices()}
            expected = top_j_at(htk, q, 3, scores, j)
            assert any(
                [c.members for c in e.communities] == expected
                for e in owners
            )


class TestOneDimensionalAttributes:
    """d = 1 degenerates to influential-community peeling (single cell)."""

    def test_single_partition(self):
        graph = random_graph(12, 0.5, seed=3)
        from repro.graph.core import k_core_containing

        q = [0]
        htk = k_core_containing(graph, q, 3)
        assert htk is not None
        region = PreferenceRegion()
        rng = np.random.default_rng(1)
        attrs = {v: rng.uniform(0, 10, 1) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        search = GlobalSearch(htk, gd, q, 3, region)
        entries = search.search_nc()
        assert len(entries) == 1
        scores = {v: float(attrs[v][0]) for v in htk.vertices()}
        assert entries[0].best.members == nc_mac_at(htk, q, 3, scores)


class TestEndToEndAPI:
    def test_gs_nc_paper_network(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        assert res.htk_vertices == 7
        assert {e.best.members for e in res.partitions} == {H1, H3}

    def test_gs_topj_paper_network(self, paper_network, paper_region):
        res = gs_topj(paper_network, [2, 3, 6], 3, 9.0, paper_region, j=2)
        entry = res.entry_at(np.array([0.15, 0.3]))
        assert entry is not None
        assert [c.members for c in entry.communities] == [H1, H2]

    def test_unsatisfiable_query_is_empty(self, paper_network, paper_region):
        res = gs_nc(paper_network, [2, 3, 6], 5, 9.0, paper_region)
        assert res.is_empty

    def test_tight_t_shrinks_htk(self, paper_network, paper_region):
        """t = 7 keeps only vertices within 7 of every query location."""
        res = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        res_tight = gs_nc(paper_network, [2, 6], 2, 5.0, paper_region)
        assert res_tight.htk_vertices <= res.htk_vertices
