"""Local search (Algorithms 3-5) tests: Expand invariants, the paper's
Verify walkthrough, soundness, and the LS/GS ratio experiment in miniature."""

import numpy as np
import pytest

from repro.core.api import gs_nc, ls_nc, ls_topj
from repro.core.local_search import LocalSearch, expand
from repro.core.peeling import nc_mac_at, top_j_at
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.graph.core import k_core_containing

from tests.conftest import (
    paper_attributes,
    paper_social_graph,
    random_graph,
)

H1 = frozenset({2, 3, 6, 7})
H3 = frozenset({2, 3, 4, 5, 6})


@pytest.fixture
def paper_setup(paper_region):
    htk = paper_social_graph().subgraph(range(1, 8))
    attrs = {v: x for v, x in paper_attributes().items() if v <= 7}
    gd = DominanceGraph(attrs, paper_region)
    return htk, gd


class TestExpand:
    def test_candidates_are_k_cores_containing_q(self, paper_setup):
        htk, gd = paper_setup
        for strategy in ("eq3", "eq4"):
            for members in expand(htk, gd, [2, 3, 6], 3, strategy=strategy):
                sub = htk.subgraph(members)
                assert {2, 3, 6} <= members
                assert sub.min_degree() >= 3
                assert sub.is_connected()

    def test_candidates_grow(self, paper_setup):
        htk, gd = paper_setup
        sizes = [len(c) for c in expand(htk, gd, [2, 3, 6], 3)]
        assert sizes == sorted(sizes)

    def test_unknown_strategy(self, paper_setup):
        htk, gd = paper_setup
        with pytest.raises(QueryError):
            expand(htk, gd, [2], 3, strategy="nope")

    def test_max_candidates_respected(self, paper_setup):
        htk, gd = paper_setup
        out = expand(htk, gd, [2], 2, max_candidates=2)
        assert len(out) <= 2


class TestVerifyPaperWalkthrough:
    """Section VI-B: H1 is valid on R1; H3 on R2 ∪ R3; H4 is invalid."""

    def test_h1_and_h3_certified(self, paper_setup, paper_region):
        htk, gd = paper_setup
        ls = LocalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        found = {e.best.members for e in ls.search_nc()}
        assert found == {H1, H3}

    def test_h4_rejected(self, paper_setup, paper_region):
        """H4 = {v1,v2,v3,v6,v7} is a 3-core but never a non-contained
        MAC inside R (its partition falls outside R)."""
        htk, gd = paper_setup
        h4 = frozenset({1, 2, 3, 6, 7})
        assert htk.subgraph(h4).min_degree() >= 3  # sanity: promising
        ls = LocalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        assert ls._verify_candidate(h4) == []

    def test_bound_pair_v4_v5(self, paper_setup):
        """v4 and v5 are bound to each other w.r.t. H1 (Corollary 3(3)):
        each survives only with the other present."""
        htk, gd = paper_setup
        ls = LocalSearch(htk, gd, [2, 3, 6], 3, gd.region)
        assert not ls._survives_alone(4, H1)
        assert not ls._survives_alone(5, H1)

    def test_partition_weights_agree_with_oracle(
        self, paper_setup, paper_region
    ):
        htk, gd = paper_setup
        ls = LocalSearch(htk, gd, [2, 3, 6], 3, paper_region)
        for entry in ls.search_nc():
            w = entry.sample_weight()
            scores = {v: gd.score_at(v, w) for v in htk.vertices()}
            assert entry.best.members == nc_mac_at(htk, [2, 3, 6], 3, scores)


class TestSoundness:
    """LS never reports a community that GS would not (at its sample
    weight) — certification keeps it sound though incomplete."""

    @pytest.mark.parametrize("seed", range(6))
    def test_ls_subset_of_gs(self, seed):
        rng = np.random.default_rng(seed + 31)
        graph = random_graph(14, 0.45, seed=seed * 11 + 2)
        q = [sorted(graph.vertices())[0]]
        htk = k_core_containing(graph, q, 3)
        if htk is None:
            pytest.skip("no k-core")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        from repro.core.global_search import GlobalSearch

        gs_found = {
            e.best.members
            for e in GlobalSearch(htk, gd, q, 3, region).search_nc()
        }
        ls = LocalSearch(htk, gd, q, 3, region)
        ls_found = {e.best.members for e in ls.search_nc()}
        assert ls_found <= gs_found
        assert ls_found, "LS must find at least one NC-MAC"

    @pytest.mark.parametrize("seed", range(3))
    def test_ls_topj_matches_oracle_at_sample(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(13, 0.5, seed=seed * 3 + 8)
        q = [sorted(graph.vertices())[0]]
        htk = k_core_containing(graph, q, 3)
        if htk is None:
            pytest.skip("no k-core")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        ls = LocalSearch(htk, gd, q, 3, region)
        for entry in ls.search_topj(3):
            w = entry.sample_weight()
            scores = {v: gd.score_at(v, w) for v in htk.vertices()}
            expected = top_j_at(htk, q, 3, scores, 3)
            assert [c.members for c in entry.communities] == expected


class TestEndToEndAPI:
    def test_ls_nc_paper_network(self, paper_network, paper_region):
        res = ls_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        assert {e.best.members for e in res.partitions} == {H1, H3}
        assert res.stats.candidates > 0

    def test_ls_matches_gs_on_paper_network(
        self, paper_network, paper_region
    ):
        """The miniature Fig. 12 experiment: ratio 100% here."""
        gs = gs_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        ls = ls_nc(paper_network, [2, 3, 6], 3, 9.0, paper_region)
        assert ls.nc_communities() == gs.nc_communities()

    def test_ls_topj_paper_network(self, paper_network, paper_region):
        res = ls_topj(paper_network, [2, 3, 6], 3, 9.0, paper_region, j=2)
        w = np.array([0.15, 0.3])
        entry = res.entry_at(w)
        assert entry is not None
        assert entry.communities[0].members == H1
        assert entry.communities[1].members == frozenset(range(2, 8))

    def test_strategies_equally_sound(self, paper_network, paper_region):
        for strategy in ("eq3", "eq4"):
            res = ls_nc(
                paper_network, [2, 3, 6], 3, 9.0, paper_region,
                strategy=strategy,
            )
            assert {e.best.members for e in res.partitions} == {H1, H3}
