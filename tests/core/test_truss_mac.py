"""k-truss MAC extension tests (the Section II-B "Remarks")."""

import numpy as np
import pytest

from repro.core.peeling import restore_removed
from repro.core.truss_mac import (
    TrussGlobalSearch,
    maximal_kt_truss,
    truss_cascade_recoverable,
    truss_deletion_chain,
    truss_mac_at,
    truss_mac_search,
)
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.truss import k_truss_containing

from tests.conftest import (
    paper_attributes,
    paper_social_graph,
    random_graph,
)


def _paper_truss(k=4):
    """The maximal connected k-truss around Q={2,6} in Fig. 1(a)."""
    return k_truss_containing(paper_social_graph(), [2, 6], k)


def _scores(w):
    attrs = paper_attributes()
    w = np.asarray(w)
    return {
        v: float(x[-1] + np.dot(w, x[:-1] - x[-1]))
        for v, x in attrs.items()
    }


class TestTrussCascade:
    def test_cascade_keeps_truss_property(self):
        g = _paper_truss().copy()
        victim = next(v for v in g.vertices() if v not in (2, 6))
        truss_cascade_recoverable(g, victim, 4)
        if g.num_vertices:
            from repro.graph.truss import k_truss

            survivors = k_truss(g, 4)
            assert set(survivors.vertices()) == set(g.vertices())

    def test_cascade_is_recoverable(self):
        g = _paper_truss().copy()
        before_edges = sorted(map(sorted, g.edges()))
        victim = next(v for v in g.vertices() if v not in (2, 6))
        removed = truss_cascade_recoverable(g, victim, 4)
        restore_removed(g, removed)
        assert sorted(map(sorted, g.edges())) == before_edges

    def test_missing_trigger(self):
        g = AdjacencyGraph([(1, 2)])
        assert truss_cascade_recoverable(g, 99, 3) == []


class TestTrussChain:
    def test_chain_members_are_connected_trusses(self):
        truss = _paper_truss()
        chain, batches = truss_deletion_chain(
            truss, [2, 6], 4, _scores([0.2, 0.3])
        )
        g = paper_social_graph()
        for community in chain:
            sub = g.subgraph(community)
            assert sub.is_connected()
            core = k_truss_containing(sub, [2, 6], 4)
            assert core is not None
            assert set(core.vertices()) == community
        for earlier, later, batch in zip(chain, chain[1:], batches):
            assert batch == frozenset(earlier - later)

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            truss_deletion_chain(_paper_truss(), [], 4, _scores([0.2, 0.3]))

    def test_truss_mac_is_final(self):
        truss = _paper_truss()
        scores = _scores([0.2, 0.3])
        chain, _ = truss_deletion_chain(truss, [2, 6], 4, scores)
        assert truss_mac_at(truss, [2, 6], 4, scores) == frozenset(chain[-1])


class TestTrussGlobalSearch:
    def test_agrees_with_truss_oracle(self, paper_region):
        truss = _paper_truss()
        attrs = {
            v: x for v, x in paper_attributes().items() if v in truss
        }
        gd = DominanceGraph(attrs, paper_region)
        search = TrussGlobalSearch(truss, gd, [2, 6], 4, paper_region)
        entries = search.search_nc()
        rng = np.random.default_rng(0)
        for w in paper_region.sample(rng, 15):
            owners = [
                e for e in entries if e.cell.contains(np.asarray(w), 1e-9)
            ]
            assert owners
            scores = {v: gd.score_at(v, w) for v in truss.vertices()}
            expected = truss_mac_at(truss, [2, 6], 4, scores)
            assert any(e.best.members == expected for e in owners)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(12, 0.55, seed=seed + 70)
        q = [sorted(g.vertices())[0]]
        truss = k_truss_containing(g, q, 4)
        if truss is None:
            pytest.skip("no 4-truss")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in truss.vertices()}
        gd = DominanceGraph(attrs, region)
        entries = TrussGlobalSearch(truss, gd, q, 4, region).search_nc()
        for e in entries:
            w = e.sample_weight()
            scores = {v: gd.score_at(v, w) for v in truss.vertices()}
            assert e.best.members == truss_mac_at(truss, q, 4, scores)


class TestEndToEnd:
    def test_maximal_kt_truss(self, paper_network):
        truss = maximal_kt_truss(paper_network, [2, 6], 4, 9.0)
        assert truss is not None
        assert {2, 3, 6, 7} <= set(truss.vertices())
        assert maximal_kt_truss(paper_network, [2, 6], 6, 9.0) is None

    def test_truss_mac_search(self, paper_network, paper_region):
        entries = truss_mac_search(
            paper_network, [2, 6], 4, 9.0, paper_region
        )
        assert entries
        for e in entries:
            assert {2, 6} <= e.best.members

    def test_unknown_problem(self, paper_network, paper_region):
        with pytest.raises(QueryError):
            truss_mac_search(
                paper_network, [2, 6], 4, 9.0, paper_region, problem="x"
            )

    def test_infeasible_is_empty(self, paper_network, paper_region):
        assert (
            truss_mac_search(paper_network, [14], 4, 9.0, paper_region)
            == []
        )
