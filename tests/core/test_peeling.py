"""Point-oracle tests: the paper's Examples 1-3 at fixed weights."""

import numpy as np
import pytest

from repro.core.peeling import (
    cascade_delete,
    deletion_chain,
    nc_mac_at,
    restrict_to_query_component,
    top_j_at,
)
from repro.errors import QueryError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import k_core_containing

from tests.conftest import paper_attributes, paper_social_graph


def _htk_93():
    """H^9_3 = subgraph induced by v1..v7 (paper, Section III)."""
    return paper_social_graph().subgraph(range(1, 8))


def _scores(w):
    attrs = paper_attributes()
    w = np.asarray(w)
    return {
        v: float(x[-1] + np.dot(w, x[:-1] - x[-1]))
        for v, x in attrs.items()
        if v <= 7
    }


class TestCascadeDelete:
    def test_single_deletion(self):
        g = _htk_93()
        deleted = cascade_delete(g, 1, 3)
        assert 1 in deleted
        assert all(v not in g for v in deleted)
        for v in g.vertices():
            assert g.degree(v) >= 3

    def test_cascade_propagates(self):
        # path graph with k=1: deleting an endpoint only removes it
        g = AdjacencyGraph([(1, 2), (2, 3)])
        deleted = cascade_delete(g, 2, 1)
        # removing 2 drops 1 and 3 to degree 0 < 1 -> full cascade
        assert deleted == {1, 2, 3}

    def test_missing_trigger_is_noop(self):
        g = AdjacencyGraph([(1, 2)])
        assert cascade_delete(g, 9, 1) == set()


class TestRestrictToQueryComponent:
    def test_drops_other_components(self):
        g = AdjacencyGraph([(1, 2), (3, 4)])
        dropped = restrict_to_query_component(g, [1])
        assert dropped == {3, 4}
        assert set(g.vertices()) == {1, 2}

    def test_broken_query_returns_none(self):
        g = AdjacencyGraph([(1, 2), (3, 4)])
        assert restrict_to_query_component(g, [1, 3]) is None

    def test_deleted_query_returns_none(self):
        g = AdjacencyGraph([(1, 2)])
        assert restrict_to_query_component(g, [7]) is None


class TestPaperExample3:
    """Example 3: H3 = {v2..v6} is top-1 at w = (0.2, 0.3); H1 =
    {v2,v3,v6,v7} is top-1 at w = (0.19, 0.3)."""

    def test_h3_at_020_030(self):
        result = nc_mac_at(_htk_93(), [2, 3, 6], 3, _scores([0.2, 0.3]))
        assert result == frozenset({2, 3, 4, 5, 6})

    def test_h1_at_019_030(self):
        result = nc_mac_at(_htk_93(), [2, 3, 6], 3, _scores([0.19, 0.3]))
        assert result == frozenset({2, 3, 6, 7})


class TestPaperExample2:
    """Example 2: the top-2 MACs in R1 are H1 and H2 = {v2..v7}."""

    def test_top2_at_r1_weight(self):
        top = top_j_at(_htk_93(), [2, 3, 6], 3, _scores([0.15, 0.3]), 2)
        assert top[0] == frozenset({2, 3, 6, 7})
        assert top[1] == frozenset({2, 3, 4, 5, 6, 7})

    def test_top1_is_nc(self):
        scores = _scores([0.15, 0.3])
        top = top_j_at(_htk_93(), [2, 3, 6], 3, scores, 1)
        assert top[0] == nc_mac_at(_htk_93(), [2, 3, 6], 3, scores)


class TestPaperExample1:
    """Example 1: Q={v2}, k=2: {v2,v3,v5,v6,v7} is an MAC (a member of
    the peeling chain, Lemma 5) for w in the upper-left part of R1, and
    its score there is S(v7)."""

    def test_upper_left_r1(self):
        # (0.11, 0.38): top-left of R, inside the upper-left part of R1.
        scores = _scores([0.11, 0.38])
        chain, _batches = deletion_chain(_htk_93(), [2], 2, scores)
        mac = {2, 3, 5, 6, 7}
        assert mac in chain
        assert min(scores[v] for v in mac) == pytest.approx(scores[7])


class TestChainInvariants:
    def test_chain_is_nested_and_each_is_mac(self):
        g = _htk_93()
        chain, batches = deletion_chain(g, [2, 3, 6], 3, _scores([0.2, 0.3]))
        assert chain[0] == set(range(1, 8))
        for earlier, later, batch in zip(chain, chain[1:], batches):
            assert later < earlier
            assert batch == frozenset(earlier - later)
        for community in chain:
            sub = g.subgraph(community)
            assert sub.min_degree() >= 3
            assert sub.is_connected()
            assert {2, 3, 6} <= community

    def test_max_batches_truncates_front(self):
        g = _htk_93()
        full, _ = deletion_chain(g, [2, 3, 6], 3, _scores([0.2, 0.3]))
        short, _ = deletion_chain(
            g, [2, 3, 6], 3, _scores([0.2, 0.3]), max_batches=1
        )
        assert short == full[-2:]

    def test_input_not_mutated(self):
        g = _htk_93()
        m0 = g.num_edges
        deletion_chain(g, [2, 3, 6], 3, _scores([0.2, 0.3]))
        assert g.num_edges == m0

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            deletion_chain(_htk_93(), [], 3, _scores([0.2, 0.3]))

    def test_final_community_is_non_contained(self):
        """Deleting the final community's min non-Q vertex must break it
        (Lemma 6 / Definition 6)."""
        g = _htk_93()
        scores = _scores([0.2, 0.3])
        final = nc_mac_at(g, [2, 3, 6], 3, scores)
        non_query = final - {2, 3, 6}
        assert non_query, "sanity: final community exceeds Q"
        u = min(non_query, key=lambda v: scores[v])
        sub = g.subgraph(final)
        cascade_delete(sub, u, 3)
        assert k_core_containing(sub, [2, 3, 6], 3) is None

    def test_top_j_longer_than_chain(self):
        g = _htk_93()
        top = top_j_at(g, [2, 3, 6], 3, _scores([0.2, 0.3]), 50)
        assert top[-1] == frozenset(range(1, 8))  # ends at H^9_3
