"""Refinement-mode tests: the lower-envelope ablation must return the
same non-contained MACs as the paper's full arrangement, plus recoverable
cascade round-trips and time-budget failure injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.global_search import GlobalSearch
from repro.core.peeling import (
    cascade_delete_recoverable,
    restore_removed,
)
from repro.dominance.graph import DominanceGraph
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion
from repro.graph.core import k_core_containing

from tests.conftest import (
    paper_attributes,
    paper_social_graph,
    random_graph,
)


@pytest.fixture
def paper_setup(paper_region):
    htk = paper_social_graph().subgraph(range(1, 8))
    attrs = {v: x for v, x in paper_attributes().items() if v <= 7}
    gd = DominanceGraph(attrs, paper_region)
    return htk, gd


class TestEnvelopeEquivalence:
    def test_paper_example_same_nc_macs(self, paper_setup, paper_region):
        htk, gd = paper_setup
        by_mode = {}
        for mode in ("arrangement", "envelope"):
            search = GlobalSearch(
                htk, gd, [2, 3, 6], 3, paper_region, refinement=mode
            )
            by_mode[mode] = {
                e.best.members for e in search.search_nc()
            }
        assert by_mode["arrangement"] == by_mode["envelope"]

    def test_envelope_produces_fewer_or_equal_partitions(
        self, paper_setup, paper_region
    ):
        htk, gd = paper_setup
        counts = {}
        for mode in ("arrangement", "envelope"):
            search = GlobalSearch(
                htk, gd, [2, 3, 6], 3, paper_region, refinement=mode
            )
            counts[mode] = len(search.search_nc())
        assert counts["envelope"] <= counts["arrangement"]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_same_nc_macs(self, seed):
        rng = np.random.default_rng(seed + 200)
        graph = random_graph(13, 0.5, seed=seed * 17 + 3)
        q = [sorted(graph.vertices())[0]]
        htk = k_core_containing(graph, q, 3)
        if htk is None:
            pytest.skip("no 3-core")
        region = PreferenceRegion([0.2, 0.2], [0.45, 0.45])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        found = {}
        for mode in ("arrangement", "envelope"):
            search = GlobalSearch(htk, gd, q, 3, region, refinement=mode)
            found[mode] = {e.best.members for e in search.search_nc()}
        assert found["arrangement"] == found["envelope"]

    def test_unknown_refinement(self, paper_setup, paper_region):
        htk, gd = paper_setup
        with pytest.raises(QueryError):
            GlobalSearch(
                htk, gd, [2], 2, paper_region, refinement="zigzag"
            )


class TestTimeBudget:
    def test_zero_budget_raises(self, paper_setup, paper_region):
        htk, gd = paper_setup
        search = GlobalSearch(
            htk, gd, [2, 3, 6], 3, paper_region, time_budget=0.0
        )
        # The guard fires every 16 tasks; small instances may finish
        # before the first check, so force many tasks via a wide region.
        wide = PreferenceRegion([0.05, 0.05], [0.55, 0.42])
        gd_wide = DominanceGraph(
            {v: x for v, x in paper_attributes().items() if v <= 7}, wide
        )
        search = GlobalSearch(
            htk, gd_wide, [2], 2, wide, time_budget=0.0
        )
        try:
            entries = search.run()
        except QueryError:
            return  # budget enforced
        # tiny instance finished under 16 tasks: acceptable, but sane
        assert entries


class TestRecoverableCascade:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000), st.integers(1, 4))
    def test_delete_restore_roundtrip(self, seed, k):
        g = random_graph(14, 0.3, seed=seed)
        before_vertices = set(g.vertices())
        before_edges = sorted(map(tuple, map(sorted, g.edges())))
        trigger = sorted(g.vertices())[seed % 14]
        removed = cascade_delete_recoverable(g, trigger, k)
        assert trigger not in g
        restore_removed(g, removed)
        assert set(g.vertices()) == before_vertices
        assert sorted(map(tuple, map(sorted, g.edges()))) == before_edges

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000), st.integers(2, 4))
    def test_cascade_leaves_k_core(self, seed, k):
        """After a cascade, survivors form a graph of min degree >= k."""
        g = random_graph(14, 0.45, seed=seed)
        from repro.graph.core import peel_to_k_core

        core = peel_to_k_core(g, k)
        if core.num_vertices == 0:
            return
        trigger = sorted(core.vertices())[0]
        cascade_delete_recoverable(core, trigger, k)
        if core.num_vertices:
            assert core.min_degree() >= k
