"""Flat-kernel search loops are asserted equivalent to the python
reference paths: same partitions, same cells, same communities, same
ordering — on the paper's running example and on random graphs."""

import numpy as np
import pytest

from repro.core.global_search import GlobalSearch
from repro.core.local_search import LocalSearch
from repro.dominance.graph import DominanceGraph
from repro.geometry.region import PreferenceRegion
from repro.graph.core import k_core_containing
from repro.kernels.search import search_flatgraph

from tests.conftest import (
    paper_attributes,
    paper_social_graph,
    random_graph,
)


def signature(partitions):
    """Order-sensitive digest of a search outcome: cells + communities."""
    return [
        (
            tuple(np.round(entry.sample_weight(), 9).tolist()),
            tuple(
                (tuple(sorted(c.members)), c.partial)
                for c in entry.communities
            ),
        )
        for entry in partitions
    ]


@pytest.fixture
def paper_setup(paper_region):
    htk = paper_social_graph().subgraph(range(1, 8))
    attrs = {v: x for v, x in paper_attributes().items() if v <= 7}
    gd = DominanceGraph(attrs, paper_region)
    return htk, gd


class TestPaperExampleEquivalence:
    @pytest.mark.parametrize("problem,j", [("nc", 1), ("topj", 1), ("topj", 3)])
    @pytest.mark.parametrize("refinement", ["arrangement", "envelope"])
    def test_global(self, paper_setup, paper_region, problem, j, refinement):
        htk, gd = paper_setup
        flat = search_flatgraph(htk)

        def run(flat_view):
            search = GlobalSearch(
                htk, gd, [2, 3, 6], 3, paper_region,
                refinement=refinement, flat=flat_view,
            )
            if problem == "nc":
                return search.search_nc()
            return search.search_topj(j)

        assert signature(run(flat)) == signature(run(None))

    @pytest.mark.parametrize("problem,j", [("nc", 1), ("topj", 2)])
    @pytest.mark.parametrize("strategy", ["eq3", "eq4"])
    @pytest.mark.parametrize("certification", ["fast", "chain"])
    def test_local(
        self, paper_setup, paper_region, problem, j, strategy, certification
    ):
        htk, gd = paper_setup
        flat = search_flatgraph(htk)

        def run(flat_view):
            search = LocalSearch(
                htk, gd, [2, 3, 6], 3, paper_region,
                strategy=strategy, certification=certification,
                flat=flat_view,
            )
            if problem == "nc":
                return search.search_nc()
            return search.search_topj(j)

        assert signature(run(flat)) == signature(run(None))


class TestRandomGraphEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_global_topj(self, seed):
        rng = np.random.default_rng(seed + 5)
        graph = random_graph(24, 0.3, seed=seed * 7 + 1)
        q = [sorted(graph.vertices())[0]]
        htk = k_core_containing(graph, q, 2)
        if htk is None:
            pytest.skip("no k-core")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        flat = search_flatgraph(htk)

        def run(flat_view):
            return GlobalSearch(
                htk, gd, q, 2, region,
                refinement="envelope", flat=flat_view,
            ).search_topj(3)

        assert signature(run(flat)) == signature(run(None))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("strategy", ["eq3", "eq4"])
    def test_local_nc(self, seed, strategy):
        rng = np.random.default_rng(seed + 17)
        graph = random_graph(24, 0.3, seed=seed * 13 + 3)
        q = [sorted(graph.vertices())[0]]
        htk = k_core_containing(graph, q, 2)
        if htk is None:
            pytest.skip("no k-core")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        flat = search_flatgraph(htk)

        def run(flat_view):
            return LocalSearch(
                htk, gd, q, 2, region, strategy=strategy, flat=flat_view,
            ).search_nc()

        assert signature(run(flat)) == signature(run(None))

    @pytest.mark.parametrize("seed", range(4))
    def test_local_chain_certification(self, seed):
        rng = np.random.default_rng(seed + 29)
        graph = random_graph(18, 0.4, seed=seed * 5 + 9)
        q = [sorted(graph.vertices())[0]]
        htk = k_core_containing(graph, q, 3)
        if htk is None:
            pytest.skip("no k-core")
        region = PreferenceRegion([0.25, 0.25], [0.40, 0.40])
        attrs = {v: rng.uniform(0, 10, 3) for v in htk.vertices()}
        gd = DominanceGraph(attrs, region)
        flat = search_flatgraph(htk)

        def run(flat_view):
            return LocalSearch(
                htk, gd, q, 3, region,
                certification="chain", flat=flat_view,
            ).search_topj(2)

        assert signature(run(flat)) == signature(run(None))
