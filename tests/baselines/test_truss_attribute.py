"""ATC-style truss baseline tests."""

from repro.baselines.truss_attribute import attribute_truss_community

from tests.conftest import paper_social_graph


class TestAttributeTruss:
    def test_plain_truss_community(self):
        g = paper_social_graph()
        # (k+1)-truss with k=3: the 4-truss around {2,6} is the K4 core.
        out = attribute_truss_community(g, {}, [2, 6], 3)
        assert out is not None
        assert {2, 6} <= out
        assert {2, 3, 6, 7} <= out

    def test_keyword_filter_restricts(self):
        g = paper_social_graph()
        keywords = {v: ("DM" if v in (1, 2, 3, 6, 7) else "DB") for v in g}
        out = attribute_truss_community(g, keywords, [2, 6], 3, keyword="DM")
        assert out is not None
        assert out <= {1, 2, 3, 6, 7}

    def test_query_kept_despite_keyword(self):
        g = paper_social_graph()
        keywords = {v: "DB" for v in g}
        keywords[2] = "DM"
        out = attribute_truss_community(g, keywords, [2, 6], 3, keyword="DB")
        assert out is None or 2 in out

    def test_no_community(self):
        g = paper_social_graph()
        out = attribute_truss_community(g, {}, [14], 4)
        assert out is None
