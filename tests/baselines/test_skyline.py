"""Skyline-community (Sky / Sky+) baseline tests, including brute-force
cross-validation on tiny graphs."""

import itertools

import numpy as np
import pytest

from repro.baselines.skyline import (
    SkylineBudgetExceeded,
    _dominates,
    skyline_communities,
)
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import peel_to_k_core

from tests.conftest import random_graph


def _attrs(graph, d, seed):
    rng = np.random.default_rng(seed)
    return {v: rng.uniform(0, 10, d) for v in graph.vertices()}


def _brute_force(graph, attrs, k, d):
    """All Pareto-maximal f-vectors over maximal connected k-cores of
    threshold-filtered subgraphs (the candidate space of the model)."""
    vertices = sorted(graph.vertices())
    candidates = {}
    # every community is the connected k-core of some threshold filter;
    # enumerate all subsets (tiny n) that are connected k-cores instead.
    for r in range(k + 1, len(vertices) + 1):
        for subset in itertools.combinations(vertices, r):
            sub = graph.subgraph(subset)
            if sub.num_vertices == 0 or sub.min_degree() < k:
                continue
            if not sub.is_connected():
                continue
            f = tuple(
                float(min(attrs[v][i] for v in subset)) for i in range(d)
            )
            candidates[frozenset(subset)] = f
    skyline = {}
    for members, f in candidates.items():
        if not any(
            _dominates(f2, f) for f2 in candidates.values() if f2 != f
        ):
            skyline[f] = skyline.get(f, set()) | {members}
    return set(skyline)


class TestDominates:
    def test_strict_somewhere(self):
        assert _dominates((2, 2), (1, 2))
        assert not _dominates((2, 2), (2, 2))
        assert not _dominates((2, 1), (1, 2))


class TestSkyline:
    def test_empty_when_no_core(self):
        g = AdjacencyGraph([(1, 2)])
        assert skyline_communities(g, {1: np.ones(2), 2: np.ones(2)}, 2) == []

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("d", [1, 2])
    def test_fvectors_match_brute_force(self, seed, d):
        g = random_graph(8, 0.55, seed=seed)
        core = peel_to_k_core(g, 2)
        if core.num_vertices == 0:
            pytest.skip("no 2-core")
        attrs = _attrs(g, d, seed)
        expected_fs = _brute_force(g, attrs, 2, d)
        result = skyline_communities(g, attrs, 2, dims=d)
        result_fs = {f for _m, f in result}
        assert result_fs <= expected_fs
        # the best per dimension is always found
        for i in range(d):
            best_i = max(f[i] for f in expected_fs)
            assert any(abs(f[i] - best_i) < 1e-9 for f in result_fs)

    @pytest.mark.parametrize("seed", range(3))
    def test_results_not_mutually_dominated(self, seed):
        g = random_graph(10, 0.5, seed=seed + 10)
        attrs = _attrs(g, 3, seed)
        result = skyline_communities(g, attrs, 2, dims=3)
        for (_m1, f1), (_m2, f2) in itertools.combinations(result, 2):
            assert not _dominates(f1, f2)
            assert not _dominates(f2, f1)

    @pytest.mark.parametrize("seed", range(3))
    def test_sky_plus_equivalent(self, seed):
        """Sky+ (pruned) returns the same f-vector skyline as Sky."""
        g = random_graph(9, 0.55, seed=seed + 20)
        attrs = _attrs(g, 2, seed + 20)
        plain = skyline_communities(g, attrs, 2, prune=False)
        pruned = skyline_communities(g, attrs, 2, prune=True)
        assert {f for _m, f in plain} == {f for _m, f in pruned}

    def test_budget_exceeded(self):
        g = random_graph(12, 0.5, seed=1)
        attrs = _attrs(g, 3, 1)
        with pytest.raises(SkylineBudgetExceeded):
            skyline_communities(g, attrs, 2, dims=3, budget=3)

    def test_communities_are_connected_k_cores(self):
        g = random_graph(10, 0.5, seed=5)
        attrs = _attrs(g, 2, 5)
        for members, _f in skyline_communities(g, attrs, 2):
            sub = g.subgraph(members)
            assert sub.min_degree() >= 2
            assert sub.is_connected()
