"""Influential-community (Influ / Influ+) baseline tests."""

import numpy as np
import pytest

from repro.baselines.influential import (
    ICPIndex,
    influ_nc,
    influential_communities,
)
from repro.errors import QueryError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import peel_to_k_core

from tests.conftest import paper_social_graph, random_graph


def _weights(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {v: float(rng.uniform(0, 10)) for v in graph.vertices()}


class TestInflu:
    def test_invalid_k(self):
        with pytest.raises(QueryError):
            influential_communities(AdjacencyGraph(), {}, 0)

    def test_no_core_is_empty(self):
        g = AdjacencyGraph([(1, 2), (2, 3)])
        assert influential_communities(g, {1: 1, 2: 2, 3: 3}, 2) == []

    def test_communities_ordered_by_influence(self):
        g = paper_social_graph()
        w = _weights(g)
        out = influential_communities(g, w, 2)

        def influence(c):
            return min(w[v] for v in c)

        infl = [influence(c) for c in out]
        assert infl == sorted(infl, reverse=True)

    def test_each_community_is_connected_k_core(self):
        g = paper_social_graph()
        w = _weights(g, 1)
        for k in (2, 3):
            for c in influential_communities(g, w, k):
                sub = g.subgraph(c)
                assert sub.min_degree() >= k
                assert sub.is_connected()

    def test_strongest_community_definition(self):
        """Top-1 = connected k-core of the vertices above the highest
        feasible influence threshold."""
        g = paper_social_graph()
        w = _weights(g, 2)
        top = influential_communities(g, w, 3, top_r=1)[0]
        # no connected 3-core exists using only strictly stronger vertices
        threshold = min(w[v] for v in top)
        stronger = [v for v in g.vertices() if w[v] > threshold]
        assert peel_to_k_core(g.subgraph(stronger), 3).num_vertices == 0

    def test_query_anchored_chain_is_nested(self):
        g = paper_social_graph()
        w = _weights(g, 3)
        out = influential_communities(g, w, 3, query=[2, 6])
        for big, small in zip(out, out[1:]):
            assert small != big
        for c in out:
            assert {2, 6} <= c

    def test_influ_nc(self):
        g = paper_social_graph()
        w = _weights(g, 4)
        nc = influ_nc(g, w, 3, [2, 6])
        out = influential_communities(g, w, 3, query=[2, 6])
        assert nc == out[0]
        assert influ_nc(g, w, 5, [2]) is None


class TestICPIndex:
    @pytest.mark.parametrize("seed", range(4))
    def test_index_matches_online(self, seed):
        g = random_graph(16, 0.4, seed=seed)
        w = _weights(g, seed)
        idx = ICPIndex(g, w, [2, 3])
        for k in (2, 3):
            online = influential_communities(g, w, k)
            indexed = idx.query(k)
            assert set(indexed) == set(online)

    def test_top_r(self):
        g = paper_social_graph()
        w = _weights(g, 5)
        idx = ICPIndex(g, w, [2])
        assert idx.query(2, top_r=3) == influential_communities(
            g, w, 2, top_r=3
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_query_anchored_matches_online(self, seed):
        g = random_graph(15, 0.45, seed=seed + 50)
        w = _weights(g, seed + 50)
        idx = ICPIndex(g, w, [3])
        core = peel_to_k_core(g, 3)
        if core.num_vertices == 0:
            pytest.skip("no 3-core")
        q = sorted(core.vertices())[:2]
        online = influential_communities(g, w, 3, query=q)
        indexed = idx.query(3, query=q)
        assert indexed == online

    def test_unknown_k_rejected(self):
        g = paper_social_graph()
        idx = ICPIndex(g, _weights(g), [2])
        with pytest.raises(QueryError):
            idx.query(7)

    def test_query_outside_core(self):
        g = paper_social_graph()
        idx = ICPIndex(g, _weights(g), [3])
        assert idx.query(3, query=[15]) == []
