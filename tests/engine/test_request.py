"""MACRequest validation, normalization and cache-key tests."""

import pytest

from repro.engine.request import MACRequest, region_key
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion


class TestValidation:
    def test_defaults(self, paper_region):
        r = MACRequest.make([3, 1, 2], 3, 9.0, paper_region)
        assert r.query == (1, 2, 3)
        assert r.j == 1
        assert r.problem == "nc"
        assert r.algorithm == "auto"
        assert r.use_gtree is None

    def test_numpy_query_vertices_coerced(self, paper_region):
        import numpy as np

        r = MACRequest.make(
            np.array([6, 2, 3]), np.int64(3), np.float64(9.0), paper_region
        )
        assert r.query == (2, 3, 6)
        assert all(type(v) is int for v in r.query)
        assert type(r.k) is int and type(r.t) is float

    def test_query_normalized_and_frozen(self, paper_region):
        r = MACRequest.make([6, 2, 2, 3], 3, 9.0, paper_region)
        assert r.query == (2, 3, 6)
        with pytest.raises(AttributeError):
            r.k = 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(query=[], k=3, t=9.0),
            dict(query=[1], k=0, t=9.0),
            dict(query=[1], k=3, t=-1.0),
            dict(query=[1], k=3, t=9.0, j=0),
            dict(query=[1], k=3, t=9.0, problem="best"),
            dict(query=[1], k=3, t=9.0, algorithm="magic"),
            dict(query=[1], k=3, t=9.0, strategy="eq9"),
            dict(query=[1], k=3, t=9.0, refinement="fancy"),
            dict(query=[1], k=3, t=9.0, certification="slow"),
            dict(query=[1], k=3, t=9.0, max_candidates=0),
            dict(query=[1], k=3, t=9.0, max_partitions=0),
            dict(query=[1], k=3, t=9.0, time_budget=0.0),
            dict(query=["a"], k=3, t=9.0),
            dict(query=[1], k=3.5, t=9.0),
            dict(query=[1], k="3", t=9.0),
            dict(query=[1], k=3, t="9"),
            dict(query=[1], k=3, t=9.0, j=2.5),
        ],
    )
    def test_rejects(self, paper_region, kwargs):
        kwargs = dict(kwargs)
        query = kwargs.pop("query")
        k = kwargs.pop("k")
        t = kwargs.pop("t")
        with pytest.raises(QueryError):
            MACRequest.make(query, k, t, paper_region, **kwargs)

    def test_j_conflicts_with_nc(self, paper_region):
        with pytest.raises(QueryError, match="conflicts"):
            MACRequest.make([1], 3, 9.0, paper_region, j=5, problem="nc")
        # but is fine for topj
        r = MACRequest.make([1], 3, 9.0, paper_region, j=5, problem="topj")
        assert r.j == 5

    def test_region_type_checked(self):
        with pytest.raises(QueryError, match="PreferenceRegion"):
            MACRequest.make([1], 3, 9.0, region=[0.1, 0.5])

    def test_unknown_field_raises_query_error(self, paper_region):
        with pytest.raises(QueryError, match="unknown request field"):
            MACRequest.make([1], 3, 9.0, paper_region, jj=2)


class TestKeys:
    def test_staged_keys_nest(self, paper_region):
        r = MACRequest.make([2, 1], 3, 9.0, paper_region)
        assert r.filter_key == ((1, 2), 9.0)
        assert r.core_key == ((1, 2), 3, 9.0)
        assert r.dominance_key == (
            (1, 2), 3, 9.0, region_key(paper_region)
        )

    def test_keys_ignore_output_knobs(self, paper_region):
        a = MACRequest.make([1, 2], 3, 9.0, paper_region)
        b = MACRequest.make(
            [1, 2], 3, 9.0, paper_region,
            j=4, problem="topj", algorithm="local", label="b",
        )
        assert a.filter_key == b.filter_key
        assert a.core_key == b.core_key
        assert a.dominance_key == b.dominance_key

    def test_region_key_distinguishes(self, paper_region):
        other = PreferenceRegion([0.1, 0.2], [0.5, 0.41])
        a = MACRequest.make([1], 3, 9.0, paper_region)
        b = MACRequest.make([1], 3, 9.0, other)
        assert a.dominance_key != b.dominance_key

    def test_label_not_part_of_equality(self, paper_region):
        a = MACRequest.make([1], 3, 9.0, paper_region, label="x")
        b = MACRequest.make([1], 3, 9.0, paper_region, label="y")
        assert a == b

    def test_describe_mentions_label(self, paper_region):
        r = MACRequest.make(
            [1], 3, 9.0, paper_region, label="wave-1",
            problem="topj", j=3,
        )
        text = r.describe()
        assert "wave-1" in text and "j=3" in text
