"""MACEngine tests: correctness vs the one-shot path, cache accounting,
explain() plans, and shared G-tree state."""

import pytest

from repro import MACEngine, MACRequest, mac_search
from repro.engine.engine import QueryPlan
from repro.errors import QueryError
from repro.geometry.region import PreferenceRegion


def _request(paper_region, **kwargs):
    kwargs.setdefault("algorithm", "global")
    return MACRequest.make([2, 3, 6], 3, 9.0, paper_region, **kwargs)


def _partition_sets(result):
    return {frozenset(e.best.members) for e in result.partitions}


class TestSearchEquivalence:
    @pytest.mark.parametrize("algorithm", ["global", "local"])
    @pytest.mark.parametrize("problem", ["nc", "topj"])
    def test_matches_free_function(
        self, paper_network, paper_region, algorithm, problem
    ):
        engine = MACEngine(paper_network)
        j = 2 if problem == "topj" else 1
        request = _request(
            paper_region, algorithm=algorithm, problem=problem, j=j
        )
        mine = engine.search(request)
        legacy = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region,
            j=j, algorithm=algorithm, problem=problem,
        )
        assert mine.htk_vertices == legacy.htk_vertices == 7
        assert len(mine.partitions) == len(legacy.partitions)
        assert mine.communities() == legacy.communities()
        assert mine.nc_communities() == legacy.nc_communities()

    def test_warm_search_same_result(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = _request(paper_region)
        cold = engine.search(request)
        warm = engine.search(request)
        assert _partition_sets(cold) == _partition_sets(warm)
        assert cold.communities() == warm.communities()
        # served result is a fresh wrapper, not the cached object
        assert warm is not cold
        assert warm.partitions is not cold.partitions
        assert warm.elapsed >= 0

    def test_empty_core(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = MACRequest.make([2], 6, 9.0, paper_region)
        result = engine.search(request)
        assert result.is_empty
        assert result.htk_vertices == 0
        assert result.extra["engine"]["cache"]["dominance"] == "skipped"


class TestValidationAtSearch:
    def test_dimension_mismatch(self, paper_network):
        engine = MACEngine(paper_network)
        region = PreferenceRegion([0.2], [0.4])  # d = 2, network d = 3
        with pytest.raises(QueryError, match="d=2"):
            engine.search(MACRequest.make([2], 2, 9.0, region))

    def test_missing_query_user(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        with pytest.raises(QueryError):
            engine.search(MACRequest.make([999], 2, 9.0, paper_region))

    def test_requires_typed_request(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        with pytest.raises(QueryError, match="MACRequest"):
            engine.search({"query": [2], "k": 2})

    def test_bad_use_gtree_engine_param(self, paper_network):
        with pytest.raises(QueryError):
            MACEngine(paper_network, use_gtree="sometimes")


class TestCacheAccounting:
    def test_cold_then_warm(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = _request(paper_region)
        cold = engine.search(request)
        assert cold.extra["engine"]["cache"] == {
            "filter": "miss", "core": "miss", "dominance": "miss",
            "result": "miss",
        }
        warm = engine.search(request)
        # A byte-identical request is served from the result cache.
        assert warm.extra["engine"]["cache"] == {"result": "hit"}
        tel = engine.telemetry()
        assert tel.searches == 2
        assert tel.result.hits == 1 and tel.result.misses == 1
        assert tel.core.misses == 1 and tel.dominance.misses == 1

    def test_result_cache_can_be_disabled(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network, result_cache_size=0)
        request = _request(paper_region)
        engine.search(request)
        warm = engine.search(request)
        assert warm.extra["engine"]["cache"] == {
            "filter": "hit", "core": "hit", "dominance": "hit",
            "result": "off",
        }
        tel = engine.telemetry()
        assert tel.core.hits == 1 and tel.dominance.hits == 1
        assert tel.result.requests == 0

    def test_new_k_reuses_filter(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        engine.search(_request(paper_region))
        other_k = MACRequest.make(
            [2, 3, 6], 2, 9.0, paper_region, algorithm="global"
        )
        result = engine.search(other_k)
        cache = result.extra["engine"]["cache"]
        assert cache["filter"] == "hit"
        assert cache["core"] == "miss"
        assert cache["dominance"] == "miss"

    def test_new_region_reuses_core(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        engine.search(_request(paper_region))
        other_region = PreferenceRegion([0.15, 0.2], [0.5, 0.4])
        result = engine.search(_request(other_region))
        cache = result.extra["engine"]["cache"]
        assert cache["core"] == "hit"
        assert cache["dominance"] == "miss"

    def test_topj_after_nc_hits_everything(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        engine.search(_request(paper_region))
        result = engine.search(
            _request(paper_region, problem="topj", j=2, algorithm="local")
        )
        assert result.extra["engine"]["cache"] == {
            "filter": "hit", "core": "hit", "dominance": "hit",
            "result": "miss",
        }

    def test_warm_prepays_stages_without_searching(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        request = _request(paper_region)
        outcomes = engine.warm(request)
        assert outcomes == {
            "filter": "miss", "core": "miss", "dominance": "miss",
        }
        assert engine.telemetry().searches == 0
        result = engine.search(request)
        assert result.extra["engine"]["cache"] == {
            "filter": "hit", "core": "hit", "dominance": "hit",
            "result": "miss",
        }

    def test_warm_skips_dominance_on_empty_core(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        outcomes = engine.warm(MACRequest.make([2], 6, 9.0, paper_region))
        assert outcomes["dominance"] == "skipped"

    def test_caller_mutation_cannot_poison_result_cache(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        request = _request(paper_region)
        first = engine.search(request)
        n = len(first.partitions)
        first.partitions.clear()  # hostile caller
        second = engine.search(request)
        assert len(second.partitions) == n

    def test_clear_caches(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = _request(paper_region)
        engine.search(request)
        engine.clear_caches()
        result = engine.search(request)
        assert result.extra["engine"]["cache"]["core"] == "miss"


class TestExplain:
    def test_cold_plan(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = _request(paper_region, problem="topj", j=2)
        plan = engine.explain(request)
        assert isinstance(plan, QueryPlan)
        assert plan.searcher == "GS-T"
        assert plan.algorithm == "global"
        assert plan.filter_strategy == "dijkstra"
        assert plan.cached == {
            "filter": False, "core": False, "dominance": False,
            "result": False,
        }
        assert plan.feasible is None
        assert plan.htk_vertices is None
        assert plan.htk_upper_bound == paper_network.social.num_users
        assert "plan for" in plan.summary()

    def test_explain_runs_nothing(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        engine.explain(_request(paper_region))
        tel = engine.telemetry()
        assert tel.searches == 0
        assert tel.hits == tel.misses == 0

    def test_warm_plan_is_exact(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = _request(paper_region)
        engine.search(request)
        plan = engine.explain(request)
        assert plan.cached == {
            "filter": True, "core": True, "dominance": True,
            "result": True,
        }
        assert plan.feasible is True
        assert plan.htk_vertices == 7
        assert plan.htk_upper_bound == 7

    def test_infeasible_plan_from_filter_cache(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        request = MACRequest.make([2], 6, 9.0, paper_region)
        engine.search(request)
        plan = engine.explain(request)
        assert plan.feasible is False
        assert plan.htk_vertices == 0
        # mirrors execution: no searcher runs on an empty core
        assert plan.searcher == "none"
        assert plan.algorithm == "none"

    def test_auto_plan_from_filter_bound_is_labeled(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network, auto_local_threshold=3)
        request = MACRequest.make(
            [2, 3, 6], 3, 9.0, paper_region, algorithm="auto"
        )
        engine.warm(MACRequest.make([2, 3, 6], 3, 9.0, paper_region))
        engine.clear_caches()
        # re-warm only the filter stage, leaving core/result cold
        engine._prepared_filter(
            request, False, engine._resolve_backend(request), {}, {}
        )
        plan = engine.explain(request)
        assert plan.cached["filter"] and not plan.cached["core"]
        # a bound-based resolution must say "bound", not claim exactness
        assert "bound" in plan.algorithm_reason
        assert "provisional" in plan.algorithm_reason

    def test_auto_algorithm_resolution(self, paper_network, paper_region):
        engine = MACEngine(paper_network, auto_local_threshold=3)
        request = MACRequest.make(
            [2, 3, 6], 3, 9.0, paper_region, algorithm="auto"
        )
        engine.search(request)
        plan = engine.explain(request)
        # |H^t_k| = 7 > 3, so auto resolves to the local search
        assert plan.algorithm == "local"
        assert plan.searcher == "LS-NC"

    def test_auto_runs_global_on_small_core(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        request = MACRequest.make(
            [2, 3, 6], 3, 9.0, paper_region, algorithm="auto"
        )
        result = engine.search(request)
        assert result.extra["engine"]["algorithm"] == "global"


class TestGTreeSharing:
    def test_gtree_cached_property_builds_once(self, paper_network):
        assert not paper_network.has_gtree
        first = paper_network.gtree
        assert paper_network.has_gtree
        assert paper_network.gtree is first
        assert paper_network.build_gtree() is first

    def test_engine_and_legacy_share_gtree(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network, use_gtree=True, eager=True)
        built = paper_network._gtree
        assert built is not None
        fast = engine.search(_request(paper_region))
        assert fast.extra["engine"]["filter_strategy"] == "gtree"
        legacy = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region, use_gtree=True
        )
        assert paper_network._gtree is built  # no rebuild anywhere
        assert fast.nc_communities() == legacy.nc_communities()

    def test_request_overrides_engine_default(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network, use_gtree=True)
        result = engine.search(_request(paper_region, use_gtree=False))
        assert result.extra["engine"]["filter_strategy"] == "dijkstra"
        assert not paper_network.has_gtree
