"""search_batch tests: batch-vs-sequential equivalence and cache sharing."""

import pytest

from repro import MACEngine, MACRequest, mac_search
from repro.engine.cache import LRUCache
from repro.errors import QueryError


def _partition_sets(result):
    return {frozenset(e.best.members) for e in result.partitions}


class TestBatch:
    def test_identical_requests_match_sequential(
        self, paper_network, paper_region
    ):
        """The acceptance-criterion scenario: 8 identical requests."""
        engine = MACEngine(paper_network)
        request = MACRequest.make(
            [2, 3, 6], 3, 9.0, paper_region, algorithm="global"
        )
        results = engine.search_batch([request] * 8, workers=4)
        assert len(results) == 8
        reference = mac_search(
            paper_network, [2, 3, 6], 3, 9.0, paper_region,
            algorithm="global",
        )
        for result in results:
            assert _partition_sets(result) == _partition_sets(reference)
            assert result.communities() == reference.communities()
        tel = engine.telemetry()
        assert tel.searches == 8
        assert tel.batches == 1
        assert tel.hits > 0  # cache telemetry must report reuse
        assert tel.core.misses == 1  # the (k,t)-core was built exactly once
        assert tel.dominance.misses == 1

    def test_mixed_requests_preserve_order(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        requests = [
            MACRequest.make(
                [2, 3, 6], 3, 9.0, paper_region,
                algorithm="global", label="nc",
            ),
            MACRequest.make(
                [2, 3, 6], 3, 9.0, paper_region, j=2, problem="topj",
                algorithm="global", label="topj",
            ),
            MACRequest.make([2], 6, 9.0, paper_region, label="empty"),
            MACRequest.make(
                [2, 3, 6], 2, 9.0, paper_region,
                algorithm="local", label="k2",
            ),
        ]
        results = engine.search_batch(requests, workers=3)
        assert [r.extra["engine"]["label"] for r in results] == [
            "nc", "topj", "empty", "k2",
        ]
        assert not results[0].is_empty
        assert results[2].is_empty
        for request, result in zip(requests, results):
            solo = mac_search(
                paper_network, request.query, request.k, request.t,
                request.region, j=request.j,
                algorithm=(
                    request.algorithm
                    if request.algorithm != "auto" else "global"
                ),
                problem=request.problem,
            )
            assert _partition_sets(result) == _partition_sets(solo)

    def test_single_worker_path(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = MACRequest.make([2, 3, 6], 3, 9.0, paper_region)
        results = engine.search_batch([request, request], workers=1)
        assert len(results) == 2
        assert _partition_sets(results[0]) == _partition_sets(results[1])

    def test_empty_batch(self, paper_network):
        engine = MACEngine(paper_network)
        assert engine.search_batch([]) == []

    def test_batch_validates_upfront(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        good = MACRequest.make([2, 3, 6], 3, 9.0, paper_region)
        with pytest.raises(QueryError, match="MACRequest"):
            engine.search_batch([good, "not-a-request"])
        assert engine.telemetry().searches == 0  # nothing ran


class TestLRUCache:
    def test_eviction_and_stats(self):
        cache = LRUCache(2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: 1)  # refresh a
        cache.get_or_create("c", lambda: 3)  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        value, hit = cache.get_or_create("b", lambda: 20)
        assert value == 20 and not hit
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 4
        assert stats.size == 2 and stats.capacity == 2
        assert 0 < stats.hit_rate < 1

    def test_none_values_are_cached(self):
        cache = LRUCache(4)
        calls = []

        def build():
            calls.append(1)
            return None

        value, hit = cache.get_or_create("x", build)
        assert value is None and not hit
        value, hit = cache.get_or_create("x", build)
        assert value is None and hit
        assert len(calls) == 1

    def test_failed_build_not_cached(self):
        cache = LRUCache(4)
        with pytest.raises(RuntimeError):
            cache.get_or_create("x", self._boom)
        value, hit = cache.get_or_create("x", lambda: 7)
        assert value == 7 and not hit

    @staticmethod
    def _boom():
        raise RuntimeError("build failed")

    def test_concurrent_builds_deduplicated(self):
        import threading

        cache = LRUCache(4)
        calls = []
        gate = threading.Event()

        def build():
            calls.append(1)
            gate.wait(timeout=5)
            return 42

        outcomes = []

        def worker():
            outcomes.append(cache.get_or_create("k", build))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert len(calls) == 1  # one elected builder
        assert all(value == 42 for value, _hit in outcomes)
        assert sum(1 for _v, hit in outcomes if not hit) == 1
        assert cache.stats.hits == 5 and cache.stats.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)
