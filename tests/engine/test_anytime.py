"""Anytime mode: deadline expiry returns a best-so-far partial result
instead of raising, partial results never enter the result cache, and
``anytime=False`` keeps the typed failure contract."""

import pytest

from repro import MACEngine, MACRequest
from repro.errors import DeadlineExceeded


def request(paper_region, **knobs):
    knobs.setdefault("algorithm", "global")
    return MACRequest.make((2, 3, 6), 3, 9.0, paper_region, **knobs)


class TestRequestSemantics:
    def test_anytime_excluded_from_identity(self, paper_region):
        soft = request(paper_region, deadline=0.5, anytime=True)
        hard = request(paper_region, deadline=0.5)
        plain = request(paper_region)
        assert soft == hard == plain
        assert soft.result_key == plain.result_key
        assert hash(soft) == hash(plain)

    def test_anytime_is_coerced_to_bool(self, paper_region):
        assert request(paper_region, anytime=1).anytime is True
        assert request(paper_region).anytime is False


class TestAnytimeSearch:
    def test_without_anytime_the_typed_error_still_raises(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        with pytest.raises(DeadlineExceeded):
            engine.search(request(paper_region, deadline=1e-9))

    def test_expiry_returns_partial_instead_of_raising(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        result = engine.search(
            request(paper_region, deadline=1e-9, anytime=True)
        )
        assert result.partial is True
        assert result.progress  # how far the pipeline got
        assert "[partial]" in result.summary()
        assert engine.telemetry().partial_results == 1

    def test_search_stage_partial_is_feasible(
        self, paper_network, paper_region
    ):
        """With prepared stages warm, expiry lands inside the search
        loop and the fallback communities still contain Q."""
        engine = MACEngine(paper_network)
        engine.warm(request(paper_region, problem="topj", j=3))
        result = engine.search(request(
            paper_region, problem="topj", j=3, deadline=1e-9, anytime=True,
        ))
        assert result.partial is True
        assert result.progress["stage"] == "search"
        assert result.partitions
        for entry in result.partitions:
            for community in entry.communities:
                assert community.partial is True
                assert {2, 3, 6} <= set(community.members)

    def test_generous_budget_is_exact_not_partial(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        soft = engine.search(
            request(paper_region, deadline=60.0, anytime=True)
        )
        exact = engine.search(request(paper_region))
        assert soft.partial is False
        assert soft.progress == {}
        assert soft.communities() == exact.communities()


class TestPartialNeverCached:
    def test_partial_result_does_not_poison_the_cache(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        partial = engine.search(
            request(paper_region, deadline=1e-9, anytime=True)
        )
        assert partial.partial is True
        # The same semantic request, unbudgeted, must recompute from
        # scratch — a cached partial would be served as the truth here.
        exact = engine.search(request(paper_region))
        assert exact.partial is False
        assert exact.extra["engine"]["cache"]["result"] == "miss"
        assert exact.communities()

    def test_complete_anytime_result_is_cached(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        first = engine.search(
            request(paper_region, deadline=60.0, anytime=True)
        )
        assert first.partial is False
        again = engine.search(request(paper_region))
        assert again.extra["engine"]["cache"]["result"] == "hit"

    def test_anytime_request_is_served_from_a_warm_cache(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        engine.search(request(paper_region))
        served = engine.search(
            request(paper_region, deadline=1e-9, anytime=True)
        )
        assert served.partial is False
        assert served.extra["engine"]["cache"]["result"] == "hit"

    def test_cache_off_partial_still_works(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network, result_cache_size=0)
        result = engine.search(
            request(paper_region, deadline=1e-9, anytime=True)
        )
        assert result.partial is True
        assert engine.telemetry().partial_results == 1


class TestExplainSearchPlan:
    def test_plan_reports_search_backend_and_frontier(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        plan = engine.explain(request(paper_region, refinement="envelope"))
        assert plan.search_backend in ("flat", "python")
        assert plan.frontier == "peel-envelope"
        assert f"backend={plan.search_backend}" in plan.summary()
        local = engine.explain(request(
            paper_region, algorithm="local", strategy="eq4",
        ))
        assert local.frontier == "push-eq4"

    def test_infeasible_plan_has_no_search_backend(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        infeasible = MACRequest.make((2,), 6, 9.0, paper_region)
        engine.search(infeasible)
        plan = engine.explain(infeasible)
        assert plan.algorithm == "none"
        assert plan.search_backend == "none"
        assert plan.frontier == "none"
