"""Deadline budgets: typed expiry at every pipeline stage, no hangs."""

import threading
import time

import pytest

from repro import MACEngine, MACRequest
from repro.deadline import Deadline
from repro.engine.cache import LRUCache
from repro.errors import DeadlineExceeded, QueryError


def request(paper_region, **knobs):
    return MACRequest.make((2, 3, 6), 3, 9.0, paper_region, **knobs)


class TestDeadlineObject:
    def test_generous_budget_passes(self):
        deadline = Deadline(60.0)
        deadline.check("anything")
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0

    def test_expired_budget_raises_with_stage(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="during dominance"):
            deadline.check("dominance")

    def test_of_none_is_none(self):
        assert Deadline.of(None) is None
        assert Deadline.of(1.5).budget == 1.5

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestRequestValidation:
    def test_deadline_must_be_positive_number(self, paper_region):
        with pytest.raises(QueryError, match="deadline must be positive"):
            request(paper_region, deadline=0)
        with pytest.raises(QueryError, match="deadline must be positive"):
            request(paper_region, deadline=-1.0)
        with pytest.raises(QueryError, match="number of seconds"):
            request(paper_region, deadline="soon")

    def test_deadline_is_coerced_to_float(self, paper_region):
        assert request(paper_region, deadline=2).deadline == 2.0

    def test_deadline_excluded_from_identity(self, paper_region):
        fast = request(paper_region, deadline=0.001)
        slow = request(paper_region, deadline=100.0)
        none = request(paper_region)
        assert fast == slow == none
        assert fast.result_key == none.result_key
        assert hash(fast) == hash(none)


class TestCacheWaiterDeadline:
    def test_budgeted_waiter_fails_typed_behind_slow_build(self):
        """A deadline-carrying cache waiter must not block on another
        caller's unbudgeted build (the serving no-hang contract)."""
        cache = LRUCache(4)
        release = threading.Event()
        started = threading.Event()

        def builder() -> None:
            def factory():
                started.set()
                release.wait(timeout=10)
                return "built"

            cache.get_or_create("key", factory)

        thread = threading.Thread(target=builder)
        thread.start()
        try:
            assert started.wait(timeout=5)
            begin = time.perf_counter()
            with pytest.raises(DeadlineExceeded, match="in-flight build"):
                cache.get_or_create("key", lambda: "other", Deadline(0.2))
            assert time.perf_counter() - begin < 2.0
        finally:
            release.set()
            thread.join(timeout=5)
        # the unbudgeted builder's value landed untouched
        value, hit = cache.get_or_create("key", lambda: "fresh")
        assert value == "built" and hit

    def test_unbudgeted_waiter_still_waits_for_the_build(self):
        cache = LRUCache(4)
        started = threading.Event()

        def builder() -> None:
            def factory():
                started.set()
                time.sleep(0.2)
                return "built"

            cache.get_or_create("key", factory)

        thread = threading.Thread(target=builder)
        thread.start()
        try:
            assert started.wait(timeout=5)
            value, hit = cache.get_or_create("key", lambda: "other")
            assert value == "built" and hit
        finally:
            thread.join(timeout=5)


class TestEngineDeadlines:
    @pytest.mark.parametrize("algorithm", ["global", "local"])
    def test_tiny_budget_fails_typed_and_fast(
        self, paper_network, paper_region, algorithm
    ):
        engine = MACEngine(paper_network)
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded, match="deadline"):
            engine.search(
                request(paper_region, algorithm=algorithm, deadline=1e-9)
            )
        assert time.perf_counter() - start < 5.0
        assert engine.telemetry().deadline_exceeded == 1

    def test_generous_budget_answers_normally(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        unbudgeted = engine.search(request(paper_region))
        engine2 = MACEngine(paper_network)
        budgeted = engine2.search(request(paper_region, deadline=300.0))
        assert [sorted(e.best.members) for e in budgeted.partitions] == \
            [sorted(e.best.members) for e in unbudgeted.partitions]
        assert engine2.telemetry().deadline_exceeded == 0

    def test_nothing_half_built_is_cached(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        with pytest.raises(DeadlineExceeded):
            engine.search(request(paper_region, deadline=1e-9))
        tel = engine.telemetry()
        assert tel.filter.size == tel.core.size == tel.dominance.size == 0
        assert tel.result.size == 0
        # a retry with room succeeds and populates the caches cleanly
        result = engine.search(request(paper_region, deadline=300.0))
        assert result.partitions

    def test_expiry_inside_search_phase(self, paper_network, paper_region):
        # Warm every prepared stage first, so only the search loop can
        # observe the (already expired) budget.
        engine = MACEngine(paper_network, result_cache_size=0)
        engine.warm(request(paper_region))
        with pytest.raises(DeadlineExceeded, match="search"):
            engine.search(
                request(paper_region, algorithm="global", deadline=1e-9)
            )

    def test_result_cache_hit_beats_any_deadline(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        engine.search(request(paper_region, algorithm="local"))
        served = engine.search(
            request(paper_region, algorithm="local", deadline=1e-9)
        )
        assert served.extra["engine"]["cache"] == {"result": "hit"}

    def test_warm_honors_deadline(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        with pytest.raises(DeadlineExceeded):
            engine.warm(request(paper_region, deadline=1e-9))

    def test_batch_budgets_are_per_request(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        ok = request(paper_region, algorithm="local")
        # search_batch propagates the first failure, like always
        with pytest.raises(DeadlineExceeded):
            engine.search_batch(
                [ok, request(paper_region, algorithm="global",
                             deadline=1e-9)],
                workers=1,
            )
