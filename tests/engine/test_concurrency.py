"""Concurrent engine access: threads hammering the shared stage caches.

The serving API multiplexes many client threads onto one engine, so the
staged caches must (a) return the same answers under interleaving as
sequentially, and (b) keep their hit/miss accounting consistent — every
lookup is either a hit or a miss, concurrent builds of one key are
deduplicated (one miss, the waiters count as hits), and nothing is
double-built or double-counted.
"""

import random
import threading

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion

REGIONS = [
    PreferenceRegion([0.1, 0.2], [0.5, 0.4]),
    PreferenceRegion([0.15, 0.25], [0.45, 0.35]),
]


def workload() -> list[MACRequest]:
    """16 distinct feasible requests sharing stage-cache prefixes."""
    requests = []
    for k in (2, 3):
        for t in (9.0, 12.0):
            for algorithm in ("local", "global"):
                for i, region in enumerate(REGIONS):
                    requests.append(MACRequest.make(
                        (2, 3, 6), k, t, region,
                        algorithm=algorithm,
                        label=f"k{k}-t{t:g}-{algorithm}-r{i}",
                    ))
    return requests


def signature(result) -> list[list[int]]:
    return [sorted(entry.best.members) for entry in result.partitions]


@pytest.fixture
def reference(paper_network):
    """Sequential single-threaded answers from a pristine engine."""
    engine = MACEngine(paper_network)
    return {r.label: signature(engine.search(r)) for r in workload()}


def hammer(target, threads: int) -> list:
    failures: list = []
    done = threading.Barrier(threads)

    def run(worker_id: int) -> None:
        try:
            done.wait(timeout=30)  # maximize interleaving
            target(worker_id)
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append((worker_id, repr(exc)))

    pool = [
        threading.Thread(target=run, args=(i,)) for i in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return failures


class TestConcurrentSearch:
    THREADS = 6
    PASSES = 2

    def test_equivalence_and_telemetry_accounting(
        self, paper_network, reference
    ):
        engine = MACEngine(paper_network, result_cache_size=0)
        requests = workload()
        mismatches: list = []

        def worker(worker_id: int) -> None:
            rng = random.Random(worker_id)
            for _ in range(self.PASSES):
                shuffled = list(requests)
                rng.shuffle(shuffled)
                for request in shuffled:
                    got = signature(engine.search(request))
                    if got != reference[request.label]:
                        mismatches.append((worker_id, request.label))

        failures = hammer(worker, self.THREADS)
        assert not failures
        assert not mismatches

        total = self.THREADS * self.PASSES * len(requests)
        tel = engine.telemetry()
        assert tel.searches == total
        # Every lookup is accounted exactly once...
        for stage in (tel.filter, tel.core, tel.dominance):
            assert stage.hits + stage.misses == stage.requests
        # ...the (k,t)-core stage fields every search (result cache off),
        # the filter stage only the core *builders*, dominance every
        # search whose core is feasible (all of them here).
        assert tel.core.requests == total
        assert tel.dominance.requests == total
        assert tel.filter.requests == tel.core.misses
        # Build dedup: concurrent requests for one key elect a single
        # builder — misses equal the distinct key counts exactly (the
        # caches are far larger than the workload; nothing evicts).
        assert tel.filter.misses == len({r.filter_key for r in requests})
        assert tel.core.misses == len({r.core_key for r in requests})
        assert tel.dominance.misses == len(
            {r.dominance_key for r in requests}
        )
        # Built once means build time accrued once per stage, not per hit.
        assert tel.stage_seconds["filter"] > 0.0
        assert tel.stage_seconds["dominance"] > 0.0

    def test_result_cache_dedups_identical_requests(self, paper_network):
        engine = MACEngine(paper_network)
        request = workload()[0]

        def worker(_worker_id: int) -> None:
            engine.search(request)

        failures = hammer(worker, 8)
        assert not failures
        tel = engine.telemetry()
        assert tel.result.requests == 8
        assert tel.result.misses == 1  # one build, 7 served from cache
        assert tel.result.hits == 7


class TestConcurrentBatch:
    THREADS = 4

    def test_parallel_batches_share_caches(self, paper_network, reference):
        engine = MACEngine(paper_network, result_cache_size=0)
        requests = workload()
        mismatches: list = []

        def worker(worker_id: int) -> None:
            rng = random.Random(100 + worker_id)
            shuffled = list(requests)
            rng.shuffle(shuffled)
            results = engine.search_batch(shuffled, workers=3)
            for request, result in zip(shuffled, results):
                if signature(result) != reference[request.label]:
                    mismatches.append((worker_id, request.label))

        failures = hammer(worker, self.THREADS)
        assert not failures
        assert not mismatches
        tel = engine.telemetry()
        assert tel.batches == self.THREADS
        assert tel.searches == self.THREADS * len(requests)
        assert tel.core.requests == tel.searches
        assert tel.filter.requests == tel.core.misses
        assert tel.core.misses == len({r.core_key for r in requests})
