"""k-truss tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.truss import k_truss, k_truss_containing, truss_decomposition

from tests.conftest import paper_social_graph, random_graph


def _to_nx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(g.vertices())
    nxg.add_edges_from(g.edges())
    return nxg


class TestKTruss:
    def test_k_must_be_at_least_two(self):
        with pytest.raises(GraphError):
            k_truss(AdjacencyGraph(), 1)

    def test_triangle_is_3_truss(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 1)])
        t = k_truss(g, 3)
        assert set(t.vertices()) == {1, 2, 3}

    def test_tree_has_no_3_truss(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 4)])
        assert k_truss(g, 3).num_vertices == 0

    def test_k4_is_4_truss(self):
        g = AdjacencyGraph(
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (4, 5)]
        )
        t = k_truss(g, 4)
        assert set(t.vertices()) == {1, 2, 3, 4}

    def test_matches_networkx_on_paper_graph(self):
        g = paper_social_graph()
        for k in (3, 4, 5):
            ours = k_truss(g, k)
            theirs = nx.k_truss(_to_nx(g), k)
            assert set(ours.vertices()) == set(theirs.nodes())
            assert ours.num_edges == theirs.number_of_edges()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 200), st.integers(3, 5))
    def test_matches_networkx_random(self, seed, k):
        g = random_graph(14, 0.35, seed=seed)
        ours = k_truss(g, k)
        theirs = nx.k_truss(_to_nx(g), k)
        assert set(ours.vertices()) == set(theirs.nodes())
        assert ours.num_edges == theirs.number_of_edges()


class TestTrussDecomposition:
    def test_truss_numbers_consistent_with_k_truss(self):
        g = paper_social_graph()
        numbers = truss_decomposition(g)
        for k in (3, 4):
            expected_edges = {
                e for e, tn in numbers.items() if tn >= k
            }
            truss = k_truss(g, k)
            actual_edges = {
                tuple(sorted(e)) for e in truss.edges()
            }
            assert actual_edges == expected_edges

    def test_every_edge_has_a_number(self):
        g = paper_social_graph()
        numbers = truss_decomposition(g)
        assert len(numbers) == g.num_edges
        assert all(tn >= 2 for tn in numbers.values())


class TestKTrussContaining:
    def test_paper_cluster(self):
        g = paper_social_graph()
        t = k_truss_containing(g, [2, 6], 4)
        assert t is not None
        assert {2, 6} <= set(t.vertices())
        assert t.is_connected()

    def test_unreachable_query(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 1)])
        assert k_truss_containing(g, [99], 3) is None

    def test_empty_query_rejected(self):
        with pytest.raises(GraphError):
            k_truss_containing(AdjacencyGraph([(1, 2)]), [], 3)
