"""Core-decomposition and k-core tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import (
    core_decomposition,
    coreness_upper_bound,
    k_core_containing,
    peel_to_k_core,
)

from tests.conftest import paper_social_graph, random_graph


def _to_nx(g: AdjacencyGraph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(g.vertices())
    nxg.add_edges_from(g.edges())
    return nxg


class TestCoreDecomposition:
    def test_triangle(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 1)])
        assert core_decomposition(g) == {1: 2, 2: 2, 3: 2}

    def test_star(self):
        g = AdjacencyGraph([(0, i) for i in range(1, 6)])
        core = core_decomposition(g)
        assert core[0] == 1
        assert all(core[i] == 1 for i in range(1, 6))

    def test_clique_plus_tail(self):
        g = AdjacencyGraph(
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (4, 5), (5, 6)]
        )
        core = core_decomposition(g)
        assert core[1] == core[2] == core[3] == core[4] == 3
        assert core[5] == core[6] == 1

    def test_empty(self):
        assert core_decomposition(AdjacencyGraph()) == {}

    def test_matches_networkx_on_paper_graph(self):
        g = paper_social_graph()
        assert core_decomposition(g) == nx.core_number(_to_nx(g))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500))
    def test_matches_networkx_random(self, seed):
        g = random_graph(20, 0.2, seed=seed)
        assert core_decomposition(g) == nx.core_number(_to_nx(g))


class TestPeelToKCore:
    def test_negative_k_rejected(self):
        with pytest.raises(GraphError):
            peel_to_k_core(AdjacencyGraph(), -1)

    def test_zero_core_is_whole_graph(self):
        g = paper_social_graph()
        assert set(peel_to_k_core(g, 0).vertices()) == set(g.vertices())

    def test_does_not_mutate_input(self):
        g = paper_social_graph()
        n0, m0 = g.num_vertices, g.num_edges
        peel_to_k_core(g, 3)
        assert (g.num_vertices, g.num_edges) == (n0, m0)

    def test_min_degree_invariant(self):
        g = paper_social_graph()
        for k in range(1, 5):
            core = peel_to_k_core(g, k)
            if core.num_vertices:
                assert core.min_degree() >= k

    def test_matches_core_numbers(self):
        g = paper_social_graph()
        numbers = core_decomposition(g)
        for k in range(1, 5):
            core = peel_to_k_core(g, k)
            expected = {v for v, c in numbers.items() if c >= k}
            assert set(core.vertices()) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 300), st.integers(1, 5))
    def test_maximality_random(self, seed, k):
        """No vertex outside the k-core can be added back (maximality)."""
        g = random_graph(18, 0.25, seed=seed)
        core = peel_to_k_core(g, k)
        members = set(core.vertices())
        numbers = core_decomposition(g)
        for v in g.vertices():
            if v not in members:
                assert numbers[v] < k


class TestKCoreContaining:
    def test_paper_example_h93(self):
        """H^9_3 social side: the 3-ĉore containing {v2,v3,v6} is v1..v7
        (before any road filtering)."""
        g = paper_social_graph()
        core = k_core_containing(g, [2, 3, 6], 3)
        assert core is not None
        assert set(core.vertices()) == {1, 2, 3, 4, 5, 6, 7}

    def test_missing_query_vertex(self):
        g = paper_social_graph()
        assert k_core_containing(g, [99], 1) is None

    def test_query_peeled_out(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert k_core_containing(g, [4], 2) is None

    def test_query_split_across_components(self):
        g = AdjacencyGraph(
            [(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4)]
        )
        assert k_core_containing(g, [1, 4], 2) is None
        assert k_core_containing(g, [1, 2], 2) is not None

    def test_empty_query_rejected(self):
        with pytest.raises(GraphError):
            k_core_containing(AdjacencyGraph([(1, 2)]), [], 1)

    def test_result_is_connected_and_contains_query(self):
        g = paper_social_graph()
        core = k_core_containing(g, [2], 2)
        assert core is not None
        assert core.is_connected()
        assert 2 in core
        assert core.min_degree() >= 2


class TestCorenessUpperBound:
    def test_formula_examples(self):
        # n=7, m=15 (paper cluster): bound = (1 + sqrt(9 + 64)) / 2 = 4
        assert coreness_upper_bound(7, 15) >= 3
        assert coreness_upper_bound(0, 0) == 0
        assert coreness_upper_bound(5, 2) == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 400))
    def test_bound_is_valid_random(self, seed):
        g = random_graph(16, 0.3, seed=seed)
        numbers = core_decomposition(g)
        k_max = max(numbers.values(), default=0)
        assert coreness_upper_bound(g.num_vertices, g.num_edges) >= k_max
