"""k-clique substrate tests, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.clique import (
    k_clique_communities,
    k_clique_community_containing,
    k_cliques,
    maximal_cliques,
)

from tests.conftest import paper_social_graph, random_graph


def _to_nx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(g.vertices())
    nxg.add_edges_from(g.edges())
    return nxg


class TestMaximalCliques:
    def test_triangle_plus_edge(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
        cliques = set(maximal_cliques(g))
        assert frozenset({1, 2, 3}) in cliques
        assert frozenset({3, 4}) in cliques

    def test_matches_networkx_on_paper_graph(self):
        g = paper_social_graph()
        ours = set(maximal_cliques(g))
        theirs = {frozenset(c) for c in nx.find_cliques(_to_nx(g))}
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_random(self, seed):
        g = random_graph(12, 0.4, seed=seed)
        ours = set(maximal_cliques(g))
        theirs = {frozenset(c) for c in nx.find_cliques(_to_nx(g))}
        assert ours == theirs


class TestKCliques:
    def test_invalid_k(self):
        with pytest.raises(GraphError):
            k_cliques(AdjacencyGraph(), 0)

    def test_k4_in_paper_graph(self):
        """{v2,v3,v6,v7} is a K4 of Fig. 1(a)."""
        g = paper_social_graph()
        assert frozenset({2, 3, 6, 7}) in k_cliques(g, 4)

    def test_every_k_clique_is_complete(self):
        g = random_graph(11, 0.5, seed=9)
        for clique in k_cliques(g, 3):
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert g.has_edge(u, v)


class TestKCliqueCommunities:
    def test_matches_networkx_percolation(self):
        g = paper_social_graph()
        ours = set(k_clique_communities(g, 3))
        theirs = {
            frozenset(c)
            for c in nx.community.k_clique_communities(_to_nx(g), 3)
        }
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_networkx_random(self, seed, k):
        g = random_graph(12, 0.45, seed=seed + 30)
        ours = set(k_clique_communities(g, k))
        theirs = {
            frozenset(c)
            for c in nx.community.k_clique_communities(_to_nx(g), k)
        }
        assert ours == theirs

    def test_containing_query(self):
        g = paper_social_graph()
        community = k_clique_community_containing(g, [2, 6], 4)
        assert community is not None
        assert {2, 3, 6, 7} <= community
        assert k_clique_community_containing(g, [14], 4) is None

    def test_empty_query_rejected(self):
        with pytest.raises(GraphError):
            k_clique_community_containing(paper_social_graph(), [], 3)
