"""Unit tests for the dynamic adjacency graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph

from tests.conftest import random_graph


class TestBasics:
    def test_empty_graph(self):
        g = AdjacencyGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.min_degree() == 0
        assert g.is_connected()

    def test_add_edge_creates_vertices(self):
        g = AdjacencyGraph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.num_edges == 1

    def test_duplicate_edge_ignored(self):
        g = AdjacencyGraph([(1, 2), (1, 2), (2, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = AdjacencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_degree_and_neighbors(self):
        g = AdjacencyGraph([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.neighbors(1) == {2, 3, 4}
        assert g.degree(2) == 1

    def test_neighbors_missing_vertex(self):
        g = AdjacencyGraph()
        with pytest.raises(GraphError):
            g.neighbors(9)

    def test_remove_edge(self):
        g = AdjacencyGraph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert 1 in g  # vertex survives edge removal

    def test_remove_missing_edge(self):
        g = AdjacencyGraph([(1, 2)])
        with pytest.raises(GraphError):
            g.remove_edge(1, 3)

    def test_remove_vertex(self):
        g = AdjacencyGraph([(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert 1 not in g
        assert g.num_edges == 1
        assert g.neighbors(2) == {3}

    def test_remove_missing_vertex(self):
        g = AdjacencyGraph()
        with pytest.raises(GraphError):
            g.remove_vertex(5)

    def test_edges_yields_each_once(self):
        edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
        g = AdjacencyGraph(edges)
        seen = {frozenset(e) for e in g.edges()}
        assert seen == {frozenset(e) for e in edges}
        assert len(list(g.edges())) == 4

    def test_degree_statistics(self):
        g = AdjacencyGraph([(1, 2), (1, 3), (1, 4), (2, 3)])
        assert g.max_degree() == 3
        assert g.min_degree() == 1
        assert g.average_degree() == pytest.approx(2.0)


class TestDerived:
    def test_copy_is_independent(self):
        g = AdjacencyGraph([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert 3 not in g
        assert g.num_edges == 1 and h.num_edges == 2

    def test_subgraph_induces_edges(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 4), (4, 1)])
        s = g.subgraph([1, 2, 3])
        assert set(s.vertices()) == {1, 2, 3}
        assert s.has_edge(1, 2) and s.has_edge(2, 3)
        assert not s.has_edge(3, 4)
        assert s.num_edges == 2

    def test_subgraph_ignores_unknown_vertices(self):
        g = AdjacencyGraph([(1, 2)])
        s = g.subgraph([1, 2, 99])
        assert set(s.vertices()) == {1, 2}


class TestTraversal:
    def test_component_of(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (5, 6)])
        assert g.component_of(1) == {1, 2, 3}
        assert g.component_of(6) == {5, 6}

    def test_connected_components(self):
        g = AdjacencyGraph([(1, 2), (3, 4), (4, 5)])
        g.add_vertex(9)
        comps = sorted(g.connected_components(), key=len)
        assert [len(c) for c in comps] == [1, 2, 3]

    def test_same_component(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (5, 6)])
        assert g.same_component([1, 3])
        assert not g.same_component([1, 5])
        assert not g.same_component([1, 99])
        assert g.same_component([])

    def test_is_connected(self):
        assert AdjacencyGraph([(1, 2), (2, 3)]).is_connected()
        g = AdjacencyGraph([(1, 2)])
        g.add_vertex(7)
        assert not g.is_connected()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 200), st.integers(0, 10_000))
def test_random_graph_edge_count_consistency(n_seed, e_seed):
    """num_edges equals the number of enumerated edges after random ops."""
    g = random_graph(12, 0.3, seed=n_seed * 131 + e_seed)
    assert g.num_edges == len(list(g.edges()))
    assert g.num_edges == sum(g.degree(v) for v in g.vertices()) // 2


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100))
def test_components_partition_vertices(seed):
    g = random_graph(15, 0.12, seed=seed)
    comps = g.connected_components()
    union = set()
    for c in comps:
        assert not (union & c), "components must be disjoint"
        union |= c
    assert union == set(g.vertices())
