"""Adapted BBS traversal tests (Section IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.halfspace import score
from repro.geometry.region import PreferenceRegion
from repro.spatial.bbs import bbs_order
from repro.spatial.rtree import RTree


@pytest.fixture
def region():
    return PreferenceRegion([0.1, 0.2], [0.5, 0.4])


class TestBBSOrder:
    def test_emits_every_payload_once(self, region):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 10, size=(80, 3))
        t = RTree(pts, capacity=4)
        out = [payload for payload, _s in bbs_order(t, region)]
        assert sorted(out) == list(range(80))

    def test_scores_non_increasing(self, region):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, size=(100, 3))
        t = RTree(pts, capacity=8)
        pivot = region.pivot()
        emitted = list(bbs_order(t, region))
        for (p1, s1), (p2, s2) in zip(emitted, emitted[1:]):
            assert s1 >= s2 - 1e-9
        for payload, s in emitted:
            assert s == pytest.approx(score(pts[payload], pivot))

    def test_deterministic(self, region):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 10, size=(60, 3))
        t1 = RTree(pts, capacity=4)
        t2 = RTree(pts, capacity=4)
        assert list(bbs_order(t1, region)) == list(bbs_order(t2, region))

    def test_empty_tree(self, region):
        t = RTree(np.zeros((0, 3)))
        assert list(bbs_order(t, region)) == []

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2_000))
    def test_order_is_global_sort(self, seed):
        """BBS emission equals sorting by pivot score (the heap invariant)."""
        region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(40, 3))
        t = RTree(pts, capacity=4)
        emitted = [s for _p, s in bbs_order(t, region)]
        assert emitted == sorted(emitted, reverse=True)
