"""R-tree tests: STR packing invariants and box-query correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.spatial.rtree import RTree


def _check_mbbs(node):
    """Every node's MBB must enclose its children/entries (recursively)."""
    if node.is_leaf:
        for p, _payload in node.entries:
            assert np.all(p >= node.lower - 1e-12)
            assert np.all(p <= node.upper + 1e-12)
    else:
        for child in node.children:
            assert np.all(child.lower >= node.lower - 1e-12)
            assert np.all(child.upper <= node.upper + 1e-12)
            _check_mbbs(child)


class TestConstruction:
    def test_empty(self):
        t = RTree(np.zeros((0, 3)))
        assert t.root is None
        assert list(t.all_entries()) == []

    def test_capacity_validation(self):
        with pytest.raises(GeometryError):
            RTree(np.zeros((4, 2)), capacity=1)

    def test_payload_length_validation(self):
        with pytest.raises(GeometryError):
            RTree(np.zeros((4, 2)), payloads=[1, 2, 3])

    def test_single_point(self):
        t = RTree([[1.0, 2.0]], payloads=["a"])
        entries = list(t.all_entries())
        assert len(entries) == 1
        assert entries[0][1] == "a"

    @pytest.mark.parametrize("n", [5, 33, 150, 1000])
    def test_all_entries_present(self, n):
        rng = np.random.default_rng(n)
        pts = rng.uniform(0, 10, size=(n, 3))
        t = RTree(pts, capacity=8)
        assert t.size == n
        assert len(list(t.all_entries())) == n
        _check_mbbs(t.root)

    def test_capacity_respected(self):
        rng = np.random.default_rng(1)
        t = RTree(rng.uniform(0, 1, size=(500, 2)), capacity=10)

        def check(node):
            if node.is_leaf:
                assert len(node.entries) <= 10
            else:
                assert len(node.children) <= 10
                for c in node.children:
                    check(c)

        check(t.root)


class TestQueryBox:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(120, 3))
        t = RTree(pts, capacity=6)
        lo = rng.uniform(0, 5, size=3)
        hi = lo + rng.uniform(0, 5, size=3)
        expected = {
            i
            for i in range(len(pts))
            if np.all(pts[i] >= lo) and np.all(pts[i] <= hi)
        }
        actual = {payload for _p, payload in t.query_box(lo, hi)}
        assert actual == expected

    def test_empty_box(self):
        rng = np.random.default_rng(0)
        t = RTree(rng.uniform(0, 1, size=(50, 2)))
        assert list(t.query_box([5, 5], [6, 6])) == []
