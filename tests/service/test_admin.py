"""The zero-downtime admin surface: /v1/admin/reload and /v1/admin/resize."""

import http.client
import json

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import QueryError, ReloadError
from repro.pool import PoolExecutor, WorkerPool
from repro.road.network import SpatialPoint
from repro.service import MACService, ServiceClient
from repro.service.executor import EngineExecutor
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork
from repro.store import save_snapshot, snapshot_digest

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(**knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


def raw_post(port: int, path: str, body: dict | None) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body).encode()
        conn.request(
            "POST", path, body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


@pytest.fixture(scope="module")
def network():
    return make_network()


@pytest.fixture(scope="module")
def snapshot(network, tmp_path_factory):
    path = tmp_path_factory.mktemp("admin") / "snap"
    save_snapshot(MACEngine(network), path)
    return str(path)


class TestPoolAdmin:
    @pytest.fixture
    def service(self, network):
        with WorkerPool(MACEngine(network), 2) as pool:
            svc = MACService(executor=PoolExecutor(pool), port=0)
            with svc:
                yield svc

    @pytest.fixture
    def client(self, service):
        with ServiceClient(port=service.port) as c:
            yield c

    def test_reload_swaps_the_fleet(self, service, client, snapshot):
        before = client.healthz()["snapshot"]
        assert before["generation"] == 0 and before["source"] is None

        summary = client.reload(snapshot)
        assert summary["generation"] == 1
        assert summary["workers"] == 2
        assert summary["index_digest"] == snapshot_digest(snapshot)

        health = client.healthz()
        assert health["status"] == "ok"
        assert health["snapshot"] == {
            "fingerprint": summary["fingerprint"],
            "generation": 1,
            "source": snapshot,
            "index_digest": summary["index_digest"],
            "delta_seq": 0,
        }
        assert all(
            w["generation"] == 1
            for w in health["workers"]["workers"]
        )
        assert client.search(make_request()).partitions
        assert client.metrics()["service"]["reloads"] == 1

    def test_reload_without_any_snapshot_is_400(self, client):
        # The service booted without --snapshot, so a bare reload has
        # nothing to reload — a client error, not a server fault.
        with pytest.raises(QueryError, match="no snapshot to reload"):
            client.reload()

    def test_reload_bad_path_is_409_fleet_untouched(self, service, client):
        before = client.healthz()["snapshot"]
        status, payload = raw_post(
            service.port, "/v1/admin/reload",
            {"snapshot": "/nonexistent/snapshot"},
        )
        assert status == 409
        assert payload["error"]["type"] == "ReloadError"
        with pytest.raises(ReloadError, match="rolled back"):
            client.reload("/nonexistent/snapshot")
        assert client.healthz()["snapshot"] == before
        assert client.search(make_request()).partitions

    def test_resize_grows_and_shrinks(self, client):
        grown = client.resize(3)
        assert grown["workers"] == 3 and grown["previous"] == 2
        assert client.healthz()["workers"]["total"] == 3
        shrunk = client.resize(2)
        assert shrunk["retired"] == 1
        assert client.healthz()["workers"]["total"] == 2
        assert client.search(make_request()).partitions
        assert client.metrics()["service"]["resizes"] == 2

    def test_resize_bad_workers_is_400(self, service, client):
        with pytest.raises(QueryError, match="positive integer"):
            client.resize(0)
        for body in ({}, {"workers": "three"}, {"workers": True}):
            status, payload = raw_post(
                service.port, "/v1/admin/resize", body
            )
            assert status == 400
            assert payload["error"]["type"] == "QueryError"

    def test_admin_endpoints_accept_empty_bodies(self, service, snapshot):
        # POST with no body at all is a valid bare reload/resize probe:
        # admin bodies are optional, unlike query bodies.
        status, payload = raw_post(
            service.port, "/v1/admin/reload", {"snapshot": snapshot}
        )
        assert status == 200 and payload["ok"]
        status, payload = raw_post(service.port, "/v1/admin/resize", None)
        assert status == 400  # missing "workers" — parsed, then rejected
        assert payload["error"]["type"] == "QueryError"


class TestThreadsAdmin:
    @pytest.fixture
    def service(self, network, snapshot):
        engine = MACEngine.load(snapshot, network)
        svc = MACService(
            executor=EngineExecutor(
                engine, source=snapshot,
                index_digest=snapshot_digest(snapshot),
            ),
            port=0,
            snapshot_path=snapshot,
        )
        with svc:
            yield svc

    @pytest.fixture
    def client(self, service):
        with ServiceClient(port=service.port) as c:
            yield c

    def test_bare_reload_uses_the_boot_snapshot(self, client, snapshot):
        before = client.healthz()["snapshot"]
        assert before["source"] == snapshot
        summary = client.reload()
        assert summary["generation"] == before["generation"] + 1
        assert summary["workers"] == 0  # no fleet: one engine swap
        assert client.healthz()["snapshot"]["generation"] == 1
        assert client.search(make_request()).partitions

    def test_resize_has_no_fleet_to_resize(self, client):
        with pytest.raises(ReloadError, match="no worker fleet"):
            client.resize(4)
