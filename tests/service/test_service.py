"""Live-server tests: a background `MACService` driven by `ServiceClient`."""

import http.client
import json
import threading
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import (
    DeadlineExceeded,
    QueryError,
    ServiceError,
    ServiceOverloaded,
)
from repro.road.network import SpatialPoint
from repro.service import MACService, ServiceClient
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(k: int = 3, **knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), k, 9.0, REGION, **knobs)


class SlowEngine:
    """Engine wrapper that stalls requests labelled ``"slow"``."""

    def __init__(self, engine: MACEngine, delay: float) -> None:
        self._engine = engine
        self.delay = delay

    def search(self, request):
        if request.label == "slow":
            time.sleep(self.delay)
        return self._engine.search(request)

    def __getattr__(self, name):
        return getattr(self._engine, name)


@pytest.fixture(scope="module")
def service():
    svc = MACService(
        MACEngine(make_network()),
        port=0, max_concurrency=2, queue_depth=8,
    )
    with svc:
        yield svc


@pytest.fixture
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol_version"] == 3
        assert health["admission"]["capacity"] == 2

    def test_search_matches_in_process_engine(self, client):
        request = make_request(algorithm="global")
        served = client.search(request)
        local = MACEngine(make_network()).search(request)
        assert served.htk_vertices == local.htk_vertices
        assert [sorted(p.best) for p in served.partitions] == \
            [sorted(e.best.members) for e in local.partitions]

    def test_repeat_search_hits_result_cache(self, client):
        request = make_request(algorithm="local", label="warmup")
        client.search(request)
        again = client.search(request)
        assert again.extra["engine"]["cache"] == {"result": "hit"}

    def test_batch_preserves_order(self, client):
        requests = [
            make_request(algorithm="global", label="g"),
            make_request(algorithm="local", label="l"),
            make_request(k=9, label="infeasible"),
        ]
        results = client.search_batch(requests, workers=2)
        assert [r.extra["engine"]["label"] for r in results] == \
            ["g", "l", "infeasible"]
        assert results[2].is_empty

    def test_batch_item_error_raises_typed_by_default(self, client):
        good = make_request(algorithm="local")
        # A partition budget of 1 makes the global search raise QueryError.
        bad = make_request(algorithm="global", max_partitions=1)
        with pytest.raises(QueryError, match="partition budget"):
            client.search_batch([good, bad])

    def test_batch_return_errors_collects_partial_results(self, client):
        good = make_request(algorithm="local")
        bad = make_request(algorithm="global", max_partitions=1)
        out = client.search_batch([good, bad], return_errors=True)
        assert not out[0].is_empty
        assert isinstance(out[1], QueryError)

    def test_explain(self, client):
        plan = client.explain(make_request(algorithm="global"))
        assert plan.searcher == "GS-NC"
        assert "plan for" in plan.summary()
        # explain after the earlier searches sees the cached stages
        assert plan.cached["filter"] is True

    def test_metrics_counters(self, client):
        before = client.metrics()
        client.search(make_request(algorithm="local"))
        after = client.metrics()
        assert after["service"]["served"] == before["service"]["served"] + 1
        assert after["engine"]["searches"] >= before["engine"]["searches"] + 1
        assert after["service"]["rejected"] >= 0
        assert set(after["engine"]["caches"]) == {
            "filter", "core", "dominance", "result",
        }


class TestDeadlines:
    def test_deadline_returns_typed_error_not_a_hang(self, client, service):
        rejected_before = service.engine.telemetry().deadline_exceeded
        with pytest.raises(DeadlineExceeded, match="deadline"):
            client.search(
                make_request(algorithm="global", deadline=1e-7, label="doom")
            )
        metrics = client.metrics()
        assert metrics["service"]["deadline_exceeded"] >= 1
        # the engine may or may not have been reached before the queue
        # check fired; either way nothing hung and the counter moved
        assert service.engine.telemetry().deadline_exceeded >= rejected_before

    def test_batch_deadline_is_per_item(self, client):
        out = client.search_batch(
            [
                make_request(algorithm="local", label="ok"),
                make_request(algorithm="global", deadline=1e-7, label="doom"),
            ],
            return_errors=True,
        )
        assert not out[0].is_empty
        assert isinstance(out[1], DeadlineExceeded)

    def test_pool_queue_wait_counts_against_budget(self):
        """A budgeted search queued behind a batch's pool items must
        fail typed — the semaphore can be free while the pool is full."""
        engine = SlowEngine(MACEngine(make_network()), delay=1.2)
        svc = MACService(engine, port=0, max_concurrency=2, queue_depth=8)
        with svc:
            batch_done: dict = {}

            def batch_worker() -> None:
                with ServiceClient(port=svc.port) as c:
                    batch_done["results"] = c.search_batch(
                        [
                            make_request(label="slow", algorithm="local"),
                            make_request(
                                k=2, label="slow", algorithm="local"
                            ),
                        ],
                        workers=2,
                    )

            thread = threading.Thread(target=batch_worker)
            thread.start()
            time.sleep(0.3)  # the batch now occupies both pool workers
            with ServiceClient(port=svc.port) as c:
                with pytest.raises(DeadlineExceeded):
                    c.search(make_request(algorithm="local", deadline=0.2))
            thread.join(timeout=15)
            assert len(batch_done["results"]) == 2

    def test_default_deadline_is_stamped_server_side(self):
        svc = MACService(
            MACEngine(make_network()),
            port=0, max_concurrency=1, default_deadline=1e-7,
        )
        with svc, ServiceClient(port=svc.port) as c:
            with pytest.raises(DeadlineExceeded):
                c.search(make_request(algorithm="global"))


class TestAdmissionControl:
    def test_queue_overflow_yields_429_retry_after(self):
        svc = MACService(
            MACEngine(make_network(), result_cache_size=0),
            port=0, max_concurrency=1, queue_depth=0,
        )
        with svc:
            served, rejected = [], []

            def worker(i):
                with ServiceClient(port=svc.port) as c:
                    try:
                        served.append(
                            c.search(make_request(algorithm="global"))
                        )
                    except ServiceOverloaded as exc:
                        rejected.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # capacity 1 + queue 0: at least one served, at least one
            # shed, every shed response carries a backoff hint
            assert served and rejected
            assert all(exc.retry_after >= 1.0 for exc in rejected)
            with ServiceClient(port=svc.port) as c:
                assert c.metrics()["service"]["rejected"] == len(rejected)

    def test_bad_config_is_typed(self):
        with pytest.raises(ServiceError, match="max_concurrency"):
            MACService(MACEngine(make_network()), max_concurrency=0)
        with pytest.raises(ServiceError, match="queue_depth"):
            MACService(MACEngine(make_network()), queue_depth=-1)


class TestHTTPEdges:
    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError, match="unknown endpoint"):
            client._call("GET", "/v1/nope")

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError, match="expects POST"):
            client._call("GET", "/v1/search")

    def test_invalid_json_body_is_400(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port)
        try:
            conn.request(
                "POST", "/v1/search", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "QueryError"
        assert "not valid JSON" in payload["error"]["message"]

    def test_missing_body_is_400(self, client):
        with pytest.raises(QueryError, match="JSON object"):
            client._call("POST", "/v1/search")

    def test_validation_error_is_typed_query_error(self, client):
        with pytest.raises(QueryError, match="missing required field"):
            client._call("POST", "/v1/search", {"k": 3})

    def test_client_rejects_non_request(self, client):
        with pytest.raises(ServiceError, match="MACRequest"):
            client.search({"query": [1]})

    def test_unreachable_server_is_typed(self):
        with ServiceClient(port=1, timeout=1.0) as c:
            with pytest.raises(ServiceError, match="cannot reach"):
                c.healthz()

    def test_client_survives_server_restart_between_calls(self):
        engine = MACEngine(make_network())
        svc1 = MACService(engine, port=0, max_concurrency=1)
        svc1.start_background()
        port = svc1.port
        client = ServiceClient(port=port)
        try:
            assert client.healthz()["status"] == "ok"
            svc1.shutdown()
            svc2 = MACService(engine, port=port, max_concurrency=1)
            svc2.start_background()
            try:
                # the stale keep-alive connection is retried once
                assert client.healthz()["status"] == "ok"
            finally:
                svc2.shutdown()
        finally:
            client.close()


class TestGracefulShutdown:
    def test_in_flight_request_is_drained_on_shutdown(self):
        """stop() must let a mid-request handler deliver its response."""
        engine = SlowEngine(MACEngine(make_network()), delay=1.0)
        svc = MACService(engine, port=0, max_concurrency=2)
        svc.start_background()
        outcome: dict = {}

        def worker() -> None:
            with ServiceClient(port=svc.port) as c:
                outcome["result"] = c.search(
                    make_request(label="slow", algorithm="local")
                )

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.4)  # the request is now executing on the pool
        svc.shutdown()
        thread.join(timeout=10)
        assert "result" in outcome
        assert not outcome["result"].is_empty


class TestConcurrentClients:
    def test_parallel_mixed_load_matches_reference(self, service):
        requests = [
            make_request(algorithm="global", label="g"),
            make_request(algorithm="local", label="l"),
            make_request(k=2, algorithm="local", label="k2"),
            make_request(j=2, problem="topj", algorithm="global", label="j2"),
        ]
        reference = {
            r.label: [sorted(e.best.members) for e in
                      MACEngine(make_network()).search(r).partitions]
            for r in requests
        }
        failures: list = []

        def worker(worker_id):
            try:
                with ServiceClient(port=service.port) as c:
                    for request in requests:
                        got = c.search(request)
                        want = reference[request.label]
                        if [sorted(p.best) for p in got.partitions] != want:
                            failures.append((worker_id, request.label))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append((worker_id, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
