"""Wire-codec tests: requests, results, plans, telemetry, errors."""

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import (
    DeadlineExceeded,
    QueryError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    SnapshotError,
)
from repro.service.protocol import (
    error_from_wire,
    error_to_wire,
    plan_from_wire,
    plan_to_wire,
    request_from_wire,
    request_to_wire,
    result_from_wire,
    result_to_wire,
    telemetry_to_wire,
)


@pytest.fixture
def region():
    return PreferenceRegion([0.1, 0.2], [0.5, 0.4])


class TestRequestWire:
    def test_round_trip_minimal(self, region):
        request = MACRequest.make((2, 3, 6), 3, 9.0, region)
        wire = request_to_wire(request)
        assert wire == {
            "query": [2, 3, 6],
            "k": 3,
            "t": 9.0,
            "region": {"lows": [0.1, 0.2], "highs": [0.5, 0.4]},
        }
        assert request_from_wire(wire) == request

    def test_round_trip_full(self, region):
        request = MACRequest.make(
            (6, 3, 2), 3, 9.0, region,
            j=2, problem="topj", algorithm="global", use_gtree=True,
            backend="flat", max_partitions=100, strategy="eq4",
            max_candidates=5, refinement="envelope", certification="chain",
            time_budget=10.0, deadline=2.5, label="x",
        )
        restored = request_from_wire(request_to_wire(request))
        assert restored == request
        # identity-excluded fields still travel
        assert restored.deadline == 2.5
        assert restored.label == "x"

    def test_json_round_trip_is_stable(self, region):
        import json

        request = MACRequest.make((2, 3), 4, 120.0, region, j=3,
                                  problem="topj", deadline=1.0)
        dumped = json.dumps(request_to_wire(request))
        assert request_from_wire(json.loads(dumped)) == request

    @pytest.mark.parametrize("broken, complaint", [
        ("not a dict", "JSON object"),
        ({"k": 3}, "missing required field"),
        ({"query": 5, "k": 3, "t": 1.0,
          "region": {"lows": [0.2], "highs": [0.3]}}, "array of user ids"),
        ({"query": [1], "k": 3, "t": 1.0, "region": [0.1, 0.5]},
         "'lows' and 'highs'"),
        ({"query": [1], "k": 3, "t": 1.0,
          "region": {"lows": [0.2], "highs": [0.3]}, "nope": 1},
         "unknown request field"),
    ])
    def test_malformed_requests_are_typed(self, broken, complaint):
        with pytest.raises(QueryError, match=complaint):
            request_from_wire(broken)

    def test_bad_field_values_stay_typed(self):
        with pytest.raises(ReproError):
            request_from_wire({
                "query": [1], "k": "three", "t": 1.0,
                "region": {"lows": [0.2], "highs": [0.3]},
            })
        with pytest.raises(ReproError):
            request_from_wire({
                "query": [1], "k": 3, "t": 1.0,
                "region": {"lows": ["a"], "highs": [0.3]},
            })


class TestResultWire:
    def test_round_trip(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = MACRequest.make(
            (2, 3, 6), 3, 9.0, paper_region,
            j=2, problem="topj", algorithm="global",
        )
        result = engine.search(request)
        wire = result_to_wire(result)
        view = result_from_wire(wire)
        assert view.htk_vertices == result.htk_vertices
        assert view.htk_edges == result.htk_edges
        assert not view.is_empty
        assert len(view.partitions) == len(result.partitions)
        for entry, got in zip(result.partitions, view.partitions):
            assert [frozenset(c.members) for c in entry.communities] == \
                list(got.communities)
            assert got.best == frozenset(entry.best.members)
        assert view.communities() == {
            frozenset(c.members) for c in result.communities()
        }
        assert view.nc_communities() == {
            frozenset(c.members) for c in result.nc_communities()
        }
        assert view.extra["engine"]["algorithm"] == "global"
        assert view.stats["partitions"] == result.stats.partitions

    def test_empty_result(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        result = engine.search(
            MACRequest.make((2, 3, 6), 9, 9.0, paper_region)
        )
        view = result_from_wire(result_to_wire(result))
        assert view.is_empty and view.communities() == set()

    def test_malformed_payload(self):
        with pytest.raises(ServiceError):
            result_from_wire("nope")
        with pytest.raises(ServiceError):
            result_from_wire({"partitions": [{"weight": "x"}]})


class TestPlanWire:
    def test_round_trip(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = MACRequest.make((2, 3, 6), 3, 9.0, paper_region)
        engine.warm(request)
        plan = engine.explain(request)
        view = plan_from_wire(plan_to_wire(plan))
        assert view.searcher == plan.searcher
        assert view.algorithm == plan.algorithm
        assert view.cached == plan.cached
        assert view.htk_vertices == plan.htk_vertices
        assert view.summary() == plan.summary()

    def test_malformed_payload(self):
        with pytest.raises(ServiceError):
            plan_from_wire({"problem": "nc"})


class TestTelemetryWire:
    def test_counters_survive(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        request = MACRequest.make((2, 3, 6), 3, 9.0, paper_region)
        engine.search(request)
        engine.search(request)
        wire = telemetry_to_wire(engine.telemetry())
        assert wire["searches"] == 2
        assert wire["caches"]["result"]["hits"] == 1
        assert wire["cache_hits"] == engine.telemetry().hits
        assert set(wire["stage_seconds"]) == {
            "filter", "core", "dominance", "search",
        }
        assert wire["deadline_exceeded"] == 0


class TestErrorWire:
    @pytest.mark.parametrize("exc", [
        QueryError("bad k"),
        DeadlineExceeded("too slow"),
        SnapshotError("stale"),
        ServiceError("transport"),
    ])
    def test_typed_round_trip(self, exc):
        rebuilt = error_from_wire(error_to_wire(exc))
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)

    def test_overloaded_carries_retry_after(self):
        wire = error_to_wire(ServiceOverloaded("full", retry_after=7.5))
        assert wire["retry_after"] == 7.5
        rebuilt = error_from_wire(wire)
        assert isinstance(rebuilt, ServiceOverloaded)
        assert rebuilt.retry_after == 7.5

    def test_unknown_types_degrade_to_service_error(self):
        rebuilt = error_from_wire({"type": "Exotic", "message": "m"})
        assert isinstance(rebuilt, ServiceError)
        assert "Exotic" in str(rebuilt)
        assert isinstance(error_from_wire(None), ServiceError)

    def test_non_repro_exception_is_not_impersonated(self):
        wire = error_to_wire(ValueError("x"))
        assert wire["type"] == "ServiceError"
