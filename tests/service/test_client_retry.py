"""Client-side retries: connection resets and 429 back-pressure."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import ServiceError, ServiceOverloaded
from repro.service import ServiceClient


class ResetThenServe:
    """Raw HTTP stub: RSTs the first ``resets`` connections mid-response.

    A worker-process crash inside a pool-backed service looks like this
    from the client: the request went out, then the connection dies
    with ECONNRESET before any bytes of the response arrive.
    """

    def __init__(self, resets: int = 1) -> None:
        self.resets = resets
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            if self.connections <= self.resets:
                # SO_LINGER with zero timeout turns close() into RST:
                # the client sees ECONNRESET while awaiting the reply.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                conn.close()
                continue
            body = json.dumps({"status": "ok"}).encode()
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body
            )
            conn.close()

    def close(self) -> None:
        self._sock.close()


class TestResetRetry:
    def test_reset_mid_response_is_replayed_once(self):
        server = ResetThenServe(resets=1)
        try:
            with ServiceClient(port=server.port) as client:
                assert client.healthz() == {"status": "ok"}
            assert server.connections == 2
        finally:
            server.close()

    def test_second_reset_surfaces_typed(self):
        server = ResetThenServe(resets=2)
        try:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError, match="lost|closed"):
                    client.healthz()
            assert server.connections == 2  # retried once, not forever
        finally:
            server.close()

    def test_opt_out_disables_the_replay(self):
        server = ResetThenServe(resets=1)
        try:
            client = ServiceClient(port=server.port, retry_resets=False)
            with pytest.raises(ServiceError, match="lost|closed"):
                client.healthz()
            assert server.connections == 1
            client.close()
        finally:
            server.close()


class OverloadThenServe:
    """Raw HTTP stub: answers 429 (typed ``ServiceOverloaded`` payload
    with a ``Retry-After`` hint) for the first ``rejections`` requests,
    then 200 — the shape of a server shedding a load spike."""

    def __init__(self, rejections: int, retry_after: float = 0.05) -> None:
        self.rejections = rejections
        self.retry_after = retry_after
        self.requests = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            self.requests += 1
            if self.requests <= self.rejections:
                body = json.dumps({
                    "error": {
                        "type": "ServiceOverloaded",
                        "message": "server is at capacity",
                        "retry_after": self.retry_after,
                    }
                }).encode()
                status = b"429 Too Many Requests"
            else:
                body = json.dumps({"status": "ok"}).encode()
                status = b"200 OK"
            conn.sendall(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body
            )
            conn.close()

    def close(self) -> None:
        self._sock.close()


class TestOverloadRetry:
    def test_default_is_fail_fast(self):
        server = OverloadThenServe(rejections=1)
        try:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceOverloaded):
                    client.healthz()
            assert server.requests == 1
        finally:
            server.close()

    def test_bounded_retry_absorbs_the_spike(self):
        server = OverloadThenServe(rejections=2, retry_after=0.05)
        try:
            client = ServiceClient(
                port=server.port, retry_overloaded=2,
                retry_backoff=0.01,
            )
            started = time.monotonic()
            assert client.healthz() == {"status": "ok"}
            # Two sleeps happened, each at least the jittered-down
            # server hint (0.75 * 0.05 each).
            assert time.monotonic() - started >= 2 * 0.75 * 0.05
            assert server.requests == 3
            client.close()
        finally:
            server.close()

    def test_budget_exhausted_surfaces_typed(self):
        server = OverloadThenServe(rejections=100, retry_after=0.01)
        try:
            client = ServiceClient(
                port=server.port, retry_overloaded=2,
                retry_backoff=0.01,
            )
            with pytest.raises(ServiceOverloaded, match="capacity"):
                client.healthz()
            assert server.requests == 3  # 1 attempt + 2 retries, bounded
            client.close()
        finally:
            server.close()

    def test_backoff_is_capped(self):
        server = OverloadThenServe(rejections=1, retry_after=60.0)
        try:
            client = ServiceClient(
                port=server.port, retry_overloaded=1,
                retry_backoff=0.01, retry_backoff_cap=0.05,
            )
            started = time.monotonic()
            assert client.healthz() == {"status": "ok"}
            # The 60s server hint is clamped by the client-side cap
            # (plus at most +25% jitter).
            assert time.monotonic() - started < 5.0
        finally:
            server.close()

    def test_negative_budget_is_typed(self):
        with pytest.raises(ServiceError, match="retry_overloaded"):
            ServiceClient(retry_overloaded=-1)
