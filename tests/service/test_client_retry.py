"""Client-side replay of connection resets (the worker-crash signature)."""

import json
import socket
import struct
import threading

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient


class ResetThenServe:
    """Raw HTTP stub: RSTs the first ``resets`` connections mid-response.

    A worker-process crash inside a pool-backed service looks like this
    from the client: the request went out, then the connection dies
    with ECONNRESET before any bytes of the response arrive.
    """

    def __init__(self, resets: int = 1) -> None:
        self.resets = resets
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            if self.connections <= self.resets:
                # SO_LINGER with zero timeout turns close() into RST:
                # the client sees ECONNRESET while awaiting the reply.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                conn.close()
                continue
            body = json.dumps({"status": "ok"}).encode()
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body
            )
            conn.close()

    def close(self) -> None:
        self._sock.close()


class TestResetRetry:
    def test_reset_mid_response_is_replayed_once(self):
        server = ResetThenServe(resets=1)
        try:
            with ServiceClient(port=server.port) as client:
                assert client.healthz() == {"status": "ok"}
            assert server.connections == 2
        finally:
            server.close()

    def test_second_reset_surfaces_typed(self):
        server = ResetThenServe(resets=2)
        try:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError, match="lost|closed"):
                    client.healthz()
            assert server.connections == 2  # retried once, not forever
        finally:
            server.close()

    def test_opt_out_disables_the_replay(self):
        server = ResetThenServe(resets=1)
        try:
            client = ServiceClient(port=server.port, retry_resets=False)
            with pytest.raises(ServiceError, match="lost|closed"):
                client.healthz()
            assert server.connections == 1
            client.close()
        finally:
            server.close()
