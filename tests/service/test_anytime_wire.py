"""Anytime results across the wire: codec round-trip of partial flags
and progress, and a GS-T query that formerly died with
``DeadlineExceeded`` coming back partial from the pool tier."""

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import DeadlineExceeded
from repro.pool import PoolExecutor, WorkerPool
from repro.road.network import SpatialPoint
from repro.service import MACService, ServiceClient
from repro.service.protocol import (
    request_from_wire,
    request_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(**knobs) -> MACRequest:
    knobs.setdefault("algorithm", "global")
    return MACRequest.make((2, 3, 6), 3, 9.0, REGION, **knobs)


class TestCodecRoundTrip:
    def test_request_carries_anytime(self):
        req = make_request(deadline=0.5, anytime=True)
        wire = request_to_wire(req)
        assert wire["anytime"] is True
        back = request_from_wire(wire)
        assert back.anytime is True
        assert back.deadline == 0.5

    def test_exact_request_omits_anytime(self):
        assert "anytime" not in request_to_wire(make_request())

    def test_partial_result_round_trips(self):
        engine = MACEngine(make_network(), result_cache_size=0)
        engine.warm(make_request(problem="topj", j=3))
        result = engine.search(make_request(
            problem="topj", j=3, deadline=1e-9, anytime=True,
        ))
        assert result.partial is True
        back = result_from_wire(result_to_wire(result))
        assert back.partial is True
        assert back.progress == result.progress
        assert back.partitions
        for ours, theirs in zip(result.partitions, back.partitions):
            assert theirs.partial == tuple(
                c.partial for c in ours.communities
            )
            assert theirs.any_partial
        assert back.communities() == {
            frozenset(c.members)
            for e in result.partitions for c in e.communities
        }

    def test_exact_result_wire_form_is_unchanged(self):
        engine = MACEngine(make_network())
        wire = result_to_wire(engine.search(make_request()))
        assert "partial" not in wire
        assert "progress" not in wire
        assert all("partial" not in p for p in wire["partitions"])
        back = result_from_wire(wire)
        assert back.partial is False
        assert back.progress == {}
        assert not any(p.any_partial for p in back.partitions)


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(MACEngine(make_network()), 2) as p:
        yield p


@pytest.fixture(scope="module")
def service(pool):
    svc = MACService(
        executor=PoolExecutor(pool),
        port=0, max_concurrency=4, queue_depth=8,
    )
    with svc:
        yield svc


@pytest.fixture
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


class TestPoolTier:
    def test_gst_deadline_raises_typed_without_anytime(self, client):
        with pytest.raises(DeadlineExceeded):
            client.search(make_request(
                problem="topj", j=3, deadline=1e-9,
            ))

    def test_gst_comes_back_partial_with_anytime(self, client):
        result = client.search(make_request(
            problem="topj", j=3, deadline=1e-9, anytime=True,
        ))
        assert result.partial is True
        assert result.progress
        # Whatever came back is feasible: every community contains Q.
        for entry in result.partitions:
            for members in entry.communities:
                assert {2, 3, 6} <= set(members)

    def test_generous_anytime_budget_is_exact(self, client):
        soft = client.search(make_request(deadline=60.0, anytime=True))
        exact = client.search(make_request())
        assert soft.partial is False
        assert soft.communities() == exact.communities()

    def test_plan_crosses_with_search_fields(self, client):
        plan = client.explain(make_request(algorithm="local"))
        assert plan.search_backend in ("flat", "python")
        assert plan.frontier == "push-eq3"

    def test_metrics_count_partials(self, client):
        client.search(make_request(
            problem="topj", j=2, deadline=1e-9, anytime=True,
        ))
        tel = client.metrics()["engine"]
        assert tel["partial_results"] >= 1
