"""Deadline-aware shedding and brownout degradation under pressure."""

import threading
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import (
    DeadlineExceeded,
    ServiceError,
    ServiceOverloaded,
)
from repro.road.network import SpatialPoint
from repro.service import MACService, ServiceClient
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(k: int = 3, **knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), k, 9.0, REGION, **knobs)


def wait_until(predicate, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached before timeout")


class CountingEngine:
    """Engine wrapper that records which labels reached ``search``
    and stalls requests labelled ``"slow"``."""

    def __init__(self, engine: MACEngine, delay: float = 0.0) -> None:
        self._engine = engine
        self.delay = delay
        self.labels: list = []

    def search(self, request):
        self.labels.append(request.label)
        if request.label == "slow":
            time.sleep(self.delay)
        return self._engine.search(request)

    def __getattr__(self, name):
        return getattr(self._engine, name)


def occupy_slots(port: int, count: int) -> list:
    """Fill ``count`` compute slots with slow searches; returns threads."""
    threads = []
    for i in range(count):
        def run(k=2 + i):
            with ServiceClient(port=port) as c:
                c.search(make_request(k=k, label="slow", algorithm="local"))
        t = threading.Thread(target=run)
        t.start()
        threads.append(t)
    return threads


class TestQueueExpiryShedding:
    def test_expired_in_queue_never_reaches_a_worker(self):
        """A request whose deadline died in the admission queue is
        failed typed before dispatch — the engine never sees it."""
        engine = CountingEngine(MACEngine(make_network()), delay=1.0)
        svc = MACService(engine, port=0, max_concurrency=1, queue_depth=8)
        with svc:
            threads = occupy_slots(svc.port, 1)
            time.sleep(0.3)  # the slow search now holds the only slot
            with ServiceClient(port=svc.port) as c:
                with pytest.raises(DeadlineExceeded, match="queue"):
                    c.search(
                        make_request(
                            label="doomed", algorithm="local", deadline=0.2
                        )
                    )
                metrics = c.metrics()
            for t in threads:
                t.join(timeout=15)
            assert "doomed" not in engine.labels
            assert metrics["degradation"]["shed_expired"] >= 1

    def test_expired_anytime_request_still_serves_partial(self):
        """The PR-8 contract survives the shed path: an anytime request
        whose budget died queueing is clamped, not rejected."""
        engine = CountingEngine(MACEngine(make_network()), delay=1.0)
        svc = MACService(engine, port=0, max_concurrency=1, queue_depth=8)
        with svc:
            threads = occupy_slots(svc.port, 1)
            time.sleep(0.3)
            with ServiceClient(port=svc.port) as c:
                result = c.search(
                    make_request(
                        label="best-effort", algorithm="global",
                        deadline=0.2, anytime=True,
                    )
                )
            for t in threads:
                t.join(timeout=15)
            assert "best-effort" in engine.labels
            assert result.partial is True


class TestPredictiveShedding:
    def test_hopeless_budget_is_rejected_at_admission(self):
        """With every slot busy, a request whose predicted queue wait
        already exceeds its budget gets 429 + Retry-After, not a slot."""
        engine = CountingEngine(MACEngine(make_network()), delay=1.0)
        svc = MACService(engine, port=0, max_concurrency=1, queue_depth=8)
        with svc:
            threads = occupy_slots(svc.port, 1)
            time.sleep(0.3)
            with ServiceClient(port=svc.port) as c:
                # The EWMA seed is 0.1s; a 0.01s budget is hopeless.
                with pytest.raises(ServiceOverloaded, match="shed") as info:
                    c.search(
                        make_request(
                            label="hopeless", algorithm="local",
                            deadline=0.01,
                        )
                    )
                assert info.value.retry_after >= 1.0
                metrics = c.metrics()
            for t in threads:
                t.join(timeout=15)
            assert "hopeless" not in engine.labels
            assert metrics["degradation"]["shed_predicted"] >= 1

    def test_idle_server_never_sheds_predictively(self):
        svc = MACService(MACEngine(make_network()), port=0, max_concurrency=2)
        with svc, ServiceClient(port=svc.port) as c:
            result = c.search(
                make_request(algorithm="local", deadline=0.01, label="tight")
            )
            assert result.partitions is not None
            assert c.metrics()["degradation"]["shed_predicted"] == 0


class TestBrownout:
    def test_bad_config_is_typed(self):
        engine = MACEngine(make_network())
        with pytest.raises(ServiceError, match="brownout_exit"):
            MACService(engine, brownout_enter=2, brownout_exit=2)
        with pytest.raises(ServiceError, match="brownout_hold"):
            MACService(engine, brownout_hold=0.0)

    def test_fresh_server_reports_normal_mode(self):
        svc = MACService(MACEngine(make_network()), port=0)
        with svc, ServiceClient(port=svc.port) as c:
            assert c.healthz()["mode"] == "normal"
            degradation = c.metrics()["degradation"]
            assert degradation["mode"] == "normal"
            assert degradation["brownouts"] == 0
            assert degradation["brownout_degraded"] == 0

    def test_overload_enters_brownout_serves_partials_and_exits(self):
        """The ISSUE acceptance scenario: synthetic overload flips the
        server to brownout (hysteretic), deadline-bearing requests are
        degraded to marked partials instead of a 5xx storm, and calm
        flips it back to normal."""
        engine = CountingEngine(MACEngine(make_network()), delay=0.5)
        svc = MACService(
            engine, port=0, max_concurrency=1, queue_depth=16,
            brownout_enter=2, brownout_exit=0, brownout_hold=0.15,
        )
        with svc:
            outcomes: list = []

            def flood(i: int) -> None:
                # Anytime pressure generators: each occupies the single
                # compute slot for the full 0.5s delay, so the backlog
                # (and the in-flight count) stays high for seconds.
                with ServiceClient(port=svc.port) as c:
                    try:
                        outcomes.append(
                            c.search(make_request(
                                k=2 + (i % 2), label="slow",
                                algorithm="local", deadline=0.4,
                                anytime=True,
                            ))
                        )
                    except Exception as exc:
                        outcomes.append(exc)

            threads = [
                threading.Thread(target=flood, args=(i,)) for i in range(7)
            ]
            for t in threads:
                t.start()
            with ServiceClient(port=svc.port) as c:
                # Sustained pressure: healthz polls advance the state
                # machine past the hysteresis hold.
                wait_until(
                    lambda: c.healthz()["mode"] == "brownout", timeout=10.0
                )
                # A budgeted request arriving mid-brownout is degraded
                # to anytime: its queue wait exceeds the budget, so it
                # serves its best-so-far answer marked partial.
                browned = c.search(make_request(
                    label="browned", algorithm="global",
                    problem="topj", j=3, deadline=0.4,
                ))
                assert browned.partial is True
                metrics = c.metrics()
                assert metrics["degradation"]["mode"] == "brownout"
                assert metrics["degradation"]["brownouts"] >= 1
                assert metrics["degradation"]["brownout_degraded"] >= 1
                for t in threads:
                    t.join(timeout=30)
                # Calm: the backlog is gone, so the hold elapses and the
                # mode returns to normal (again via poll dispatches).
                wait_until(
                    lambda: c.healthz()["mode"] == "normal", timeout=10.0
                )
                assert c.metrics()["degradation"]["brownouts"] == 1
            # No untyped failures anywhere in the flood: every outcome
            # is a result (possibly partial) or a typed deadline error.
            for out in outcomes:
                assert not isinstance(out, Exception) or isinstance(
                    out, (DeadlineExceeded, ServiceOverloaded)
                ), out

    def test_brownout_leaves_unbudgeted_requests_alone(self):
        """Degradation only touches deadline-bearing requests; one with
        no budget runs exactly as submitted even in brownout."""
        engine = CountingEngine(MACEngine(make_network()), delay=0.5)
        svc = MACService(
            engine, port=0, max_concurrency=1, queue_depth=16,
            brownout_enter=1, brownout_exit=0, brownout_hold=0.05,
        )
        with svc:
            threads = occupy_slots(svc.port, 2)
            with ServiceClient(port=svc.port) as c:
                wait_until(
                    lambda: c.healthz()["mode"] == "brownout", timeout=10.0
                )
                result = c.search(
                    make_request(label="unbudgeted", algorithm="global")
                )
                assert result.partial is False
            for t in threads:
                t.join(timeout=15)
