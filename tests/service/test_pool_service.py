"""`MACService` over a `PoolExecutor`: the worker tier behind HTTP."""

import os
import signal
import threading
import time

import pytest

from repro import MACEngine, MACRequest, PreferenceRegion
from repro.errors import WorkerCrashed
from repro.pool import PoolExecutor, WorkerPool
from repro.road.network import SpatialPoint
from repro.service import MACService, ServiceClient
from repro.errors import ServiceError
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

from tests.conftest import paper_attributes, paper_road, paper_social_graph

REGION = PreferenceRegion([0.1, 0.2], [0.5, 0.4])


def make_network() -> RoadSocialNetwork:
    locations = {v: SpatialPoint.at_vertex(v) for v in range(1, 16)}
    return RoadSocialNetwork(
        paper_road(),
        SocialNetwork(paper_social_graph(), paper_attributes(), locations),
    )


def make_request(k: int = 3, **knobs) -> MACRequest:
    return MACRequest.make((2, 3, 6), k, 9.0, REGION, **knobs)


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(MACEngine(make_network()), 2) as p:
        yield p


@pytest.fixture(scope="module")
def service(pool):
    svc = MACService(
        executor=PoolExecutor(pool),
        port=0, max_concurrency=4, queue_depth=8,
    )
    with svc:
        yield svc


@pytest.fixture
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


class TestConstruction:
    def test_requires_exactly_one_backend(self, pool):
        with pytest.raises(ServiceError, match="exactly one"):
            MACService()
        with pytest.raises(ServiceError, match="exactly one"):
            MACService(MACEngine(make_network()),
                       executor=PoolExecutor(pool))

    def test_pool_service_has_no_in_process_engine(self, service):
        assert service.engine is None
        assert service.executor.kind == "pool"


class TestEndpoints:
    def test_search_matches_in_process_engine(self, client):
        request = make_request(algorithm="global")
        served = client.search(request)
        local = MACEngine(make_network()).search(request)
        assert served.htk_vertices == local.htk_vertices
        assert [sorted(p.best) for p in served.partitions] == \
            [sorted(e.best.members) for e in local.partitions]

    def test_explain_crosses_the_process_boundary(self, client):
        plan = client.explain(make_request(algorithm="global"))
        assert plan.searcher == "GS-NC"

    def test_batch(self, client):
        results = client.search_batch(
            [make_request(label="a"), make_request(label="b", k=4)],
            workers=2,
        )
        assert len(results) == 2

    def test_healthz_reports_workers_and_snapshot(self, client, pool):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"]["alive"] == 2
        assert health["workers"]["total"] == 2
        assert health["snapshot"]["fingerprint"] == pool.fingerprint
        assert health["engine"]["searches"] >= 0

    def test_metrics_carries_the_pool_section(self, client):
        metrics = client.metrics()
        assert metrics["service"]["executor"] == "pool"
        assert metrics["service"]["worker_processes"] == 2
        pool_section = metrics["pool"]
        assert pool_section["num_workers"] == 2
        assert len(pool_section["workers"]) == 2
        for entry in pool_section["workers"]:
            assert {"qps", "queue_depth", "served", "restarts"} <= set(entry)
        # Merged stage-cache counters from the worker fleet.
        assert set(metrics["engine"]["caches"]) == \
            {"filter", "core", "dominance", "result"}


class TestCrashUnderLoad:
    def test_worker_killed_mid_query_fails_typed_then_recovers(
        self, service, client, pool
    ):
        request = make_request(algorithm="local", label="victim",
                               time_budget=123.0)
        victim = pool.route_for(request)
        # Occupy the victim worker so the HTTP request is parked on it,
        # then kill the process under the request.
        hold = pool.submit_op(victim, "sleep", 20.0)
        pid = pool.pool_wire()["workers"][victim]["pid"]

        caught: list = []

        def call():
            try:
                client.search(request)
                caught.append(None)
            except Exception as exc:  # noqa: BLE001 - recording for assert
                caught.append(exc)

        thread = threading.Thread(target=call)
        thread.start()
        time.sleep(0.3)  # let the request reach the worker's pipe
        os.kill(pid, signal.SIGKILL)
        thread.join(timeout=30)
        assert not thread.is_alive(), "HTTP request hung on a dead worker"
        assert isinstance(caught[0], WorkerCrashed)
        with pytest.raises(WorkerCrashed):
            hold.result(timeout=30)

        # The tier recovers: later requests succeed over HTTP and the
        # restart shows up in /v1/metrics and /v1/healthz.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if pool.workers_wire()["alive"] == 2:
                break
            time.sleep(0.05)
        fresh = ServiceClient(port=service.port)
        result = fresh.search(make_request(label="after", time_budget=7.0))
        assert result.partitions
        metrics = fresh.metrics()
        assert metrics["pool"]["restarts"] >= 1
        health = fresh.healthz()
        assert health["workers"]["restarts"] >= 1
        assert health["status"] == "ok"
        fresh.close()
