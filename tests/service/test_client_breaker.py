"""Client circuit breaker: fail fast while the service is unreachable."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import CircuitOpen, ServiceError, ServiceOverloaded
from repro.service import ServiceClient


class FlakyServer:
    """Raw HTTP stub that RSTs connections until told to recover.

    From the client, an RST before any response bytes is exactly what a
    dead or partitioned service looks like: the transport error that
    the breaker counts.
    """

    def __init__(self, healthy: bool = False) -> None:
        self.healthy = healthy
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            if not self.healthy:
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                conn.close()
                continue
            body = json.dumps({"status": "ok"}).encode()
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body
            )
            conn.close()

    def close(self) -> None:
        self._sock.close()


def breaker_client(port: int, **kwargs) -> ServiceClient:
    kwargs.setdefault("breaker_threshold", 2)
    kwargs.setdefault("breaker_cooldown", 0.2)
    # One transport failure per call: the stale-keep-alive replay would
    # double-count connections in the assertions below.
    kwargs.setdefault("retry_resets", False)
    return ServiceClient(port=port, **kwargs)


class TestBreakerConfig:
    def test_disabled_by_default_never_fails_fast(self):
        server = FlakyServer()
        try:
            with ServiceClient(port=server.port, retry_resets=False) as c:
                for _ in range(4):
                    with pytest.raises(ServiceError, match="lost|closed"):
                        c.healthz()
            # Every call went to the wire — no breaker in the way.
            assert server.connections == 4
        finally:
            server.close()

    def test_bad_config_is_typed(self):
        with pytest.raises(ServiceError, match="breaker_threshold"):
            ServiceClient(breaker_threshold=-1)
        with pytest.raises(ServiceError, match="breaker_cooldown"):
            ServiceClient(breaker_threshold=1, breaker_cooldown=0.0)


class TestBreakerTrips:
    def test_opens_after_threshold_and_fails_fast(self):
        server = FlakyServer()
        try:
            with breaker_client(server.port, breaker_cooldown=30.0) as c:
                for _ in range(2):
                    with pytest.raises(ServiceError, match="lost|closed"):
                        c.healthz()
                with pytest.raises(CircuitOpen, match="open after 2") as info:
                    c.healthz()
                assert 0.0 < info.value.retry_after <= 30.0
                # The fast-fail consumed no connection attempt.
                assert server.connections == 2
        finally:
            server.close()

    def test_half_open_probe_recovers(self):
        server = FlakyServer()
        try:
            with breaker_client(server.port, breaker_threshold=1) as c:
                with pytest.raises(ServiceError, match="lost|closed"):
                    c.healthz()
                with pytest.raises(CircuitOpen):
                    c.healthz()
                server.healthy = True
                time.sleep(0.25)  # cooldown elapsed: next call is the probe
                assert c.healthz() == {"status": "ok"}
                # Fully closed again: subsequent calls flow normally.
                assert c.healthz() == {"status": "ok"}
            assert server.connections == 3
        finally:
            server.close()

    def test_failed_probe_reopens_immediately(self):
        server = FlakyServer()
        try:
            with breaker_client(server.port, breaker_threshold=1) as c:
                with pytest.raises(ServiceError, match="lost|closed"):
                    c.healthz()
                time.sleep(0.25)
                # The half-open probe fails: one failure re-opens the
                # circuit without waiting for a fresh threshold streak.
                with pytest.raises(ServiceError, match="lost|closed"):
                    c.healthz()
                with pytest.raises(CircuitOpen):
                    c.healthz()
            assert server.connections == 2
        finally:
            server.close()


class OverloadedServer:
    """Stub that always answers a typed 429 — alive, just shedding."""

    def __init__(self) -> None:
        self.requests = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            self.requests += 1
            body = json.dumps({"error": {
                "type": "ServiceOverloaded",
                "message": "server is at capacity",
                "retry_after": 0.01,
            }}).encode()
            conn.sendall(
                b"HTTP/1.1 429 Too Many Requests\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body
            )
            conn.close()

    def close(self) -> None:
        self._sock.close()


class TestBreakerSelectivity:
    def test_parsed_responses_never_trip_the_breaker(self):
        """Back-pressure is a healthy server answering: 429s must not
        open the circuit no matter how many arrive in a row."""
        server = OverloadedServer()
        try:
            with breaker_client(server.port, breaker_threshold=1) as c:
                for _ in range(4):
                    with pytest.raises(ServiceOverloaded):
                        c.healthz()
            assert server.requests == 4  # all reached the server
        finally:
            server.close()
