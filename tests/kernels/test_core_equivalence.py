"""Backend equivalence: core decomposition, peeling, components.

The flat (batch-peeled, array-BFS) and python (position-swap bucket,
cascade) backends must return identical coreness maps, k-cores, and
query-anchored k-ĉores on random graphs and the bundled datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import random_graph
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import (
    core_decomposition,
    k_core_containing,
    k_cores_containing,
    peel_to_k_core,
)
from repro.kernels import FlatGraph, component_labels, component_mask


def graphs_equal(a: AdjacencyGraph | None, b: AdjacencyGraph | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return (
        set(a.vertices()) == set(b.vertices())
        and {frozenset(e) for e in a.edges()}
        == {frozenset(e) for e in b.edges()}
    )


class TestCoreDecomposition:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 160))
        g = random_graph(n, float(rng.uniform(0.01, 0.2)), seed)
        assert core_decomposition(g, backend="flat") == \
            core_decomposition(g, backend="python")

    def test_path_graph_long_cascade(self):
        # Worst case for batch peeling (one cascade round per vertex)
        # and for the old bucket layout (every edge appended an entry).
        g = AdjacencyGraph([(i, i + 1) for i in range(500)])
        flat = core_decomposition(g, backend="flat")
        python = core_decomposition(g, backend="python")
        assert flat == python
        assert set(flat.values()) == {1}

    def test_complete_graph(self):
        n = 12
        g = AdjacencyGraph(
            [(i, j) for i in range(n) for j in range(i + 1, n)]
        )
        for backend in ("flat", "python"):
            core = core_decomposition(g, backend=backend)
            assert set(core.values()) == {n - 1}

    def test_isolated_vertices(self):
        g = AdjacencyGraph([(0, 1)])
        g.add_vertex(99)
        for backend in ("flat", "python"):
            assert core_decomposition(g, backend=backend) == {
                0: 1, 1: 1, 99: 0,
            }

    def test_bundled_dataset(self, small_dataset):
        g = small_dataset.network.social.graph
        assert core_decomposition(g, backend="flat") == \
            core_decomposition(g, backend="python")

    def test_unknown_backend_rejected(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            core_decomposition(AdjacencyGraph([(0, 1)]), backend="numpy")


class TestPeeling:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5])
    def test_peel_matches(self, seed, k):
        g = random_graph(80, 0.08, seed)
        assert graphs_equal(
            peel_to_k_core(g, k, backend="flat"),
            peel_to_k_core(g, k, backend="python"),
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_k_core_containing_matches(self, seed):
        rng = np.random.default_rng(100 + seed)
        g = random_graph(80, 0.08, seed)
        verts = sorted(g.vertices())
        query = [int(v) for v in rng.choice(verts, size=2, replace=False)]
        for k in (1, 2, 3, 4):
            assert graphs_equal(
                k_core_containing(g, query, k, backend="flat"),
                k_core_containing(g, query, k, backend="python"),
            )

    def test_negative_k_rejected_on_both_backends(self):
        from repro.errors import GraphError

        g = random_graph(20, 0.2, 0)
        for backend in ("flat", "python"):
            with pytest.raises(GraphError):
                peel_to_k_core(g, -1, backend=backend)
            with pytest.raises(GraphError):
                k_core_containing(g, [0], -1, backend=backend)
            with pytest.raises(GraphError):
                k_cores_containing(g, [0], [2, -1], backend=backend)

    def test_batched_matches_single(self, small_dataset):
        g = small_dataset.network.social.graph
        query = sorted(g.vertices())[:2]
        ks = (1, 2, 4, 6, 50)
        for backend in ("flat", "python"):
            batched = k_cores_containing(g, query, ks, backend=backend)
            assert set(batched) == set(ks)
            for k in ks:
                assert graphs_equal(
                    batched[k], k_core_containing(g, query, k)
                )


class TestComponents:
    @pytest.mark.parametrize("seed", range(5))
    def test_labels_partition_matches_adjacency(self, seed):
        g = random_graph(70, 0.03, seed)
        fg = FlatGraph.from_adjacency(g)
        labels = component_labels(fg)
        by_label: dict[int, set] = {}
        for v in g.vertices():
            by_label.setdefault(int(labels[fg.row_of(v)]), set()).add(v)
        expected = {frozenset(c) for c in g.connected_components()}
        assert {frozenset(c) for c in by_label.values()} == expected

    def test_mask_restricts(self):
        g = AdjacencyGraph([(0, 1), (1, 2), (2, 3)])
        fg = FlatGraph.from_adjacency(g)
        mask = np.asarray([True, True, False, True])
        comp = component_mask(fg, fg.row_of(0), mask)
        assert fg.select_ids(comp) == [0, 1]
        # source outside the mask: empty component
        empty = component_mask(fg, fg.row_of(2), mask)
        assert not empty.any()
        # masked-out bridge vertex splits the rest
        other = component_mask(fg, fg.row_of(3), mask)
        assert fg.select_ids(other) == [3]
