"""Engine-level backend selection, equivalence, and stage telemetry."""

from __future__ import annotations

import pytest

from tests.conftest import paper_network, paper_region  # noqa: F401 (fixtures)
from repro import MACEngine, MACRequest
from repro.errors import QueryError


def result_signature(result):
    """Partition structure without Cell objects (identity equality)."""
    return [
        sorted(sorted(c.members) for c in entry.communities)
        for entry in result.partitions
    ]


def make_engines(network):
    return (
        MACEngine(network, backend="flat"),
        MACEngine(network, backend="python"),
    )


class TestBackendEquivalence:
    def test_search_results_identical(self, paper_network, paper_region):
        flat_engine, python_engine = make_engines(paper_network)
        for problem, j, algorithm in (
            ("nc", 1, "global"),
            ("nc", 1, "local"),
            ("topj", 2, "global"),
        ):
            request = MACRequest.make(
                [2, 3, 6], 3, 9.0, paper_region,
                j=j, problem=problem, algorithm=algorithm,
            )
            a = flat_engine.search(request)
            b = python_engine.search(request)
            assert a.htk_vertices == b.htk_vertices
            assert a.htk_edges == b.htk_edges
            assert result_signature(a) == result_signature(b)

    def test_dataset_equivalence(self, small_dataset):
        from repro.cli import resolve_search_defaults

        ds = small_dataset
        t, region = resolve_search_defaults(ds, 0.1, 3)
        q = ds.suggest_query(2, k=4, t=t)
        flat_engine, python_engine = make_engines(ds.network)
        request = MACRequest.make(q, 4, t, region, algorithm="local")
        a = flat_engine.search(request)
        b = python_engine.search(request)
        assert a.htk_vertices == b.htk_vertices
        assert result_signature(a) == result_signature(b)

    def test_request_backend_overrides_engine(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network, backend="python")
        request = MACRequest.make(
            [2, 3, 6], 3, 9.0, paper_region, backend="flat"
        )
        result = engine.search(request)
        assert result.extra["engine"]["backend"] == "flat"
        default = engine.search(
            MACRequest.make([2, 3, 6], 3, 9.0, paper_region)
        )
        assert default.extra["engine"]["backend"] == "python"

    def test_backend_keys_do_not_collide(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        base = dict(query=[2, 3, 6], k=3, t=9.0)
        engine.search(MACRequest.make(**base, region=paper_region,
                                      backend="flat"))
        tel0 = engine.telemetry()
        engine.search(MACRequest.make(**base, region=paper_region,
                                      backend="python"))
        tel1 = engine.telemetry()
        # the python request cannot reuse flat-backend stage entries
        assert tel1.filter.misses == tel0.filter.misses + 1

    def test_invalid_backends_rejected(self, paper_network, paper_region):
        with pytest.raises(QueryError):
            MACEngine(paper_network, backend="fast")
        with pytest.raises(QueryError):
            MACRequest.make([1], 2, 5.0, paper_region, backend="numpy")


class TestStageTelemetry:
    def test_stage_seconds_accumulate(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        tel = engine.telemetry()
        assert set(tel.stage_seconds) == {
            "filter", "core", "dominance", "search",
        }
        assert all(v == 0.0 for v in tel.stage_seconds.values())
        request = MACRequest.make([2, 3, 6], 3, 9.0, paper_region)
        engine.search(request)
        tel = engine.telemetry()
        assert tel.stage_seconds["filter"] > 0.0
        assert tel.stage_seconds["core"] > 0.0
        assert tel.stage_seconds["dominance"] > 0.0
        assert tel.stage_seconds["search"] > 0.0
        # cache hits add no build time
        frozen = dict(tel.stage_seconds)
        engine.search(request)
        after = engine.telemetry().stage_seconds
        for stage in ("filter", "core", "dominance"):
            assert after[stage] == frozen[stage]

    def test_per_request_timings(self, paper_network, paper_region):
        engine = MACEngine(paper_network, result_cache_size=0)
        request = MACRequest.make([2, 3, 6], 3, 9.0, paper_region)
        cold = engine.search(request).extra["engine"]["timings"]
        assert cold["filter"] > 0.0 and cold["dominance"] > 0.0
        warm = engine.search(request).extra["engine"]["timings"]
        assert warm["filter"] == 0.0 and warm["dominance"] == 0.0
        assert warm["search"] > 0.0

    def test_warm_accounts_stage_time(self, paper_network, paper_region):
        engine = MACEngine(paper_network)
        engine.warm(MACRequest.make([2, 3, 6], 3, 9.0, paper_region))
        tel = engine.telemetry()
        assert tel.stage_seconds["filter"] > 0.0
        assert tel.stage_seconds["search"] == 0.0

    def test_explain_surfaces_stage_seconds(
        self, paper_network, paper_region
    ):
        engine = MACEngine(paper_network)
        request = MACRequest.make([2, 3, 6], 3, 9.0, paper_region)
        engine.search(request)
        plan = engine.explain(request)
        assert plan.backend in ("flat", "python")
        assert plan.stage_seconds["filter"] > 0.0
        assert "stage seconds" in plan.summary()
        assert "backend" in plan.summary()
