"""Backend equivalence: r-dominance graph construction.

The flat build (one (n, p) corner-score matrix, CSR parent gathers)
must produce the *identical* Hasse DAG — same insertion order, parents,
children, roots, and layers — as the pairwise python reference, on
random attribute sets, degenerate ties, and the bundled datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import paper_attributes
from repro.dominance.graph import DominanceGraph, build_dominance_graph
from repro.errors import GraphError
from repro.geometry.region import PreferenceRegion


def assert_same_dag(a: DominanceGraph, b: DominanceGraph) -> None:
    assert a.order == b.order
    assert a.parents == b.parents
    assert a.children == b.children
    assert a.roots == b.roots
    assert {v: a.layer(v) for v in a.vertices()} == {
        v: b.layer(v) for v in b.vertices()
    }


def build_pair(attrs, region, use_rtree=True):
    return (
        DominanceGraph(attrs, region, use_rtree=use_rtree, backend="flat"),
        DominanceGraph(attrs, region, use_rtree=use_rtree, backend="python"),
    )


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_random_attributes(self, seed, d):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 120))
        attrs = {
            v: rng.uniform(0.0, 10.0, size=d) for v in range(n)
        }
        center = [0.8 / d] * (d - 1)
        region = PreferenceRegion.centered(center, 0.05)
        flat, python = build_pair(attrs, region)
        assert_same_dag(flat, python)

    @pytest.mark.parametrize("use_rtree", [True, False])
    def test_paper_example(self, use_rtree):
        attrs = {
            v: x for v, x in paper_attributes().items() if v <= 7
        }
        region = PreferenceRegion([0.1, 0.2], [0.5, 0.4])
        flat, python = build_pair(attrs, region, use_rtree=use_rtree)
        assert_same_dag(flat, python)
        # Fig. 4(b): tops {2, 4, 6}
        assert sorted(flat.roots) == [2, 4, 6]

    def test_score_ties(self):
        # Identical attribute vectors r-dominate each other; the DAG
        # orients ties by insertion order in both backends.
        attrs = {
            0: np.asarray([2.0, 3.0, 1.0]),
            1: np.asarray([2.0, 3.0, 1.0]),
            2: np.asarray([1.0, 1.0, 1.0]),
            3: np.asarray([2.0, 3.0, 1.0]),
        }
        region = PreferenceRegion([0.2, 0.2], [0.4, 0.4])
        flat, python = build_pair(attrs, region)
        assert_same_dag(flat, python)
        assert len(flat.roots) == 1

    def test_single_vertex(self):
        region = PreferenceRegion([0.2], [0.4])
        flat, python = build_pair({7: np.asarray([1.0, 2.0])}, region)
        assert_same_dag(flat, python)
        assert flat.roots == [7]

    def test_one_dimensional_attributes(self):
        region = PreferenceRegion(np.zeros(0), np.zeros(0))
        attrs = {v: np.asarray([float(v % 5)]) for v in range(20)}
        flat, python = build_pair(attrs, region)
        assert_same_dag(flat, python)

    def test_bundled_dataset_core(self, small_dataset):
        net = small_dataset.network
        q = small_dataset.suggest_query(
            2, k=4, t=small_dataset.default_t
        )
        core = net.maximal_kt_core(q, 4, small_dataset.default_t)
        attrs = net.social.attributes_for(core.graph.vertices())
        region = PreferenceRegion.centered([0.3, 0.3], 0.01)
        flat, python = build_pair(attrs, region)
        assert_same_dag(flat, python)

    def test_subset_sweeps_agree(self):
        rng = np.random.default_rng(42)
        attrs = {v: rng.uniform(0, 5, size=3) for v in range(60)}
        region = PreferenceRegion.centered([0.3, 0.3], 0.02)
        flat, python = build_pair(attrs, region)
        subset = list(range(0, 60, 3))
        assert flat.leaves_within(subset) == python.leaves_within(subset)
        assert flat.tops_within(subset) == python.tops_within(subset)
        for v in (0, 30, 59):
            assert flat.ancestors(v) == python.ancestors(v)
            assert flat.descendants(v) == python.descendants(v)

    def test_build_helper_and_bad_backend(self):
        rng = np.random.default_rng(0)
        attrs = {v: rng.uniform(0, 5, size=2) for v in range(10)}
        region = PreferenceRegion([0.2], [0.4])
        gd = build_dominance_graph(
            list(range(10)), attrs, region, backend="flat"
        )
        assert gd.num_vertices == 10
        with pytest.raises(GraphError):
            DominanceGraph(attrs, region, backend="vectorized")
