"""Shared fixtures for the kernel-backend equivalence suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import datasets
from repro.road.network import RoadNetwork


def random_road(
    n: int, extra_edges: int, seed: int, coords: bool = True
) -> RoadNetwork:
    """Connected random weighted road network (spanning tree + extras)."""
    rng = np.random.default_rng(seed)
    road = RoadNetwork()
    for v in range(n):
        xy = (float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
        road.add_vertex(v, xy if coords else None)
    for v in range(1, n):
        u = int(rng.integers(v))
        road.add_edge(u, v, float(rng.uniform(0.5, 10.0)))
    added = 0
    while added < extra_edges:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and not (v in road.neighbors(u)):
            road.add_edge(u, v, float(rng.uniform(0.5, 10.0)))
            added += 1
    return road


@pytest.fixture(scope="module")
def small_dataset():
    """A bundled dataset small enough for exhaustive cross-checks."""
    return datasets.load_dataset("sf+slashdot", scale=0.1, seed=7)
