"""FlatGraph construction and id ↔ row round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import paper_road, random_graph
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.kernels import FlatGraph, core_numbers


class TestFromAdjacency:
    def test_round_trip_ids_and_degrees(self):
        g = random_graph(50, 0.1, seed=3)
        fg = FlatGraph.from_adjacency(g)
        assert fg.n == g.num_vertices
        assert fg.num_edges == g.num_edges
        for v in g.vertices():
            r = fg.row_of(v)
            assert fg.id_of(r) == v
            assert fg.degrees()[r] == g.degree(v)
            nbr_ids = {fg.id_of(int(c)) for c in fg.neighbor_rows(r)}
            assert nbr_ids == g.neighbors(v)

    def test_sparse_int_ids(self):
        g = AdjacencyGraph([(10, 700), (700, 31), (31, 10)])
        fg = FlatGraph.from_adjacency(g)
        assert sorted(fg.ids) == [10, 31, 700]
        assert fg.rows_of([700, 10]) == [fg.row_of(700), fg.row_of(10)]
        assert 10 in fg and 11 not in fg

    def test_huge_id_range_uses_searchsorted(self):
        g = AdjacencyGraph([(0, 10**12), (10**12, 5)])
        fg = FlatGraph.from_adjacency(g)
        assert fg.num_edges == 2
        assert fg.degrees()[fg.row_of(10**12)] == 2

    def test_non_int_vertices_fall_back(self):
        g = AdjacencyGraph([("a", "b"), ("b", "c")])
        fg = FlatGraph.from_adjacency(g)
        assert fg.n == 3 and fg.num_edges == 2
        assert fg.id_of(fg.row_of("c")) == "c"
        assert "a" in fg and "z" not in fg
        assert core_numbers(fg).max() == 1

    def test_empty_graph(self):
        fg = FlatGraph.from_adjacency(AdjacencyGraph())
        assert fg.n == 0 and fg.num_edges == 0
        assert core_numbers(fg).size == 0

    def test_missing_vertex_raises(self):
        fg = FlatGraph.from_adjacency(AdjacencyGraph([(1, 2)]))
        with pytest.raises(GraphError):
            fg.row_of(3)
        with pytest.raises(GraphError):
            fg.rows_of([1, 3])

    def test_select_ids_and_relabel(self):
        g = AdjacencyGraph([(4, 8), (8, 15)])
        fg = FlatGraph.from_adjacency(g)
        mask = np.asarray([fg.id_of(r) != 8 for r in range(fg.n)])
        assert sorted(fg.select_ids(mask)) == [4, 15]
        values = np.arange(fg.n)
        assert fg.relabel(values) == {
            fg.id_of(r): r for r in range(fg.n)
        }


class TestFromEdges:
    def test_unweighted_dedupes(self):
        fg = FlatGraph.from_edges([(5, 2), (2, 9), (9, 5), (2, 5)])
        assert fg.num_edges == 3
        assert sorted(fg.ids) == [2, 5, 9]

    def test_weighted_keeps_min_duplicate(self):
        fg = FlatGraph.from_edges([(1, 2, 3.0), (2, 3, 1.0), (2, 1, 2.0)])
        assert fg.num_edges == 2
        r = fg.row_of(1)
        j = int(np.nonzero(fg.neighbor_rows(r) == fg.row_of(2))[0][0])
        assert fg.weights[fg.indptr[r] + j] == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            FlatGraph.from_edges([(1, 1)])

    def test_empty(self):
        fg = FlatGraph.from_edges([])
        assert fg.n == 0


class TestFromRoad:
    def test_weights_round_trip(self, small_dataset):
        road = small_dataset.network.road
        fg = FlatGraph.from_road(road)
        assert fg.n == road.num_vertices
        assert fg.num_edges == road.num_edges
        rng = np.random.default_rng(0)
        verts = sorted(road.vertices())
        for v in rng.choice(verts, size=20):
            v = int(v)
            r = fg.row_of(v)
            got = {
                fg.id_of(int(c)): float(w)
                for c, w in zip(
                    fg.neighbor_rows(r),
                    fg.weights[fg.indptr[r]:fg.indptr[r + 1]],
                )
            }
            assert got == road.neighbors(v)

    def test_cached_and_invalidated(self):
        road = paper_road()
        fg1 = road.flat()
        assert road.flat() is fg1  # cached
        road.add_edge(1, 5, 2.0)
        fg2 = road.flat()
        assert fg2 is not fg1  # mutation invalidates
        assert fg2.num_edges == fg1.num_edges + 1
