"""Backend equivalence: bounded Dijkstra and G-tree range machinery.

Flat distance maps must match the dict-based reference exactly in
reached-vertex sets and up to float associativity in values — including
mid-edge ``SpatialPoint`` sources and the ``D_Q`` aggregation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from tests.conftest import paper_road
from tests.kernels.conftest import random_road
from repro.road.dijkstra import (
    bounded_dijkstra,
    dijkstra,
    network_distance,
    query_distances,
)
from repro.road.network import SpatialPoint

INF = math.inf


def assert_dist_maps_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for v in a:
        assert a[v] == pytest.approx(b[v], rel=1e-9, abs=1e-9)


class TestBoundedDijkstra:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_roads(self, seed):
        rng = np.random.default_rng(seed)
        road = random_road(120, 60, seed)
        for _ in range(4):
            src = int(rng.integers(120))
            bound = float(rng.uniform(2.0, 40.0))
            assert_dist_maps_equal(
                bounded_dijkstra(road, src, bound, backend="flat"),
                bounded_dijkstra(road, src, bound, backend="python"),
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_mid_edge_sources(self, seed):
        road = random_road(80, 40, seed)
        rng = np.random.default_rng(200 + seed)
        u = int(rng.integers(80))
        v = next(iter(road.neighbors(u)))
        p = SpatialPoint.on_edge(u, v, road.weight(u, v) * 0.4)
        for bound in (5.0, 25.0, INF):
            assert_dist_maps_equal(
                bounded_dijkstra(road, p, bound, backend="flat"),
                bounded_dijkstra(road, p, bound, backend="python"),
            )

    def test_unbounded_reaches_component(self):
        road = paper_road()
        flat = dijkstra(road, 1, backend="flat")
        python = dijkstra(road, 1, backend="python")
        assert_dist_maps_equal(flat, python)
        assert set(flat) == set(road.vertices())

    def test_disconnected_vertices_absent(self):
        road = paper_road()
        road.add_vertex(99)
        flat = dijkstra(road, 1, backend="flat")
        assert 99 not in flat

    def test_zero_bound(self):
        road = paper_road()
        assert bounded_dijkstra(road, 1, 0.0, backend="flat") == \
            bounded_dijkstra(road, 1, 0.0, backend="python") == {1: 0.0}


class TestMaskedDijkstra:
    def test_bool_mask_matches_row_set(self):
        from repro.kernels import FlatGraph, masked_dijkstra_rows

        road = random_road(40, 20, 2)
        fg = road.flat()
        mask = np.zeros(fg.n, dtype=bool)
        mask[: fg.n // 2] = True
        src = int(np.nonzero(mask)[0][0])
        via_mask = masked_dijkstra_rows(fg, src, mask)
        via_set = masked_dijkstra_rows(
            fg, src, set(np.nonzero(mask)[0].tolist())
        )
        assert via_mask == via_set
        # full mask == unrestricted reachability
        full = masked_dijkstra_rows(fg, src, np.ones(fg.n, dtype=bool))
        assert set(full) == set(
            fg.row_of(v) for v in dijkstra(road, src, backend="python")
        )
        assert isinstance(FlatGraph.from_road(road), FlatGraph)

    def test_auto_backend_keeps_python_path(self):
        # Dijkstra's "auto" must resolve to python (flat measures
        # break-even on road shapes) — same values either way.
        road = random_road(100, 50, 3)
        assert_dist_maps_equal(
            bounded_dijkstra(road, 0, 30.0),  # auto
            bounded_dijkstra(road, 0, 30.0, backend="python"),
        )


class TestAggregates:
    def test_network_distance_matches(self):
        road = random_road(60, 30, 5)
        rng = np.random.default_rng(5)
        for _ in range(5):
            a, b = (int(x) for x in rng.integers(60, size=2))
            assert network_distance(road, a, b, backend="flat") == \
                pytest.approx(
                    network_distance(road, a, b, backend="python"),
                    rel=1e-9,
                )

    def test_same_edge_points(self):
        road = paper_road()
        a = SpatialPoint.on_edge(2, 3, 1.0)
        b = SpatialPoint.on_edge(3, 2, 1.5)  # same edge, other end
        for backend in ("flat", "python"):
            d = network_distance(road, a, b, backend=backend)
            assert d == pytest.approx(1.5)

    def test_query_distances_matches(self):
        road = random_road(100, 50, 9)
        points = [SpatialPoint.at_vertex(3), SpatialPoint.at_vertex(77)]
        for bound in (10.0, 30.0):
            assert_dist_maps_equal(
                query_distances(road, points, bound, backend="flat"),
                query_distances(road, points, bound, backend="python"),
            )

    def test_lemma1_filter_matches(self, small_dataset):
        net = small_dataset.network
        q = small_dataset.suggest_query(
            2, k=4, t=small_dataset.default_t
        )
        for t in (small_dataset.default_t, small_dataset.default_t / 2):
            assert_dist_maps_equal(
                net.query_distance_filter(q, t, backend="flat"),
                net.query_distance_filter(q, t, backend="python"),
            )
