"""Backend equivalence: G-tree matrix assembly and range queries.

The flat build (dense min-plus all-pairs per node) must produce the
same border matrices as the per-border python Dijkstra — same key sets,
values equal up to float associativity of path sums — and identical
range-query / distance answers.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from tests.conftest import paper_road
from tests.kernels.conftest import random_road
from repro.road.dijkstra import bounded_dijkstra
from repro.road.gtree import GTree
from repro.road.network import SpatialPoint

INF = math.inf


def build_pair(road, leaf_size=16):
    return (
        GTree(road, leaf_size=leaf_size, backend="python"),
        GTree(road, leaf_size=leaf_size, backend="flat"),
    )


class TestMatrices:
    @pytest.mark.parametrize("seed", range(4))
    def test_node_matrices_match(self, seed):
        road = random_road(150, 80, seed, coords=(seed % 2 == 0))
        gp, gf = build_pair(road)
        assert gp.num_nodes == gf.num_nodes
        for np_, nf in zip(gp._nodes, gf._nodes):
            assert np_.vertices == nf.vertices
            assert np_.borders == nf.borders
            assert set(np_.matrix) == set(nf.matrix)
            for b in np_.matrix:
                rp, rf = np_.matrix[b], nf.matrix[b]
                assert set(rp) == set(rf)
                for v in rp:
                    assert rf[v] == pytest.approx(rp[v], rel=1e-9)


class TestQueries:
    @pytest.mark.parametrize("seed", range(3))
    def test_range_query_matches_dijkstra(self, seed):
        road = random_road(150, 80, seed)
        gp, gf = build_pair(road)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            src = int(rng.integers(150))
            bound = float(rng.uniform(3.0, 30.0))
            ref = bounded_dijkstra(road, src, bound, backend="python")
            for gt in (gp, gf):
                got = gt.range_query(src, bound)
                assert set(got) == set(ref)
                for v in ref:
                    assert got[v] == pytest.approx(ref[v], rel=1e-9)

    def test_mid_edge_source(self):
        road = paper_road()
        gp, gf = build_pair(road, leaf_size=4)
        u, v = 2, 3
        p = SpatialPoint.on_edge(u, v, road.weight(u, v) / 3)
        ref = bounded_dijkstra(road, p, 12.0, backend="python")
        for gt in (gp, gf):
            got = gt.range_query(p, 12.0)
            assert set(got) == set(ref)
            for w in ref:
                assert got[w] == pytest.approx(ref[w], rel=1e-9)

    def test_distance_matches(self):
        road = random_road(100, 50, 11)
        gp, gf = build_pair(road)
        rng = np.random.default_rng(11)
        for _ in range(5):
            a, b = (int(x) for x in rng.integers(100, size=2))
            assert gf.distance(a, b) == pytest.approx(
                gp.distance(a, b), rel=1e-9
            )

    def test_query_distances_match(self, small_dataset):
        road = small_dataset.network.road
        gp, gf = build_pair(road, leaf_size=32)
        verts = sorted(road.vertices())
        points = [
            SpatialPoint.at_vertex(verts[0]),
            SpatialPoint.at_vertex(verts[len(verts) // 2]),
        ]
        a = gp.query_distances(points, 120.0)
        b = gf.query_distances(points, 120.0)
        assert set(a) == set(b)
        for v in a:
            assert b[v] == pytest.approx(a[v], rel=1e-9)
