"""Fig. 15: the Aminer+NA case study.

Query = four renowned DM authors, k = 5, j = 2,
R = [0.1,0.3] x [0.3,0.5] x [0.05,0.1] (d = 4), t effectively unbounded.
The bench prints the top-2 MACs per partition (by author name) and the
comparison communities: SkyC (skyline), InfC (1-d and w ∈ R influential),
ATC ((k+1)-truss with keyword "DM").

Expected shape (paper): the top-1 NC-MAC is the tight famous-author
group; SkyC is contained in an NC-MAC; InfC with w ∈ R is covered by an
NC-MAC; ATC is much larger than the MACs.
"""

from repro import PreferenceRegion, gs_topj
from repro.baselines.influential import influ_nc
from repro.baselines.skyline import SkylineBudgetExceeded, skyline_communities
from repro.baselines.truss_attribute import attribute_truss_community
from repro.datasets.aminer import aminer_case_study
from repro.geometry.halfspace import score

from _harness import emit


def test_fig15_case_study_aminer(benchmark):
    def run():
        cs = aminer_case_study(num_background=600, groups=20, seed=11)
        net = cs.network
        region = PreferenceRegion([0.1, 0.3, 0.05], [0.3, 0.5, 0.1])
        k, j, t = 5, 2, 1e9

        from repro.errors import QueryError

        try:
            res = gs_topj(
                net, cs.query, k, t, region, j=j, time_budget=120.0
            )
        except QueryError:
            # Fall back to the local search if the exact partitioning
            # exceeds its budget on slower machines.
            from repro import ls_topj

            res = ls_topj(net, cs.query, k, t, region, j=j)
        rows = []
        nc_macs = []
        for i, entry in enumerate(res.partitions):
            top1 = entry.communities[0]
            nc_macs.append(top1.members)
            rows.append(
                [f"partition {i}", "top-1 NC-MAC", len(top1),
                 ", ".join(cs.names(top1.members))]
            )
            if len(entry.communities) > 1:
                top2 = entry.communities[1]
                rows.append(
                    [f"partition {i}", "top-2 MAC", len(top2),
                     ", ".join(cs.names(top2.members))]
                )

        graph = net.social.graph
        attrs = net.social.attributes

        # InfC with a single attribute (#publications = dimension 1).
        pubs = {v: float(attrs[v][1]) for v in graph.vertices()}
        infc_1d = influ_nc(graph, pubs, k, cs.query)
        if infc_1d:
            rows.append(["InfC (1-D)", "influential", len(infc_1d),
                         ", ".join(cs.names(infc_1d))])

        # InfC with the weighted sum at the pivot of R.
        w = region.pivot()
        weighted = {v: score(attrs[v], w) for v in graph.vertices()}
        infc_w = influ_nc(graph, weighted, k, cs.query)
        if infc_w:
            covered = any(infc_w <= m for m in nc_macs)
            rows.append(["InfC (w in R)", f"covered by NC-MAC: {covered}",
                         len(infc_w), ", ".join(cs.names(infc_w))])

        # SkyC on the famous-author neighbourhood (skyline is weight-free).
        neighborhood = set(cs.query)
        for v in cs.query:
            neighborhood |= graph.neighbors(v)
        sub = graph.subgraph(neighborhood)
        sub_attrs = {v: attrs[v] for v in sub.vertices()}
        try:
            sky = skyline_communities(
                sub, sub_attrs, k, prune=True, budget=30_000
            )
            for members, _f in sky[:2]:
                contained = any(members <= m for m in nc_macs)
                rows.append(
                    ["SkyC", f"contained in NC-MAC: {contained}",
                     len(members), ", ".join(cs.names(members))]
                )
        except SkylineBudgetExceeded:
            rows.append(["SkyC", "budget exceeded", "Inf", ""])

        # ATC-style (k+1)-truss with keyword "DM".
        atc = attribute_truss_community(
            graph, cs.keywords, cs.query, k, keyword="DM"
        )
        if atc:
            bigger = all(len(atc) >= len(m) for m in nc_macs)
            rows.append(["ATC ('DM')", f"larger than MACs: {bigger}",
                         len(atc), ", ".join(cs.names(atc))])

        emit("Fig15", "Aminer+NA case study, k=5, j=2",
             ["community", "note", "size", "members"], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)
