"""CI perf-trajectory gate: fresh quick-bench speedups vs committed floors.

The committed ``BENCH_kernels.json`` carries two things: the last
full-scale measurement of every kernel (the repo's perf trajectory) and
a ``quick_floors`` table — the speedup each ``--quick`` CI run is
expected to reach.  This script diffs a fresh CI run against those
floors and fails when any measured speedup regresses more than
``--tolerance`` (default 30%) below its floor, so a change that quietly
destroys a kernel win or the snapshot warm start turns the build red
instead of rotting silently.

Usage (what the ``bench-trajectory`` CI job runs)::

    python bench_kernels.py --quick --output /tmp/kernels.json
    python bench_snapshot.py --quick --output /tmp/snapshot.json
    python bench_pool.py --quick --output /tmp/pool.json
    python bench_search.py --quick --output /tmp/search.json
    python bench_live.py --quick --output /tmp/live.json
    python check_trajectory.py --kernels /tmp/kernels.json \
        --snapshot /tmp/snapshot.json --pool /tmp/pool.json \
        --search /tmp/search.json --live /tmp/live.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: The snapshot bench reports one ratio; this floors-table key names it.
SNAPSHOT_KEY = "snapshot_warm_start"

#: The pool bench reports parallel efficiency (scaling over usable
#: cores); this floors-table key names it.
POOL_KEY = "pool_efficiency"

#: The pool bench's hedged-dispatch probe reports the unhedged/hedged
#: p99 ratio under one straggler worker; this key names that floor.
POOL_HEDGE_KEY = "pool_hedge_tail"

#: The live bench reports incremental k-core repair speedup over a full
#: re-peel along the same toggle walk; this key names that floor.
LIVE_KEY = "live_kcore_repair"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE,
        help=f"committed baseline JSON with quick_floors "
             f"(default {BASELINE})",
    )
    parser.add_argument(
        "--kernels", type=Path, required=True,
        help="fresh bench_kernels.py --quick output",
    )
    parser.add_argument(
        "--snapshot", type=Path, default=None,
        help="fresh bench_snapshot.py --quick output (optional)",
    )
    parser.add_argument(
        "--pool", type=Path, default=None,
        help="fresh bench_pool.py --quick output (optional)",
    )
    parser.add_argument(
        "--search", type=Path, default=None,
        help="fresh bench_search.py --quick output (optional)",
    )
    parser.add_argument(
        "--live", type=Path, default=None,
        help="fresh bench_live.py --quick output (optional)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fraction below the floor before failing "
             "(default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    floors = baseline.get("quick_floors")
    if not floors:
        print(f"error: {args.baseline} has no quick_floors table",
              file=sys.stderr)
        return 2
    fresh = json.loads(args.kernels.read_text())
    measured: dict[str, float] = {
        name: entry["speedup"]
        for name, entry in fresh.get("kernels", {}).items()
    }
    if args.snapshot is not None:
        snap = json.loads(args.snapshot.read_text())
        measured[SNAPSHOT_KEY] = snap["speedup"]
    if args.pool is not None:
        pool = json.loads(args.pool.read_text())
        measured[POOL_KEY] = pool["efficiency"]
        if "hedge_tail_ratio" in pool:
            measured[POOL_HEDGE_KEY] = pool["hedge_tail_ratio"]
    if args.search is not None:
        search = json.loads(args.search.read_text())
        for name, entry in search.get("search", {}).items():
            measured[name] = entry["speedup"]
    if args.live is not None:
        live = json.loads(args.live.read_text())
        measured[LIVE_KEY] = live["repair_speedup"]

    failures = []
    print(f"== perf trajectory vs {args.baseline.name} "
          f"(tolerance {args.tolerance:.0%})")
    for name, floor in sorted(floors.items()):
        if name not in measured:
            if name == SNAPSHOT_KEY and args.snapshot is None:
                print(f"{name:24s} floor {floor:6.2f}x   skipped "
                      f"(no --snapshot)")
                continue
            if name in (POOL_KEY, POOL_HEDGE_KEY) and args.pool is None:
                print(f"{name:24s} floor {floor:6.2f}x   skipped "
                      f"(no --pool)")
                continue
            if name.startswith("search_") and args.search is None:
                print(f"{name:24s} floor {floor:6.2f}x   skipped "
                      f"(no --search)")
                continue
            if name == LIVE_KEY and args.live is None:
                print(f"{name:24s} floor {floor:6.2f}x   skipped "
                      f"(no --live)")
                continue
            failures.append(f"{name}: no measurement in the fresh run")
            print(f"{name:24s} floor {floor:6.2f}x   MISSING")
            continue
        value = measured[name]
        limit = floor * (1.0 - args.tolerance)
        ok = value >= limit
        print(f"{name:24s} floor {floor:6.2f}x   measured {value:6.2f}x   "
              f"{'ok' if ok else f'REGRESSION (limit {limit:.2f}x)'}")
        if not ok:
            failures.append(
                f"{name}: measured {value:.2f}x is below "
                f"{limit:.2f}x (floor {floor:.2f}x - {args.tolerance:.0%})"
            )
    for name in sorted(set(measured) - set(floors)):
        print(f"{name:24s} (no floor)   measured {measured[name]:6.2f}x")

    if failures:
        print("\nperf trajectory regressed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
