"""Fig. 7: efficiency/scalability on SF+Delicious (independent attrs)."""

from _harness import standard_panels


def test_fig07_sf_delicious(benchmark):
    standard_panels("Fig07", "sf+delicious", benchmark)
