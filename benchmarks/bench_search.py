"""Search-loop micro-benchmark: warm GS/LS, ``flat`` vs ``python``.

Times the two search algorithms over *prepared* state (range filter,
(k,t)-core, r-dominance graph all warmed outside the timed window, the
``_harness.timed_search`` protocol) with the request's ``backend`` knob
flipped, so the measured delta is exactly the flat-kernel rewrite of
the hot loops: CSR cascade peeling + batch degree updates in the global
search's deletion chains, and the array-backed push frontier in the
local search's Expand.

Every measured pair is checked for result equivalence (same communities
from both backends).  Emits ``BENCH_search.json`` with per-algorithm
speedups; the default run asserts warm GS and LS are >= 3x faster on
the flat backend, and the ``--quick`` ratios are floored by
``quick_floors`` in the committed ``BENCH_kernels.json`` (see
``benchmarks/check_trajectory.py``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

from repro import MACRequest

import _harness as harness

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: fl+yelp is the largest bundled pairing (Table II's biggest shapes).
DATASET = "fl+yelp"

#: Big-core configuration: a permissive travel budget makes H^t_k the
#: whole connected 3-core (~5.7k vertices at scale 1.0), which is where
#: the search loops dominate the query and the flat rewrite shows.  The
#: harness defaults (k=6, tight t) give ~60-vertex cores whose peeling
#: is too short to amortize anything — array or dict, the runtime is
#: geometry there.
K = 3
T = 1e9

#: Default assertion floor (acceptance: warm GS/LS >= 3x flat vs python).
MIN_SPEEDUP = 3.0

#: (name, algorithm, problem, j) — the warm search loops under test.
CONFIGS = (
    ("search_global", "global", "nc", 1),
    ("search_local", "local", "nc", 1),
)


def best_of(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_algorithm(ds, queries, k, t, region, algorithm, problem, j,
                    repeats: int) -> dict:
    engine = harness.engine_for(ds)
    times = {"flat": 0.0, "python": 0.0}
    measured = 0
    for query in queries:
        requests = {
            backend: MACRequest.make(
                query, k, t, region,
                j=j if problem == "topj" else 1,
                algorithm=algorithm, problem=problem,
                backend=backend, time_budget=90.0,
            )
            for backend in ("flat", "python")
        }
        results = {}
        for backend, request in requests.items():
            # The harness warm idiom: prepared stages (and for "flat",
            # the search CSR view on first search) are paid outside the
            # timed window, so the loop itself is what's measured.
            engine.warm(request)
            engine.search(request)
            times[backend] += best_of(
                lambda r=request: engine.search(r), repeats
            )
            results[backend] = engine.search(request)
        assert results["flat"].communities() == \
            results["python"].communities(), (
                f"{algorithm} backend mismatch on Q={query}"
            )
        measured += 1
    if not measured:
        return {"queries": 0, "speedup": math.nan}
    return {
        "queries": measured,
        "k": k,
        "t": t,
        "python_s": times["python"] / measured,
        "flat_s": times["flat"] / measured,
        "speedup": times["python"] / times["flat"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, no speedup assertions (CI smoke run)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"result JSON path (default {OUTPUT})",
    )
    args = parser.parse_args(argv)
    harness.SCALE = args.scale if args.scale is not None else (
        0.15 if args.quick else 1.0
    )
    repeats = args.repeats if args.repeats is not None else (
        2 if args.quick else 5
    )

    ds = harness.load(DATASET)
    k, t = K, T
    region = harness.make_region(harness.DEFAULT_D, harness.DEFAULT_SIGMA)
    queries = harness.queries_for(ds, 2, k, t)

    results = {
        "dataset": DATASET,
        "scale": harness.SCALE,
        "repeats": repeats,
        "quick": args.quick,
        "search": {
            name: bench_algorithm(
                ds, queries, k, t, region, algorithm, problem, j, repeats
            )
            for name, algorithm, problem, j in CONFIGS
        },
    }

    print(f"== search: {DATASET} scale={harness.SCALE} repeats={repeats}")
    for name, entry in results["search"].items():
        if not entry["queries"]:
            print(f"{name:16s} no satisfiable queries")
            continue
        print(
            f"{name:16s} python {entry['python_s'] * 1e3:8.2f}ms   "
            f"flat {entry['flat_s'] * 1e3:8.2f}ms   "
            f"{entry['speedup']:.1f}x   ({entry['queries']} queries)"
        )

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        for name, entry in results["search"].items():
            assert entry["queries"], f"{name}: no satisfiable queries"
            assert entry["speedup"] >= MIN_SPEEDUP, (
                f"{name}: flat speedup {entry['speedup']:.2f}x below the "
                f"{MIN_SPEEDUP:.0f}x floor"
            )
        print(f"asserted: warm GS + LS flat speedups >= {MIN_SPEEDUP:.0f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
