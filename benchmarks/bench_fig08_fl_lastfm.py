"""Fig. 8: efficiency/scalability on FL+Lastfm (independent attrs)."""

from _harness import standard_panels


def test_fig08_fl_lastfm(benchmark):
    standard_panels("Fig08", "fl+lastfm", benchmark)
