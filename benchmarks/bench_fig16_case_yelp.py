"""Fig. 16: the Yelp+SF case study.

k = 6, j = 3, d = 3 "real" (zero-inflated, correlated) compliment
attributes, R = [0.4,0.5] x [0.1,0.2].  Expected shape (paper): real
correlated attributes make the r-dominance DAG near-chain, so the number
of partitions and of distinct (non-contained) MACs is very small, and
the top-3 MACs form a tight nested family around the query users.
"""

from repro import PreferenceRegion, gs_topj

from _harness import default_t_for, emit, load, queries_for


def test_fig16_case_study_yelp(benchmark):
    def run():
        ds = load("fl+yelp", kind="real")
        t = default_t_for(ds)
        region = PreferenceRegion([0.4, 0.1], [0.5, 0.2])
        k, j = 6, 3
        queries = queries_for(ds, 4, k, t)
        rows = []
        for qi, q in enumerate(queries):
            res = gs_topj(ds.network, q, k, t, region, j=j)
            rows.append(
                [f"query {qi}", "partitions", len(res.partitions), ""]
            )
            for pi, entry in enumerate(res.partitions[:3]):
                chain = " > ".join(
                    str(len(c)) for c in entry.communities
                )
                rows.append(
                    [f"query {qi}", f"partition {pi} top-{j} sizes",
                     chain,
                     f"NC members: {sorted(entry.communities[0].members)[:12]}"]
                )
        emit("Fig16", "Yelp+SF-style case study, k=6, j=3, real attrs",
             ["query", "item", "value", "detail"], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)
