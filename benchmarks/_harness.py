"""Shared benchmark harness for the paper-reproduction experiments.

Every figure/table of Section VII gets one bench module; this module
centralizes what they share: dataset/query caching, a shared
:class:`repro.MACEngine` per dataset (so repeated (Q, k, t) runs reuse
the prepared range-filter / core / dominance state), the parameter grids
of Table III (scaled), region construction, algorithm runners, and series
emission (stdout + ``benchmarks/results/*.txt``).

Timing protocol note: since the engine rewiring, ``timed_search`` warms
the prepared stages outside the timed window, so emitted times measure
the *search phase* under amortized indexes — equally for all four
algorithms.  The paper (and the pre-engine harness) timed the full
pipeline per query; absolute numbers are therefore lower here, and the
index-build cost shows up once per configuration instead of per run.

Environment knobs:

* ``REPRO_BENCH_SCALE``   — dataset scale factor (default 0.25; the paper
  ran on the full dumps, see DESIGN.md for the substitution note),
* ``REPRO_BENCH_QUERIES`` — query sets averaged per configuration
  (default 3; the paper averaged 100 x 10 regions).
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

import numpy as np

from repro import MACEngine, MACRequest, PreferenceRegion, datasets
from repro.errors import DatasetError, QueryError

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))

#: Scaled Table III grids (paper values in comments).
K_VALUES = (4, 6, 8, 10)  # paper: 4, 8, 16, 32, 64
D_VALUES = (2, 3, 4, 5)  # paper: 2..6
Q_VALUES = (1, 2, 4, 8)  # paper: 1, 4, 8, 16, 32
J_VALUES = (2, 5, 10, 20)  # paper: 5, 10, 20, 40, 60
SIGMA_VALUES = (0.001, 0.005, 0.01, 0.05)  # paper: 0.1%..10%

#: Scaled defaults (paper defaults: k=16, |Q|=8, j=20, d=3, sigma=1%).
DEFAULT_K = 6
DEFAULT_D = 3
DEFAULT_Q = 4
DEFAULT_J = 5
DEFAULT_SIGMA = 0.01

ALGORITHMS = ("GS-NC", "GS-T", "LS-NC", "LS-T")

RESULTS_DIR = Path(__file__).parent / "results"

_dataset_cache: dict = {}
_query_cache: dict = {}
_engine_cache: dict = {}


def t_values_for(ds) -> tuple[float, ...]:
    """Registry t-sweep scaled with the road extent (sqrt of the scale)."""
    f = math.sqrt(SCALE)
    return tuple(round(t * f, 1) for t in ds.t_values)


def default_t_for(ds) -> float:
    return round(ds.default_t * math.sqrt(SCALE), 1)


def load(name: str, dimensions: int = DEFAULT_D, kind: str | None = None):
    key = (name, dimensions, kind, SCALE)
    if key not in _dataset_cache:
        _dataset_cache[key] = datasets.load_dataset(
            name, scale=SCALE, dimensions=dimensions,
            attribute_kind=kind, seed=7,
        )
    return _dataset_cache[key]


def make_region(d: int, sigma: float) -> PreferenceRegion:
    """Axis-parallel hypercube of side ``sigma`` centered inside the
    simplex (center 0.9/d per reduced axis keeps every sweep feasible)."""
    center = [0.9 / d] * (d - 1)
    return PreferenceRegion.centered(center, sigma)


def queries_for(ds, size: int, k: int, t: float) -> list[tuple[int, ...]]:
    """NUM_QUERIES satisfiable query sets (cached; skips hard seeds)."""
    key = (ds.name, ds.network.social.dimensionality, size, k, round(t, 1))
    if key in _query_cache:
        return _query_cache[key]
    out = []
    seed = 0
    while len(out) < NUM_QUERIES and seed < NUM_QUERIES * 20:
        try:
            out.append(ds.suggest_query(size, k=k, t=t, seed=seed))
        except DatasetError:
            pass
        seed += 1
    _query_cache[key] = out
    return out


def engine_for(ds) -> MACEngine:
    """One long-lived MACEngine per loaded dataset.

    Every timed run of the same configuration grid goes through the same
    engine, so repeated (Q, k, t) combinations — e.g. the four named
    algorithms over one query set — stop paying the range-filter /
    core / dominance-graph build cost more than once.  Result caching
    is disabled: a timed run must execute its search, not replay a
    finished one from an earlier panel with the same configuration.
    """
    key = id(ds.network)
    if key not in _engine_cache:
        _engine_cache[key] = MACEngine(ds.network, result_cache_size=0)
    return _engine_cache[key]


def timed_search(ds, query, k, t, region, j, algorithm_name):
    """Run one named algorithm; returns (seconds, result).

    The prepared stages are warmed *outside* the timed window, so every
    algorithm is measured over the same amortized state — otherwise
    whichever algorithm happens to run a configuration first would be
    charged the one-off filter/core/dominance build cost.
    """
    algo = "global" if algorithm_name.startswith("GS") else "local"
    problem = "topj" if algorithm_name.endswith("-T") else "nc"
    engine = engine_for(ds)
    try:
        request = MACRequest.make(
            query, k, t, region,
            j=j if problem == "topj" else 1,
            algorithm=algo, problem=problem,
            max_partitions=200_000,
            time_budget=90.0,
            label=algorithm_name,
        )
        engine.warm(request)
        start = time.perf_counter()
        result = engine.search(request)
    except QueryError:
        return math.nan, None
    return time.perf_counter() - start, result


def average_times(ds, k, t, region, j, q_size, algorithms=ALGORITHMS):
    """Average per-algorithm time over the cached query sets."""
    queries = queries_for(ds, q_size, k, t)
    sums = {a: 0.0 for a in algorithms}
    counts = {a: 0 for a in algorithms}
    extras: dict = {}
    for q in queries:
        for a in algorithms:
            elapsed, result = timed_search(ds, q, k, t, region, j, a)
            if not math.isnan(elapsed):
                sums[a] += elapsed
                counts[a] += 1
                extras.setdefault(a, []).append(result)
    avg = {
        a: (sums[a] / counts[a] if counts[a] else math.nan)
        for a in algorithms
    }
    return avg, extras


def fmt(value) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def emit(figure: str, title: str, header: list[str], rows: list[list]):
    """Print a series table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    widths = [
        max(len(str(h)), *(len(fmt(r[i])) for r in rows)) + 2
        for i, h in enumerate(header)
    ]
    lines = [f"== {figure}: {title} (scale={SCALE}, queries={NUM_QUERIES})"]
    lines.append("".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append(
            "".join(fmt(v).ljust(w) for v, w in zip(row, widths))
        )
    text = "\n".join(lines)
    print("\n" + text)
    path = RESULTS_DIR / f"{figure.lower().replace(' ', '_')}.txt"
    with open(path, "a") as f:
        f.write(text + "\n\n")
    return text


def standard_panels(figure: str, dataset_name: str, benchmark=None,
                    kind: str | None = None):
    """The six panels (a)-(f) shared by Figs. 6-10: vary k, t, d, |Q|,
    j, sigma around the scaled defaults."""
    ds = load(dataset_name, kind=kind)
    t0 = default_t_for(ds)

    def panel_k():
        rows = []
        for k in K_VALUES:
            region = make_region(DEFAULT_D, DEFAULT_SIGMA)
            avg, _ = average_times(ds, k, t0, region, DEFAULT_J, DEFAULT_Q)
            rows.append([k] + [avg[a] for a in ALGORITHMS])
        emit(f"{figure}a", f"{dataset_name}: time(s) vs k",
             ["k", *ALGORITHMS], rows)

    def panel_t():
        rows = []
        for t in t_values_for(ds):
            region = make_region(DEFAULT_D, DEFAULT_SIGMA)
            avg, _ = average_times(
                ds, DEFAULT_K, t, region, DEFAULT_J, DEFAULT_Q
            )
            rows.append([t] + [avg[a] for a in ALGORITHMS])
        emit(f"{figure}b", f"{dataset_name}: time(s) vs t",
             ["t", *ALGORITHMS], rows)

    def panel_d():
        rows = []
        for d in D_VALUES:
            ds_d = load(dataset_name, dimensions=d, kind=kind)
            region = make_region(d, DEFAULT_SIGMA)
            avg, _ = average_times(
                ds_d, DEFAULT_K, t0, region, DEFAULT_J, DEFAULT_Q
            )
            rows.append([d] + [avg[a] for a in ALGORITHMS])
        emit(f"{figure}c", f"{dataset_name}: time(s) vs d",
             ["d", *ALGORITHMS], rows)

    def panel_q():
        rows = []
        for q_size in Q_VALUES:
            region = make_region(DEFAULT_D, DEFAULT_SIGMA)
            avg, _ = average_times(
                ds, DEFAULT_K, t0, region, DEFAULT_J, q_size
            )
            rows.append([q_size] + [avg[a] for a in ALGORITHMS])
        emit(f"{figure}d", f"{dataset_name}: time(s) vs |Q|",
             ["|Q|", *ALGORITHMS], rows)

    def panel_j():
        rows = []
        for j in J_VALUES:
            region = make_region(DEFAULT_D, DEFAULT_SIGMA)
            avg, _ = average_times(
                ds, DEFAULT_K, t0, region, j, DEFAULT_Q,
                algorithms=("GS-T", "LS-T"),
            )
            rows.append([j, avg["GS-T"], avg["LS-T"]])
        emit(f"{figure}e", f"{dataset_name}: time(s) vs j",
             ["j", "GS-T", "LS-T"], rows)

    def panel_sigma():
        rows = []
        for sigma in SIGMA_VALUES:
            region = make_region(DEFAULT_D, sigma)
            avg, _ = average_times(
                ds, DEFAULT_K, t0, region, DEFAULT_J, DEFAULT_Q
            )
            rows.append([f"{sigma:.1%}"] + [avg[a] for a in ALGORITHMS])
        emit(f"{figure}f", f"{dataset_name}: time(s) vs sigma",
             ["sigma", *ALGORITHMS], rows)

    panels = [panel_k, panel_t, panel_d, panel_q, panel_j, panel_sigma]

    def run_all():
        for p in panels:
            p()

    if benchmark is not None:
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    else:
        run_all()
