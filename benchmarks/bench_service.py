"""Service benchmark: warm concurrent serving vs cold per-process queries.

Measures what the serving API exists for: one warm engine process
answering many concurrent remote queries versus the pre-service
deployment model, where every consumer pays its own index build — the
"cold per-process baseline" is a fresh engine (G-tree + full pipeline)
answering a single query, exactly what each request costs when every
caller boots its own process.

The warm side drives a live ``MACService`` over HTTP with several
blocking ``ServiceClient`` threads, measuring sustained end-to-end
throughput (JSON encoding, admission path, socket round trips) twice:

* **hot** — clients replay an identical request mix, the
  repeated-query serving case (result-cache hits);
* **search** — every request is semantically unique, so each one runs
  the full search phase on warm prepared stages (result-cache misses);
  this is the conservative number and the one the >= 3x floor is
  asserted on in full (non ``--quick``) runs.

Also asserts the serving contract on budgets: a deadline-carrying
request against cold pipeline stages fails *typed*
(``DeadlineExceeded``) and fast — never a hang.  Emits
``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from repro import MACEngine, MACRequest, PreferenceRegion, datasets
from repro.errors import DeadlineExceeded
from repro.service import MACService, ServiceClient

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

DATASET = "fl+yelp"


def build_requests(ds, scale: float, k: int) -> list[MACRequest]:
    """A mixed workload: several query sets and two coreness levels."""
    d = ds.network.social.dimensionality
    t = ds.default_t * scale ** 0.5
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    requests = []
    for seed in (1, 2, 3):
        query = ds.suggest_query(4, k=k, t=t, seed=seed)
        requests.append(MACRequest.make(
            query, k, t, region, algorithm="local", label=f"q{seed}-k{k}",
        ))
    query = ds.suggest_query(3, k=k - 1, t=t, seed=1)
    requests.append(MACRequest.make(
        query, k - 1, t, region, algorithm="local", label=f"q1-k{k - 1}",
    ))
    return requests


def measure_cold(args, requests) -> float:
    """Mean seconds for a fresh process to answer one query.

    Dataset generation is excluded (it is input loading, not index
    building); the engine construction, G-tree build, and full pipeline
    are all inside the timed window — the cost every new process pays
    before its first answer.
    """
    samples = []
    for request in requests:
        ds = datasets.load_dataset(DATASET, scale=args.scale, seed=7)
        start = time.perf_counter()
        engine = MACEngine(ds.network, use_gtree=True)
        engine.search(request)
        samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples)


def distinct_variant(request: MACRequest, serial: int) -> MACRequest:
    """A semantically-unique spelling of ``request`` with identical work.

    ``time_budget`` is part of the result-cache identity but is never
    consulted by the local search, so bumping it per call forces a
    result-cache miss (the full search phase re-runs on the warm
    prepared stages) without changing what is computed — the clean way
    to measure warm *search* throughput rather than cache-hit echo.
    """
    return MACRequest.make(
        request.query, request.k, request.t, request.region,
        algorithm=request.algorithm, label=f"{request.label}-v{serial}",
        time_budget=3600.0 + serial,
    )


def drive_concurrent(
    args, service, requests, make_request
) -> tuple[float, int, dict]:
    """(wall seconds, completed, metrics): clients hammering a service.

    ``make_request(worker_id, round_no, index, base)`` produces each
    issued request, so callers choose between replaying the identical
    mix (hot path) and unique-per-call variants (search path).
    """
    errors: list = []
    port = service.port
    barrier = threading.Barrier(args.clients + 1)

    def worker(worker_id: int) -> None:
        try:
            with ServiceClient(port=port) as client:
                barrier.wait(timeout=30)
                for round_no in range(args.rounds):
                    for index, base in enumerate(requests):
                        client.search(
                            make_request(worker_id, round_no, index, base)
                        )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((worker_id, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(args.clients)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    with ServiceClient(port=port) as client:
        metrics = client.metrics()
    if errors:
        raise AssertionError(f"client failures under load: {errors[:3]}")
    completed = args.clients * args.rounds * len(requests)
    return wall, completed, metrics


def check_deadline(engine, requests) -> float:
    """A budgeted request against cold stages fails typed, not hanging."""
    base = requests[0]
    doomed = MACRequest.make(
        base.query, base.k, base.t * 1.01, base.region,
        algorithm="global", deadline=1e-4, label="doomed",
    )
    service = MACService(engine, port=0, max_concurrency=2)
    with service, ServiceClient(port=service.port) as client:
        start = time.perf_counter()
        try:
            client.search(doomed)
        except DeadlineExceeded:
            elapsed = time.perf_counter() - start
        else:
            raise AssertionError(
                "deadline-carrying request did not raise DeadlineExceeded"
            )
    assert elapsed < 5.0, f"deadline abort took {elapsed:.3f}s"
    return elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, fewer rounds, no >=3x assertion (CI smoke run)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads (and server worker slots)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="request-mix repetitions per client",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"result JSON path (default {OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.15 if args.quick else 0.5
    if args.rounds is None:
        args.rounds = 5 if args.quick else 25

    ds = datasets.load_dataset(DATASET, scale=args.scale, seed=7)
    requests = build_requests(ds, args.scale, args.k)

    cold_mean = measure_cold(args, requests)
    cold_qps = 1.0 / cold_mean

    # The serving deployment: one engine, warmed once, shared by all.
    engine = MACEngine(ds.network, use_gtree=True)
    for request in requests:
        engine.search(request)
    service = MACService(
        engine, port=0,
        max_concurrency=args.clients, queue_depth=4 * args.clients,
    )
    with service:
        # search path: every request unique -> full search on warm stages
        mix_size = len(requests)

        def unique(worker_id, round_no, index, base):
            serial = (worker_id * args.rounds + round_no) * mix_size + index
            return distinct_variant(base, serial)

        search_wall, search_n, _m = drive_concurrent(
            args, service, requests, unique
        )
        # hot path: identical mix replayed -> result-cache hits
        hot_wall, hot_n, metrics = drive_concurrent(
            args, service, requests, lambda w, r, i, base: base
        )
    search_qps = search_n / search_wall if search_wall else float("inf")
    hot_qps = hot_n / hot_wall if hot_wall else float("inf")
    search_speedup = search_qps / cold_qps
    hot_speedup = hot_qps / cold_qps

    deadline_abort_s = check_deadline(engine, requests)

    results = {
        "dataset": DATASET,
        "scale": args.scale,
        "quick": args.quick,
        "k": args.k,
        "clients": args.clients,
        "rounds": args.rounds,
        "request_mix": [r.label for r in requests],
        "cold_s_mean": cold_mean,
        "cold_qps": cold_qps,
        "warm_search_wall_s": search_wall,
        "warm_search_requests": search_n,
        "warm_search_qps": search_qps,
        "warm_hot_wall_s": hot_wall,
        "warm_hot_requests": hot_n,
        "warm_hot_qps": hot_qps,
        "speedup": search_speedup,
        "speedup_hot": hot_speedup,
        "deadline_abort_s": deadline_abort_s,
        "deadline_typed_error": True,
        "server_served": metrics["service"]["served"],
        "server_rejected": metrics["service"]["rejected"],
    }

    print(f"== service: {DATASET} scale={args.scale} "
          f"mix={len(requests)} requests x {args.clients} clients "
          f"x {args.rounds} rounds")
    print(f"cold per-process   {cold_mean * 1e3:9.2f}ms/query "
          f"({cold_qps:8.1f} qps)")
    print(f"warm search        {search_wall:9.3f}s for {search_n} "
          f"unique requests ({search_qps:8.1f} qps)  {search_speedup:.1f}x")
    print(f"warm hot (cached)  {hot_wall:9.3f}s for {hot_n} repeated "
          f"requests ({hot_qps:8.1f} qps)  {hot_speedup:.1f}x")
    print(f"deadline abort     {deadline_abort_s * 1e3:9.2f}ms "
          f"(typed DeadlineExceeded)")

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        # The floor is asserted on the conservative number: unique
        # queries paying the full search phase, not cache-hit echo.
        assert search_speedup >= 3.0, (
            f"warm search serving ({search_qps:.1f} qps) is not >= 3x "
            f"the cold per-process baseline ({cold_qps:.1f} qps)"
        )
        print("asserted: warm search serving >= 3x cold per-process "
              "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
