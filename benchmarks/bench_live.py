"""Live-mutation benchmark: incremental k-core repair vs full re-peel.

The point of :mod:`repro.live` is the asymmetry this bench measures:
after a social-edge insert/delete, the classic locality theorems bound
the damage to one subcore, so repairing coreness costs a tiny bounded
traversal while the alternative — re-running Batagelj–Zaversnik — costs
O(m) every time.  An identical random toggle walk (insert if absent,
delete if present) is replayed twice over the fl+yelp social graph:
once maintaining coreness with the :mod:`repro.kernels.livecore` row
kernels, once re-peeling from scratch after every step; both end states
are asserted identical and the ratio is the committed
``live_kcore_repair`` trajectory floor.

Also measures sustained mutation throughput through the full engine
path — ``MACEngine.apply`` with warm stage caches, validation,
footprint eviction, and warm-filter repair on every batch — interleaved
with warm queries, and reports how many of those queries still answered
straight from the result cache (the dirty-region invalidation dividend).
Emits ``BENCH_live.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import MACEngine, MACRequest, PreferenceRegion, datasets
from repro.graph.core import core_decomposition
from repro.kernels import FlatGraph, core_numbers
from repro.kernels.livecore import (
    delete_edge_rows,
    insert_edge_rows,
    repair_delete_rows,
    repair_insert_rows,
)
from repro.live import add_social_edge, remove_social_edge

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_live.json"

DATASET = "fl+yelp"

#: Full-run assertion floor: incremental repair must beat the re-peel
#: by at least this factor over the whole walk.  The margin is modest at
#: this scale by construction, not by accident: fl+yelp's modal
#: coreness is 3 and that subcore spans ~70% of the graph, so a random
#: toggle usually lands somewhere whose purecore is most of the graph,
#: while the vectorized Batagelj–Zaversnik re-peel of all 8k vertices
#: costs only ~4ms.  The repair is O(affected region) vs O(m), so the
#: gap widens with graph size; ~2x on the hardest distribution at the
#: smallest interesting scale is the honest floor, not a target.
MIN_SPEEDUP = 1.5


def plan_walk(fg: FlatGraph, steps: int, rng) -> list[tuple[int, int, bool]]:
    """A reproducible toggle walk over row pairs: (u, v, insert?)."""
    edges = set()
    for u in range(fg.n):
        for v in fg.indices[fg.indptr[u]:fg.indptr[u + 1]]:
            if u < v:
                edges.add((u, int(v)))
    plan: list[tuple[int, int, bool]] = []
    while len(plan) < steps:
        u, v = (int(x) for x in rng.integers(0, fg.n, size=2))
        if u == v:
            continue
        if u > v:
            u, v = v, u
        if (u, v) in edges:
            edges.remove((u, v))
            plan.append((u, v, False))
        else:
            edges.add((u, v))
            plan.append((u, v, True))
    return plan


def bench_repair(ds, steps: int, rng) -> dict:
    graph = ds.network.social.graph
    fg0 = FlatGraph.from_adjacency(graph)
    core0 = core_numbers(fg0)
    plan = plan_walk(fg0, steps, rng)

    start = time.perf_counter()
    fg, core = fg0, core0.copy()
    for u, v, inserted in plan:
        if inserted:
            fg = insert_edge_rows(fg, u, v)
            core, _ = repair_insert_rows(fg, core, u, v)
        else:
            fg = delete_edge_rows(fg, u, v)
            core, _ = repair_delete_rows(fg, core, u, v)
    incremental_s = time.perf_counter() - start

    start = time.perf_counter()
    fg = fg0
    for u, v, inserted in plan:
        fg = (insert_edge_rows if inserted else delete_edge_rows)(fg, u, v)
        full_core = core_numbers(fg)
    full_repeel_s = time.perf_counter() - start

    np.testing.assert_array_equal(core, full_core)
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "steps": steps,
        "incremental_s": incremental_s,
        "full_repeel_s": full_repeel_s,
        "speedup": full_repeel_s / incremental_s,
    }


def bench_engine_throughput(ds, scale: float, mutations: int, rng) -> dict:
    """Sustained `MACEngine.apply` rate with warm caches + interleaved queries."""
    social = ds.network.social
    d = social.dimensionality
    t = ds.default_t * scale ** 0.5
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    query = ds.suggest_query(4, k=6, t=t, seed=1)
    request = MACRequest.make(query, 6, t, region, algorithm="local")

    engine = MACEngine(ds.network)
    engine.search(request)  # warm filter/core/dominance/result

    users = np.asarray(sorted(social.graph.vertices()))
    toggled: set[tuple[int, int]] = set()
    applied = 0
    warm_hits = 0
    queries = 0
    query_s = 0.0
    start = time.perf_counter()
    while applied < mutations:
        u, v = (int(x) for x in rng.choice(users, size=2, replace=False))
        if u > v:
            u, v = v, u
        exists = ((u, v) in toggled) ^ social.graph.has_edge(u, v)
        if exists:
            mutation = remove_social_edge(u, v)
        else:
            mutation = add_social_edge(u, v)
        engine.apply([mutation])
        toggled.symmetric_difference_update({(u, v)})
        applied += 1
        if applied % 10 == 0:
            q_start = time.perf_counter()
            result = engine.search(request)
            query_s += time.perf_counter() - q_start
            queries += 1
            if result.extra["engine"]["cache"] == {"result": "hit"}:
                warm_hits += 1
    elapsed = time.perf_counter() - start - query_s
    tel = engine.telemetry()
    return {
        "mutations": applied,
        "elapsed_s": elapsed,
        "mutations_per_s": applied / elapsed,
        "interleaved_queries": queries,
        "warm_result_hits": warm_hits,
        "cache_evicted_by_mutation": tel.cache_evicted_by_mutation,
        "repaired_entries_seen": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, no speedup assertion (CI smoke run)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"result JSON path (default {OUTPUT})",
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (
        0.15 if args.quick else 1.0
    )
    steps = args.steps if args.steps is not None else (
        30 if args.quick else 100
    )
    mutations = 60 if args.quick else 300
    rng = np.random.default_rng(7)

    ds = datasets.load_dataset(DATASET, scale=scale, seed=7)
    repair = bench_repair(ds, steps, rng)
    # python-reference cross-check on a small prefix of the same walk:
    # the dict repair and the row kernels must tell the same story
    graph = ds.network.social.graph
    assert core_decomposition(graph, backend="python") == \
        FlatGraph.from_adjacency(graph).relabel(
            core_numbers(FlatGraph.from_adjacency(graph))
        )
    throughput = bench_engine_throughput(ds, scale, mutations, rng)

    results = {
        "dataset": DATASET,
        "scale": scale,
        "quick": args.quick,
        "repair": repair,
        "repair_speedup": repair["speedup"],
        "engine_throughput": throughput,
    }

    print(f"== live mutations: {DATASET} scale={scale} steps={steps}")
    print(f"repair      incremental {repair['incremental_s'] * 1e3:8.2f}ms   "
          f"full re-peel {repair['full_repeel_s'] * 1e3:8.2f}ms   "
          f"{repair['speedup']:.1f}x")
    print(f"engine      {throughput['mutations_per_s']:8.1f} mutations/s   "
          f"({throughput['mutations']} applied, "
          f"{throughput['warm_result_hits']}/"
          f"{throughput['interleaved_queries']} interleaved queries "
          f"answered warm)")

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        assert repair["speedup"] >= MIN_SPEEDUP, (
            f"incremental repair speedup {repair['speedup']:.2f}x below "
            f"the {MIN_SPEEDUP:.1f}x floor"
        )
        print(f"asserted: incremental repair >= {MIN_SPEEDUP:.1f}x over "
              f"full re-peel")
    return 0


if __name__ == "__main__":
    sys.exit(main())
