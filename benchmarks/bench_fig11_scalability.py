"""Fig. 11: scalability internals.

(a) number of partitions of R during search vs sigma,
(b) number of non-contained MACs vs sigma,
(c) |H^t_k| vs k,
(d) memory overhead (BBS/Gd build vs GS-NC vs LS-NC) vs d on FL+Lastfm.
"""

import tracemalloc

from _harness import (
    ALGORITHMS,
    DEFAULT_D,
    DEFAULT_J,
    DEFAULT_K,
    DEFAULT_Q,
    DEFAULT_SIGMA,
    K_VALUES,
    SIGMA_VALUES,
    default_t_for,
    emit,
    load,
    make_region,
    queries_for,
    timed_search,
)

DATASETS = (
    "sf+slashdot",
    "sf+delicious",
    "fl+lastfm",
    "fl+flixster",
    "fl+yelp",
)


def test_fig11a_partitions_vs_sigma(benchmark):
    def run():
        rows = []
        for sigma in SIGMA_VALUES:
            row = [f"{sigma:.1%}"]
            for name in DATASETS:
                ds = load(name)
                t = default_t_for(ds)
                region = make_region(DEFAULT_D, sigma)
                counts = []
                for q in queries_for(ds, DEFAULT_Q, DEFAULT_K, t):
                    _e, res = timed_search(
                        ds, q, DEFAULT_K, t, region, DEFAULT_J, "GS-NC"
                    )
                    if res is not None:
                        counts.append(len(res.partitions))
                row.append(
                    sum(counts) / len(counts) if counts else float("nan")
                )
            rows.append(row)
        emit("Fig11a", "avg #partitions of R (GS-NC) vs sigma",
             ["sigma", *DATASETS], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig11b_ncmacs_vs_sigma(benchmark):
    def run():
        rows = []
        for sigma in SIGMA_VALUES:
            row = [f"{sigma:.1%}"]
            for name in DATASETS:
                ds = load(name)
                t = default_t_for(ds)
                region = make_region(DEFAULT_D, sigma)
                counts = []
                for q in queries_for(ds, DEFAULT_Q, DEFAULT_K, t):
                    _e, res = timed_search(
                        ds, q, DEFAULT_K, t, region, DEFAULT_J, "GS-NC"
                    )
                    if res is not None:
                        counts.append(len(res.nc_communities()))
                row.append(
                    sum(counts) / len(counts) if counts else float("nan")
                )
            rows.append(row)
        emit("Fig11b", "avg #non-contained MACs (GS-NC) vs sigma",
             ["sigma", *DATASETS], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig11c_htk_size_vs_k(benchmark):
    def run():
        rows = []
        for k in K_VALUES:
            row = [k]
            for name in DATASETS:
                ds = load(name)
                t = default_t_for(ds)
                sizes = []
                for q in queries_for(ds, DEFAULT_Q, k, t):
                    kt = ds.network.maximal_kt_core(q, k, t)
                    if kt is not None:
                        sizes.append(kt.num_vertices)
                row.append(sum(sizes) / len(sizes) if sizes else 0)
            rows.append(row)
        emit("Fig11c", "avg |H^t_k| vs k", ["k", *DATASETS], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig11d_memory_vs_d(benchmark):
    """Peak memory of the BBS/Gd build and of each search, per d."""
    from repro.dominance.graph import DominanceGraph

    def run():
        rows = []
        for d in (2, 3, 4, 5):
            ds = load("fl+lastfm", dimensions=d)
            t = default_t_for(ds)
            region = make_region(d, DEFAULT_SIGMA)
            queries = queries_for(ds, DEFAULT_Q, DEFAULT_K, t)
            if not queries:
                rows.append([d] + [float("nan")] * 3)
                continue
            q = queries[0]
            kt = ds.network.maximal_kt_core(q, DEFAULT_K, t)
            attrs = ds.network.social.attributes_for(kt.graph.vertices())
            tracemalloc.start()
            DominanceGraph(attrs, region)
            bbs_peak = tracemalloc.get_traced_memory()[1] / 1e6
            tracemalloc.stop()
            peaks = []
            for algo in ("GS-NC", "LS-NC"):
                tracemalloc.start()
                timed_search(ds, q, DEFAULT_K, t, region, DEFAULT_J, algo)
                peaks.append(tracemalloc.get_traced_memory()[1] / 1e6)
                tracemalloc.stop()
            rows.append([d, bbs_peak, peaks[0], peaks[1]])
        emit("Fig11d", "peak memory (MB) vs d on FL+Lastfm",
             ["d", "BBS/Gd", "GS-NC", "LS-NC"], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)


_ = ALGORITHMS  # re-exported grids documented in the module docstring
