"""Shared runner for the Figs. 13-14 method comparison.

Protocol (Section VII, Exp-3): Influ and Influ+ capture only one
numerical attribute, so each query samples weight vectors inside R,
scores every vertex by the weighted sum of its d attributes, and runs
the 1-d influential search per sample; the average time is reported.
Sky/Sky+ are weight-free; their cost explodes with d (reported as
"Inf" once the operation budget is exhausted — matching the paper's
"Inf" markers for d >= 3 / d >= 5).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.baselines.influential import ICPIndex, influ_nc
from repro.baselines.skyline import SkylineBudgetExceeded, skyline_communities
from repro.geometry.halfspace import score

from _harness import (
    DEFAULT_D,
    DEFAULT_J,
    DEFAULT_K,
    DEFAULT_Q,
    DEFAULT_SIGMA,
    K_VALUES,
    default_t_for,
    emit,
    load,
    make_region,
    queries_for,
    timed_search,
)

NUM_WEIGHT_SAMPLES = 5  # paper: 100
SKY_BUDGET = 20_000

METHODS = ("Influ", "Influ+", "Sky", "Sky+", "GS-NC", "LS-NC")


def _filtered_graph(ds, q, t):
    kept = ds.network.query_distance_filter(q, t)
    return ds.network.social.graph.subgraph(kept)


def _weighted_scores(ds, graph, w_reduced):
    attrs = ds.network.social.attributes
    return {v: score(attrs[v], w_reduced) for v in graph.vertices()}


def _run_influ(ds, graph, q, k, region, index=None):
    rng = np.random.default_rng(0)
    samples = region.sample(rng, NUM_WEIGHT_SAMPLES)
    start = time.perf_counter()
    for w in samples:
        weights = _weighted_scores(ds, graph, w)
        if index is not None:
            idx = index(weights)
            idx.query(k, query=q)
        else:
            influ_nc(graph, weights, k, q)
    return (time.perf_counter() - start) / NUM_WEIGHT_SAMPLES


def _run_influ_plus(ds, graph, q, k, region):
    """ICP-index: construction is offline; only lookups are timed."""
    rng = np.random.default_rng(0)
    samples = region.sample(rng, NUM_WEIGHT_SAMPLES)
    indexes = [
        ICPIndex(graph, _weighted_scores(ds, graph, w), [k])
        for w in samples
    ]
    start = time.perf_counter()
    for idx in indexes:
        idx.query(k, query=q)
    return (time.perf_counter() - start) / NUM_WEIGHT_SAMPLES


def _run_sky(ds, graph, k, d, prune):
    attrs = ds.network.social.attributes
    sub_attrs = {v: attrs[v] for v in graph.vertices()}
    start = time.perf_counter()
    try:
        skyline_communities(
            graph, sub_attrs, k, dims=d, prune=prune, budget=SKY_BUDGET
        )
    except SkylineBudgetExceeded:
        return math.inf
    return time.perf_counter() - start


def comparison_rows(dataset_name: str, vary: str):
    ds = load(dataset_name)
    t = default_t_for(ds)
    rows = []
    if vary == "k":
        grid = K_VALUES
    else:
        grid = (2, 3, 4, 5)
    for value in grid:
        k = value if vary == "k" else DEFAULT_K
        d = DEFAULT_D if vary == "k" else value
        ds_d = ds if d == DEFAULT_D else load(dataset_name, dimensions=d)
        region = make_region(d, DEFAULT_SIGMA)
        queries = queries_for(ds_d, DEFAULT_Q, k, t)
        sums = {m: 0.0 for m in METHODS}
        counts = {m: 0 for m in METHODS}
        for q in queries:
            graph = _filtered_graph(ds_d, q, t)
            timings = {
                "Influ": _run_influ(ds_d, graph, q, k, region),
                "Influ+": _run_influ_plus(ds_d, graph, q, k, region),
                "Sky": _run_sky(ds_d, graph, k, d, prune=False),
                "Sky+": _run_sky(ds_d, graph, k, d, prune=True),
                "GS-NC": timed_search(
                    ds_d, q, k, t, region, DEFAULT_J, "GS-NC"
                )[0],
                "LS-NC": timed_search(
                    ds_d, q, k, t, region, DEFAULT_J, "LS-NC"
                )[0],
            }
            for m, v in timings.items():
                if not math.isnan(v):
                    sums[m] += v
                    counts[m] += 1
        row = [value]
        for m in METHODS:
            avg = sums[m] / counts[m] if counts[m] else math.nan
            row.append("Inf" if math.isinf(avg) else avg)
        rows.append(row)
    return rows


def run_comparison(figure: str, dataset_name: str, benchmark):
    def run():
        rows_k = comparison_rows(dataset_name, "k")
        emit(f"{figure}b", f"{dataset_name}: method time(s) vs k",
             ["k", *METHODS], rows_k)
        rows_d = comparison_rows(dataset_name, "d")
        emit(f"{figure}c", f"{dataset_name}: method time(s) vs d",
             ["d", *METHODS], rows_d)

    benchmark.pedantic(run, rounds=1, iterations=1)
