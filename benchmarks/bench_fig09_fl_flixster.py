"""Fig. 9: efficiency/scalability on FL+Flixster (independent attrs)."""

from _harness import standard_panels


def test_fig09_fl_flixster(benchmark):
    standard_panels("Fig09", "fl+flixster", benchmark)
