"""Fig. 10: efficiency/scalability on FL+Yelp ("real" zero-inflated,
correlated attributes).

Expected shape (paper Exp-6 discussion): although Yelp's H^t_k is the
largest, correlated real attributes produce a near-chain r-dominance DAG
with few branches, so queries run *faster* than on Flixster.
"""

from _harness import standard_panels


def test_fig10_fl_yelp(benchmark):
    standard_panels("Fig10", "fl+yelp", benchmark, kind="real")
