"""Worker-tier benchmark: multi-process scaling of warm non-cached search.

The serving bench (``bench_service.py``) tops out at the GIL: engine
stages are pure Python + numpy, so its thread executor serializes and
warm *search* throughput stays near single-core no matter how many
clients arrive.  This bench measures the tier that escapes that
ceiling — ``repro.pool``'s forked worker processes — by driving
``WorkerPool.search_wire`` directly (no HTTP layer) with semantically
unique requests, so every call pays the full search phase on warm
prepared stages (result-cache misses), at worker widths 1/2/4.

Because CI machines differ in core count, the committed floor is
**parallel efficiency** — measured scaling at the widest tier divided
by the cores that could have helped, ``min(width, cpus)`` — rather than
a raw 4-vs-1 ratio: on a >= 4-core box the 0.625 full-run floor is
exactly the "4 workers >= 2.5x one worker" contract, while on a
single-core box (where no process tier can beat 1x) it degrades to
"the tier must not cost throughput".  ``cpus`` is recorded in the
output so the number can always be re-interpreted.

Also probes the supervision contract under load: a SIGKILLed worker
fails only its in-flight request (typed ``WorkerCrashed``), the slot
refills from the pre-fork engine, and the pool never hangs.  Emits
``BENCH_pool.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from bench_service import DATASET, build_requests, distinct_variant

from repro import MACEngine, datasets
from repro.errors import WorkerCrashed
from repro.pool import FaultPlan, WorkerPool

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pool.json"


def drive_pool(pool, requests, threads: int, rounds: int) -> tuple[float, int]:
    """(wall seconds, completed): client threads hammering the tier."""
    errors: list = []
    barrier = threading.Barrier(threads + 1)
    mix = len(requests)

    def worker(worker_id: int) -> None:
        try:
            barrier.wait(timeout=60)
            for round_no in range(rounds):
                for index, base in enumerate(requests):
                    serial = (worker_id * rounds + round_no) * mix + index
                    pool.search_wire(distinct_variant(base, serial))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((worker_id, repr(exc)))

    workers = [
        threading.Thread(target=worker, args=(i,)) for i in range(threads)
    ]
    for t in workers:
        t.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for t in workers:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise AssertionError(f"pool failures under load: {errors[:3]}")
    return wall, threads * rounds * mix


def probe_restart(engine, requests) -> dict:
    """SIGKILL a worker mid-request: typed failure, prompt recovery."""
    with WorkerPool(engine, 2) as pool:
        in_flight = pool.submit_op(0, "sleep", 60.0)
        victim_pid = pool.pool_wire()["workers"][0]["pid"]
        killed_at = time.perf_counter()
        os.kill(victim_pid, signal.SIGKILL)
        try:
            in_flight.result(timeout=30)
            raise AssertionError("in-flight request on a killed worker "
                                 "did not fail")
        except WorkerCrashed:
            failed_typed_s = time.perf_counter() - killed_at
        while pool.workers_wire()["alive"] < 2:
            time.sleep(0.02)
            if time.perf_counter() - killed_at > 30:
                raise AssertionError("worker slot was not refilled")
        recovered_s = time.perf_counter() - killed_at
        # The refilled worker serves real traffic.
        pool.search_wire(distinct_variant(requests[0], 10_000_000))
        assert pool.workers_wire()["restarts"] == 1
    return {
        "failed_typed_s": failed_typed_s,
        "recovered_s": recovered_s,
        "typed_error": True,
    }


def probe_hedge_tail(engine, requests, count: int) -> dict:
    """Tail-latency probe: one persistent straggler worker out of two.

    Every search that lands on slot 0 gets its reply delayed by 0.5s —
    the shape of a worker degraded by paging, a noisy neighbour, or a
    failing disk.  The same serial request stream is driven through an
    unhedged pool and through one with ``hedge_after=0.05``; hedging
    must collapse the p99 (the hedge lands on the healthy worker and
    wins) without inflating the p50.
    """
    variants = [
        distinct_variant(requests[i % len(requests)], 20_000_000 + i)
        for i in range(count)
    ]
    plan = FaultPlan.parse([
        {"kind": "delay_reply", "slot": 0, "op": "search",
         "after": n, "seconds": 0.5, "incarnation": None}
        for n in range(1, count + 1)
    ])
    out: dict = {}
    for mode, hedge_after in (("unhedged", None), ("hedged", 0.05)):
        with WorkerPool(
            engine, 2, hedge_after=hedge_after, fault_plan=plan
        ) as pool:
            samples = []
            for request in variants:
                started = time.perf_counter()
                pool.search_wire(request)
                samples.append(time.perf_counter() - started)
            stats = pool.pool_wire()
        samples.sort()
        out[mode] = {
            "requests": len(samples),
            "p50_s": samples[len(samples) // 2],
            "p99_s": samples[min(len(samples) - 1,
                                 int(len(samples) * 0.99))],
            "hedges": stats["hedges"],
            "hedge_wins": stats["hedge_wins"],
        }
    out["tail_ratio"] = (
        out["unhedged"]["p99_s"] / max(out["hedged"]["p99_s"], 1e-9)
    )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, widths 1/2, no efficiency assertion (CI run)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="request-mix repetitions per driver thread",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"result JSON path (default {OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.15 if args.quick else 0.5
    if args.rounds is None:
        args.rounds = 3 if args.quick else 12
    widths = [1, 2] if args.quick else [1, 2, 4]
    cpus = len(os.sched_getaffinity(0))

    ds = datasets.load_dataset(DATASET, scale=args.scale, seed=7)
    requests = build_requests(ds, args.scale, args.k)

    # One parent engine, warmed once; every pool below forks from it, so
    # all widths inherit identical prepared stages (and identical result
    # caches — which the per-call distinct variants then bypass).
    engine = MACEngine(ds.network, use_gtree=True)
    for request in requests:
        engine.search(request)

    print(f"== pool: {DATASET} scale={args.scale} "
          f"mix={len(requests)} requests, rounds={args.rounds}, "
          f"cpus={cpus}")
    tiers = {}
    for width in widths:
        threads = max(4, 2 * width)  # keep every worker's queue non-empty
        with WorkerPool(engine, width) as pool:
            wall, completed = drive_pool(
                pool, requests, threads, args.rounds
            )
            stats = pool.pool_wire()
        qps = completed / wall if wall else float("inf")
        tiers[str(width)] = {
            "workers": width,
            "driver_threads": threads,
            "requests": completed,
            "wall_s": wall,
            "qps": qps,
            "dispatched": stats["dispatched"],
        }
        print(f"{width} worker(s)    {wall:9.3f}s for {completed} unique "
              f"requests ({qps:8.1f} qps)")

    base_qps = tiers[str(widths[0])]["qps"]
    for tier in tiers.values():
        tier["scaling"] = tier["qps"] / base_qps
    max_width = widths[-1]
    scaling_max = tiers[str(max_width)]["scaling"]
    # Cores that could have helped the widest tier: the efficiency
    # denominator that makes the floor portable across CI machines.
    usable = min(max_width, cpus)
    efficiency = scaling_max / usable

    restart = probe_restart(engine, requests)
    hedge = probe_hedge_tail(engine, requests, 16 if args.quick else 30)
    print(f"scaling        {scaling_max:.2f}x at {max_width} workers "
          f"({cpus} cpu(s) -> efficiency {efficiency:.2f})")
    print(f"restart probe  typed fail {restart['failed_typed_s'] * 1e3:.0f}ms, "
          f"slot refilled {restart['recovered_s'] * 1e3:.0f}ms")
    print(f"hedge probe    p99 {hedge['unhedged']['p99_s'] * 1e3:.0f}ms "
          f"unhedged -> {hedge['hedged']['p99_s'] * 1e3:.0f}ms hedged "
          f"({hedge['tail_ratio']:.1f}x, "
          f"{hedge['hedged']['hedge_wins']}/{hedge['hedged']['hedges']} "
          f"hedges won)")

    results = {
        "dataset": DATASET,
        "scale": args.scale,
        "quick": args.quick,
        "k": args.k,
        "rounds": args.rounds,
        "cpus": cpus,
        "request_mix": [r.label for r in requests],
        "tiers": tiers,
        "max_width": max_width,
        "scaling_max": scaling_max,
        "efficiency": efficiency,
        "supervised_restart": restart,
        "hedge_tail": hedge,
        "hedge_tail_ratio": hedge["tail_ratio"],
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        # On >= 4 cores this is exactly "4 workers >= 2.5x one"; on
        # narrower machines it asserts the tier costs nothing.
        assert efficiency >= 0.625, (
            f"parallel efficiency {efficiency:.2f} < 0.625 "
            f"(scaling {scaling_max:.2f}x at {max_width} workers "
            f"on {cpus} cpu(s))"
        )
        print("asserted: parallel efficiency >= 0.625 "
              "(>= 2.5x at 4 workers on >= 4 cores)")
        # The straggler injects a 0.5s tail; the hedge must cut the p99
        # by at least 2x (it lands on the healthy worker in ~0.05s).
        assert hedge["tail_ratio"] >= 2.0, (
            f"hedged p99 only {hedge['tail_ratio']:.2f}x better than "
            f"unhedged (expected >= 2.0x)"
        )
        print("asserted: hedged p99 >= 2.0x better under one straggler")
    return 0


if __name__ == "__main__":
    sys.exit(main())
