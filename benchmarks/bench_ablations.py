"""Ablations of this reproduction's design choices (see DESIGN.md §4).

(a) GS refinement: the paper's full leaf-pair arrangement vs the
    lower-envelope variant (same non-contained MACs, fewer partitions);
(b) the Lemma-1 range filter: per-query bounded Dijkstra vs the G-tree
    index (identical output, different cost);
(c) LS knobs: Eq. 3 vs Eq. 4 expansion and fast vs chain certification.
"""

import time

from repro import mac_search

from _harness import (
    DEFAULT_D,
    DEFAULT_K,
    DEFAULT_Q,
    SIGMA_VALUES,
    default_t_for,
    emit,
    load,
    make_region,
    queries_for,
)


def test_ablation_refinement(benchmark):
    """Arrangement (paper) vs lower envelope: time and #partitions."""

    def run():
        ds = load("sf+slashdot")
        t = default_t_for(ds)
        rows = []
        for sigma in SIGMA_VALUES:
            region = make_region(DEFAULT_D, sigma)
            agg = {"arrangement": [0.0, 0], "envelope": [0.0, 0]}
            ncs = {}
            for q in queries_for(ds, DEFAULT_Q, DEFAULT_K, t):
                for mode in ("arrangement", "envelope"):
                    start = time.perf_counter()
                    res = mac_search(
                        ds.network, q, DEFAULT_K, t, region,
                        algorithm="global", problem="nc",
                        refinement=mode, time_budget=90.0,
                    )
                    agg[mode][0] += time.perf_counter() - start
                    agg[mode][1] += len(res.partitions)
                    ncs.setdefault(mode, set()).update(res.nc_communities())
            n = max(1, len(queries_for(ds, DEFAULT_Q, DEFAULT_K, t)))
            same = ncs.get("arrangement") == ncs.get("envelope")
            rows.append(
                [
                    f"{sigma:.1%}",
                    agg["arrangement"][0] / n,
                    agg["arrangement"][1] / n,
                    agg["envelope"][0] / n,
                    agg["envelope"][1] / n,
                    "yes" if same else "NO",
                ]
            )
        emit(
            "AblationA",
            "GS refinement: arrangement vs lower envelope (sf+slashdot)",
            ["sigma", "arr time", "arr #part", "env time", "env #part",
             "same NC-MACs"],
            rows,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_range_filter(benchmark):
    """Dijkstra vs G-tree backends of the Lemma-1 filter."""

    def run():
        ds = load("fl+lastfm")
        rows = []
        queries = queries_for(ds, DEFAULT_Q, DEFAULT_K, default_t_for(ds))
        ds.network.build_gtree()  # build once, outside the timing
        for t_val in (
            default_t_for(ds) * f for f in (0.5, 1.0, 1.5, 2.0)
        ):
            times = {"dijkstra": 0.0, "gtree": 0.0}
            kept = {"dijkstra": 0, "gtree": 0}
            for q in queries:
                start = time.perf_counter()
                a = ds.network.query_distance_filter(q, t_val)
                times["dijkstra"] += time.perf_counter() - start
                start = time.perf_counter()
                b = ds.network.query_distance_filter(
                    q, t_val, use_gtree=True
                )
                times["gtree"] += time.perf_counter() - start
                kept["dijkstra"] += len(a)
                kept["gtree"] += len(b)
                assert set(a) == set(b)
            n = max(1, len(queries))
            rows.append(
                [
                    round(t_val, 1),
                    times["dijkstra"] / n,
                    times["gtree"] / n,
                    kept["dijkstra"] // n,
                ]
            )
        emit(
            "AblationB",
            "range filter: Dijkstra vs G-tree (fl+lastfm)",
            ["t", "dijkstra", "gtree", "avg kept users"],
            rows,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_local_search_knobs(benchmark):
    """Eq. 3 vs Eq. 4 expansion; fast vs chain certification."""

    def run():
        ds = load("sf+slashdot")
        t = default_t_for(ds)
        region = make_region(DEFAULT_D, 0.01)
        variants = [
            ("eq3", "fast"),
            ("eq4", "fast"),
            ("eq3", "chain"),
        ]
        rows = []
        for strategy, certification in variants:
            total, found = 0.0, 0
            count = 0
            for q in queries_for(ds, DEFAULT_Q, DEFAULT_K, t):
                start = time.perf_counter()
                res = mac_search(
                    ds.network, q, DEFAULT_K, t, region,
                    algorithm="local", problem="nc",
                    strategy=strategy, certification=certification,
                )
                total += time.perf_counter() - start
                found += len(res.nc_communities())
                count += 1
            rows.append(
                [
                    f"{strategy}/{certification}",
                    total / max(1, count),
                    found / max(1, count),
                ]
            )
        emit(
            "AblationC",
            "LS knobs: expansion strategy x certification (sf+slashdot)",
            ["variant", "time", "avg NC-MACs found"],
            rows,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
