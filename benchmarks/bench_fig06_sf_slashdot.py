"""Fig. 6: efficiency/scalability on SF+Slashdot (independent attributes).

Six panels: query time vs k, t, d, |Q|, j and sigma for GS-T/GS-NC/
LS-T/LS-NC.  Expected shapes (paper): LS ~10x faster than GS at small k,
gap narrowing as k grows; time falls with k and |Q|, rises with t, d and
sigma; GS-T nearly flat in j while LS-T rises.
"""

from _harness import standard_panels


def test_fig06_sf_slashdot(benchmark):
    standard_panels("Fig06", "sf+slashdot", benchmark)
