"""Fig. 14: method comparison on FL+Flixster (independent attributes)."""

from _compare import run_comparison


def test_fig14_compare_fl_flixster(benchmark):
    run_comparison("Fig14", "fl+flixster", benchmark)
