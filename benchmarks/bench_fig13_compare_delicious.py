"""Fig. 13: method comparison on SF+Delicious (independent attributes).

Expected shape (paper): Influ/Influ+ beat GS-NC/LS-NC (no r-dominance
graph, no half-spaces); Sky/Sky+ are the most expensive and blow up
("Inf") as d grows.
"""

from _compare import run_comparison


def test_fig13_compare_sf_delicious(benchmark):
    run_comparison("Fig13", "sf+delicious", benchmark)
