"""Engine-reuse micro-benchmark: warm cached queries vs cold one-shots.

The point of :class:`repro.MACEngine` is amortization: the Lemma-1
range filter, coreness decomposition, (k,t)-core extraction and
r-dominance graph are built once per (Q, k, t, R) and then reused.
This benchmark repeats the same query workload two ways —

* **cold**: ``mac_search`` free-function calls (a fresh one-shot engine
  per call, every stage rebuilt every time), and
* **warm**: one shared engine, primed once, then the same requests again

— and *asserts* that the warm path is faster and that the engine's cache
telemetry reports hits.  Run standalone (``python
benchmarks/bench_engine_reuse.py``) or via pytest-benchmark.
"""

from __future__ import annotations

import time

from repro import MACEngine, MACRequest, mac_search

from _harness import (
    DEFAULT_D,
    DEFAULT_K,
    DEFAULT_Q,
    DEFAULT_SIGMA,
    default_t_for,
    emit,
    load,
    make_region,
    queries_for,
)

ROUNDS = 3


def _requests(ds, t, region):
    queries = queries_for(ds, DEFAULT_Q, DEFAULT_K, t)
    return [
        MACRequest.make(
            q, DEFAULT_K, t, region, algorithm="local",
            label=f"q{i}",
        )
        for i, q in enumerate(queries)
    ]


def _staged_reuse_check(ds, t, region, requests) -> int:
    """Exercise the *staged* caches (filter/core/dominance), no result cache.

    A k-sweep over one (Q, t) must build the Lemma-1 filter exactly once
    per query and hit it for every further k, while producing the same
    communities as cold one-shot calls.  Returns the filter-cache hits.
    """
    engine = MACEngine(ds.network, result_cache_size=0)
    k_values = (DEFAULT_K, DEFAULT_K + 1, DEFAULT_K + 2)
    for base in requests:
        for k in k_values:
            warm = engine.search(MACRequest.make(
                base.query, k, t, region, algorithm="local",
            ))
            cold = mac_search(
                ds.network, base.query, k, t, region, algorithm="local",
            )
            assert warm.communities() == cold.communities(), (
                f"staged-cache result diverged for k={k}"
            )
    tel = engine.telemetry()
    expected_misses = len(requests)  # one filter build per (Q, t)
    assert tel.filter.misses == expected_misses, tel.filter
    expected_hits = len(requests) * (len(k_values) - 1)
    assert tel.filter.hits == expected_hits, tel.filter
    return tel.filter.hits


def run() -> dict:
    ds = load("sf+slashdot")
    t = default_t_for(ds)
    region = make_region(DEFAULT_D, DEFAULT_SIGMA)
    requests = _requests(ds, t, region)
    assert requests, "no satisfiable benchmark queries"

    stage_hits = _staged_reuse_check(ds, t, region, requests)

    # Cold: every round pays the full pipeline via the one-shot API.
    start = time.perf_counter()
    for _round in range(ROUNDS):
        for request in requests:
            mac_search(
                ds.network, request.query, request.k, request.t,
                request.region, algorithm="local",
            )
    cold = time.perf_counter() - start

    # Warm: one engine; the priming pass pays the builds, the timed
    # rounds replay the identical workload from cache.
    engine = MACEngine(ds.network)
    for request in requests:
        engine.search(request)
    start = time.perf_counter()
    for _round in range(ROUNDS):
        for request in requests:
            engine.search(request)
    warm = time.perf_counter() - start

    tel = engine.telemetry()
    per_query = len(requests) * ROUNDS
    rows = [
        ["cold (mac_search)", cold, cold / per_query, 0],
        ["warm (engine)", warm, warm / per_query, tel.hits],
    ]
    emit(
        "EngineReuse",
        f"{per_query} repeated queries: cold one-shots vs warm engine",
        ["mode", "total(s)", "per-query(s)", "cache-hits"],
        rows,
    )
    assert tel.hits > 0, "warm runs must report cache hits"
    assert warm < cold, (
        f"warm engine runs ({warm:.3f}s) must beat cold one-shot runs "
        f"({cold:.3f}s)"
    )
    speedup = cold / warm if warm else float("inf")
    print(f"engine reuse speedup: {speedup:.1f}x "
          f"(result hits={tel.hits}, misses={tel.misses}; "
          f"staged filter hits={stage_hits})")
    return {
        "cold": cold, "warm": warm, "hits": tel.hits,
        "stage_hits": stage_hits,
    }


def test_engine_reuse(benchmark):
    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    run()
