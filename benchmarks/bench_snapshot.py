"""Snapshot benchmark: cold index build vs snapshot load-and-query.

Measures the warm-start win of ``repro.store`` on one realistic
workload: a fresh engine answering its first query (which pays the full
G-tree + range-filter + core + dominance build) against a fresh process
that ``MACEngine.load``s a snapshot of that prepared state and answers
the same query.

Emits ``BENCH_snapshot.json`` with the cold/save/load/query timings and
the ``speedup = cold / (load + query)`` ratio the CI trajectory gate
tracks.  Always asserts the warm-start contract — the first query after
load reports exactly zero filter/core/dominance build time — and, in
full (non ``--quick``) runs, that load-and-query beats the cold build.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import MACEngine, MACRequest, PreferenceRegion, datasets

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"

DATASET = "fl+yelp"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, no cold-vs-warm assertion (CI smoke run)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument("--query-size", type=int, default=4)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"result JSON path (default {OUTPUT})",
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (
        0.15 if args.quick else 0.5
    )

    ds = datasets.load_dataset(DATASET, scale=scale, seed=7)
    d = ds.network.social.dimensionality
    t = ds.default_t * scale ** 0.5
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    query = ds.suggest_query(args.query_size, k=args.k, t=t, seed=1)
    request = MACRequest.make(
        query, args.k, t, region, algorithm="local"
    )

    # Cold: a fresh engine pays the G-tree build plus every pipeline
    # stage on its first query.
    engine = MACEngine(ds.network, use_gtree=True)
    start = time.perf_counter()
    cold_result = engine.search(request)
    cold_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "snapshot"
        start = time.perf_counter()
        engine.save(snap)
        save_s = time.perf_counter() - start
        snapshot_bytes = sum(
            f.stat().st_size for f in snap.iterdir() if f.is_file()
        )

        # Warm: a pristine network object (same content), state from disk.
        ds2 = datasets.load_dataset(DATASET, scale=scale, seed=7)
        start = time.perf_counter()
        engine2 = MACEngine.load(snap, ds2.network)
        load_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_result = engine2.search(request)
        query_s = time.perf_counter() - start

    timings = warm_result.extra["engine"]["timings"]
    assert timings["filter"] == 0.0, "warm start rebuilt the range filter"
    assert timings["core"] == 0.0, "warm start rebuilt the (k,t)-core"
    assert timings["dominance"] == 0.0, "warm start rebuilt Gd"
    stage = engine2.telemetry().stage_seconds
    assert stage["filter"] == stage["core"] == stage["dominance"] == 0.0
    assert (
        [sorted(e.best.members) for e in cold_result.partitions]
        == [sorted(e.best.members) for e in warm_result.partitions]
    ), "warm-start answer differs from the cold build"

    warm_s = load_s + query_s
    speedup = cold_s / warm_s if warm_s else float("inf")
    first_query_speedup = cold_s / query_s if query_s else float("inf")
    results = {
        "dataset": DATASET,
        "scale": scale,
        "quick": args.quick,
        "k": args.k,
        "query_size": args.query_size,
        "htk_vertices": cold_result.htk_vertices,
        "cold_s": cold_s,
        "save_s": save_s,
        "load_s": load_s,
        "query_s": query_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "first_query_speedup": first_query_speedup,
        "snapshot_bytes": snapshot_bytes,
    }

    print(f"== snapshot: {DATASET} scale={scale} |H^t_k|="
          f"{cold_result.htk_vertices}")
    print(f"cold build+query   {cold_s * 1e3:9.2f}ms")
    print(f"snapshot save      {save_s * 1e3:9.2f}ms "
          f"({snapshot_bytes} bytes)")
    print(f"snapshot load      {load_s * 1e3:9.2f}ms")
    print(f"warm first query   {query_s * 1e3:9.2f}ms")
    print(f"load-and-query     {warm_s * 1e3:9.2f}ms   {speedup:.1f}x "
          f"(first query alone: {first_query_speedup:.1f}x)")
    print("asserted: zero filter/core/dominance build time after load")

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        assert speedup > 1.0, (
            f"load-and-query ({warm_s:.3f}s) did not beat the cold "
            f"build ({cold_s:.3f}s)"
        )
        print("asserted: load-and-query beats cold build")
    return 0


if __name__ == "__main__":
    sys.exit(main())
