"""Table II: dataset statistics (|V|, |E|, dg_avg, dg_max, k_max).

Paper reference values (full-scale dumps):
Slashdot 79K/0.5M dg13, Delicious 536K/1.4M dg5, Lastfm 1.2M/4.5M dg7,
Flixster 2.5M/7.9M dg6, Yelp 3.6M/9.0M dg5; SF road 175K/223K dg2.55,
FL road 1.1M/1.4M dg2.53.  The generated pairings reproduce the *shape*
(degree mean, heavy tail, core depth) at REPRO_BENCH_SCALE.
"""

from _harness import SCALE, emit, load


def test_table2_dataset_statistics(benchmark):
    def run():
        rows = []
        for name in (
            "sf+slashdot",
            "sf+delicious",
            "fl+lastfm",
            "fl+flixster",
            "fl+yelp",
        ):
            ds = load(name)
            s = ds.network.social.statistics()
            rows.append(
                [
                    name,
                    s["vertices"],
                    s["edges"],
                    s["dg_avg"],
                    s["dg_max"],
                    s["k_max"],
                    ds.network.road.num_vertices,
                    ds.network.road.num_edges,
                    round(ds.network.road.average_degree(), 2),
                ]
            )
        emit(
            "Table II",
            f"generated dataset statistics at scale {SCALE}",
            [
                "dataset", "V", "E", "dg_avg", "dg_max", "k_max",
                "road_V", "road_E", "road_dg",
            ],
            rows,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
