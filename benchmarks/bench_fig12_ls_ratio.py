"""Fig. 12: ratio of non-contained MACs found by LS-NC vs GS-NC on
FL+Lastfm, varying k and |Q|.

Expected shape (paper): the ratio decreases with k and |Q| but stays
high (~95% at the defaults).
"""

from _harness import (
    DEFAULT_D,
    DEFAULT_J,
    DEFAULT_K,
    DEFAULT_Q,
    DEFAULT_SIGMA,
    K_VALUES,
    Q_VALUES,
    default_t_for,
    emit,
    load,
    make_region,
    queries_for,
    timed_search,
)


def _ratio(ds, q, k, t, region):
    _e, gs = timed_search(ds, q, k, t, region, DEFAULT_J, "GS-NC")
    _e, ls = timed_search(ds, q, k, t, region, DEFAULT_J, "LS-NC")
    if gs is None or ls is None or not gs.nc_communities():
        return None
    gs_set = gs.nc_communities()
    ls_set = ls.nc_communities()
    assert ls_set <= gs_set, "LS must stay sound (subset of GS)"
    return len(gs_set & ls_set) / len(gs_set)


def test_fig12a_ratio_vs_k(benchmark):
    def run():
        ds = load("fl+lastfm")
        t = default_t_for(ds)
        region = make_region(DEFAULT_D, DEFAULT_SIGMA)
        rows = []
        for k in K_VALUES:
            ratios = [
                r
                for q in queries_for(ds, DEFAULT_Q, k, t)
                if (r := _ratio(ds, q, k, t, region)) is not None
            ]
            avg = sum(ratios) / len(ratios) if ratios else float("nan")
            rows.append([k, f"{avg:.0%}" if ratios else "n/a"])
        emit("Fig12a", "LS-NC / GS-NC found ratio vs k (FL+Lastfm)",
             ["k", "ratio"], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig12b_ratio_vs_q(benchmark):
    def run():
        ds = load("fl+lastfm")
        t = default_t_for(ds)
        region = make_region(DEFAULT_D, DEFAULT_SIGMA)
        rows = []
        for q_size in Q_VALUES:
            ratios = [
                r
                for q in queries_for(ds, q_size, DEFAULT_K, t)
                if (r := _ratio(ds, q, DEFAULT_K, t, region)) is not None
            ]
            avg = sum(ratios) / len(ratios) if ratios else float("nan")
            rows.append([q_size, f"{avg:.0%}" if ratios else "n/a"])
        emit("Fig12b", "LS-NC / GS-NC found ratio vs |Q| (FL+Lastfm)",
             ["|Q|", "ratio"], rows)

    benchmark.pedantic(run, rounds=1, iterations=1)
