"""Kernel micro-benchmark: ``backend="python"`` vs ``backend="flat"``.

Times the three hot kernels of the reproduction on the largest bundled
dataset (fl+yelp) and emits ``BENCH_kernels.json`` with speedup ratios
— the per-kernel perf trajectory the engine's backend choice rests on:

* **core decomposition** — batch peeling over CSR arrays vs the
  position-swap Batagelj–Zaversnik bucket walk.  Reported one-shot
  (CSR conversion included, how ``core_decomposition(backend="flat")``
  pays it) and prepared (conversion amortized, how the engine's cached
  filter stage pays it).
* **bounded Dijkstra** — flat distance table + list-indexed adjacency
  vs the dict-keyed heap loop, over vertex and mid-edge sources.
* **dominance graph** — one (n, p) corner-score matrix with vectorized
  dominator detection vs the per-vertex pairwise reference.

Each timing is best-of-``repeats``; every measured pair is also checked
for result equivalence.  ``--quick`` shrinks the dataset and drops the
speedup assertions (CI smoke); the default run asserts the flat backend
is >= 3x on prepared core decomposition and dominance construction.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from repro import datasets
from repro.dominance.graph import DominanceGraph
from repro.geometry.region import PreferenceRegion
from repro.graph.core import core_decomposition
from repro.kernels import FlatGraph, core_numbers
from repro.road.dijkstra import bounded_dijkstra
from repro.road.network import SpatialPoint

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: fl+yelp is the largest bundled pairing (Table II's biggest shapes).
DATASET = "fl+yelp"

#: Default assertion floor (acceptance: >= 3x on the prepared paths).
MIN_SPEEDUP = 3.0

#: Expected ``--quick`` speedups, committed with the results JSON as the
#: CI perf-trajectory floors (see benchmarks/check_trajectory.py, which
#: fails a run measuring below ``floor * (1 - tolerance)``).  Quick mode
#: runs at scale 0.15, where the flat graph kernels sit *below* their
#: auto-flip threshold — their honest quick floor is break-even-ish,
#: while the dominance matrix path and the snapshot warm start stay
#: decisively ahead at any scale.  Values are ~half the speedups
#: measured on a dev laptop, leaving headroom for slower CI runners.
QUICK_FLOORS = {
    "core_decomposition": 0.5,
    "bounded_dijkstra": 0.5,
    "dominance_graph": 10.0,
    "snapshot_warm_start": 1.5,
}


def best_of(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_core(ds, repeats: int) -> dict:
    graph = ds.network.social.graph
    python_s = best_of(
        lambda: core_decomposition(graph, backend="python"), repeats
    )
    one_shot_s = best_of(
        lambda: core_decomposition(graph, backend="flat"), repeats
    )
    fg = FlatGraph.from_adjacency(graph)
    prepared_s = best_of(lambda: core_numbers(fg), repeats)
    assert core_decomposition(graph, backend="flat") == \
        core_decomposition(graph, backend="python")
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "python_s": python_s,
        "flat_one_shot_s": one_shot_s,
        "flat_prepared_s": prepared_s,
        "speedup": python_s / prepared_s,
        "speedup_one_shot": python_s / one_shot_s,
    }


def bench_dijkstra(ds, repeats: int) -> dict:
    road = ds.network.road
    rng = np.random.default_rng(7)
    verts = sorted(road.vertices())
    sources: list = [int(v) for v in rng.choice(verts, size=4)]
    u = sources[0]
    v = next(iter(road.neighbors(u)))
    sources.append(SpatialPoint.on_edge(u, v, road.weight(u, v) / 2))
    bound = float(ds.default_t) * 2

    def run(backend: str):
        for src in sources:
            bounded_dijkstra(road, src, bound, backend=backend)

    road.flat()  # prepared: the engine builds the CSR view once
    python_s = best_of(lambda: run("python"), repeats)
    flat_s = best_of(lambda: run("flat"), repeats)
    for src in sources:
        a = bounded_dijkstra(road, src, bound, backend="flat")
        b = bounded_dijkstra(road, src, bound, backend="python")
        assert set(a) == set(b)
        assert all(
            math.isclose(a[v], b[v], rel_tol=1e-9, abs_tol=1e-9) for v in a
        )
    return {
        "vertices": road.num_vertices,
        "edges": road.num_edges,
        "sources": len(sources),
        "bound": bound,
        "python_s": python_s,
        "flat_s": flat_s,
        "speedup": python_s / flat_s,
    }


def bench_dominance(ds, repeats: int, num_vertices: int) -> dict:
    social = ds.network.social
    members = sorted(social.graph.vertices())[:num_vertices]
    attrs = social.attributes_for(members)
    d = social.dimensionality
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    python_s = best_of(
        lambda: DominanceGraph(attrs, region, backend="python"), repeats
    )
    flat_s = best_of(
        lambda: DominanceGraph(attrs, region, backend="flat"), repeats
    )
    flat = DominanceGraph(attrs, region, backend="flat")
    python = DominanceGraph(attrs, region, backend="python")
    assert flat.order == python.order and flat.parents == python.parents
    return {
        "vertices": len(members),
        "arcs": flat.num_arcs(),
        "python_s": python_s,
        "flat_s": flat_s,
        "speedup": python_s / flat_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale, no speedup assertions (CI smoke run)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"result JSON path (default {OUTPUT})",
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (
        0.15 if args.quick else 1.0
    )
    repeats = args.repeats if args.repeats is not None else (
        2 if args.quick else 5
    )
    ds = datasets.load_dataset(DATASET, scale=scale, seed=7)
    gd_vertices = max(50, int(1500 * scale))

    results = {
        "dataset": DATASET,
        "scale": scale,
        "repeats": repeats,
        "quick": args.quick,
        "quick_floors": QUICK_FLOORS,
        "kernels": {
            "core_decomposition": bench_core(ds, repeats),
            "bounded_dijkstra": bench_dijkstra(ds, repeats),
            "dominance_graph": bench_dominance(ds, repeats, gd_vertices),
        },
    }

    print(f"== kernels: {DATASET} scale={scale} repeats={repeats}")
    for name, entry in results["kernels"].items():
        python_s = entry["python_s"]
        flat_s = entry.get("flat_s", entry.get("flat_prepared_s"))
        line = (
            f"{name:20s} python {python_s * 1e3:8.2f}ms   "
            f"flat {flat_s * 1e3:8.2f}ms   {entry['speedup']:.1f}x"
        )
        if "speedup_one_shot" in entry:
            line += f"   (one-shot {entry['speedup_one_shot']:.1f}x)"
        print(line)

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        for name in ("core_decomposition", "dominance_graph"):
            speedup = results["kernels"][name]["speedup"]
            assert speedup >= MIN_SPEEDUP, (
                f"{name}: flat speedup {speedup:.2f}x below the "
                f"{MIN_SPEEDUP:.0f}x floor"
            )
        print(f"asserted: core + dominance flat speedups >= "
              f"{MIN_SPEEDUP:.0f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
