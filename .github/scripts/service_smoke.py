"""CI service smoke: snapshot -> `repro serve` -> scripted client session.

The end-to-end deployment path, exactly as an operator would run it:

1. build an index snapshot with the query's stages pre-warmed
   (``repro index build --warm``),
2. boot ``repro serve --snapshot`` as a real subprocess,
3. drive a scripted ``ServiceClient`` session asserting the first
   served query performs **zero index builds** (the warm-start contract
   over the wire: per-request stage timings exactly 0.0, all stage
   caches hit, engine stage_seconds all zero),
4. exercise explain/batch/metrics and a deadline-carrying request
   (typed failure, not a hang),
5. SIGTERM the server and assert a clean exit 0,
6. rebuild the snapshot uncompressed and repeat the boot with
   ``--worker-processes 2``: the worker tier must serve its first
   queries with zero index builds in *both* forked workers (merged
   fleet ``stage_seconds`` exactly 0.0), report both workers alive in
   ``/v1/healthz``, and shut down cleanly on SIGTERM too.

Run from the repo root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "src"))

from repro import MACRequest, PreferenceRegion, datasets  # noqa: E402
from repro.errors import DeadlineExceeded  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.protocol import region_to_wire  # noqa: E402

DATASET = "sf+slashdot"
SCALE = 0.1
SEED = 7
K = 4
PORT = 18642


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def run_cli(*argv: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        check=True, cwd=REPO, env=cli_env(),
    )


def boot_server(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *argv],
        cwd=REPO, env=cli_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def wait_healthy(client: ServiceClient, server: subprocess.Popen) -> dict:
    for _ in range(150):
        try:
            return client.healthz()
        except Exception:
            if server.poll() is not None:
                out, err = server.communicate()
                raise AssertionError(
                    f"server died during boot:\n{out}\n{err}"
                )
            time.sleep(0.2)
    raise AssertionError("server never became healthy")


def stop_cleanly(server: subprocess.Popen) -> str:
    if server.poll() is None:
        server.send_signal(signal.SIGTERM)
    out, err = server.communicate(timeout=30)
    assert server.returncode == 0, (
        f"server exit code {server.returncode}:\n{out}\n{err}"
    )
    assert "shutdown:" in out, out
    return out


def main() -> int:
    ds = datasets.load_dataset(DATASET, scale=SCALE, seed=SEED)
    d = ds.network.social.dimensionality
    t = ds.default_t * SCALE ** 0.5
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    query = ds.suggest_query(2, k=K, t=t, seed=1)
    request = MACRequest.make(
        query, K, t, region, algorithm="local", label="smoke",
    )

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "idx"
        warm = Path(tmp) / "warm.jsonl"
        # Two warm entries with different core keys: phase 2 routes them
        # by affinity, so they exercise (potentially) different workers.
        warm.write_text("".join(
            json.dumps({
                "query": list(query), "k": k, "t": t,
                "region": region_to_wire(region), "algorithm": "local",
            }) + "\n"
            for k in (K, K - 1)
        ))
        run_cli(
            "index", "build", "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--out", str(snapshot), "--warm", str(warm),
        )

        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(snapshot),
            "--port", str(PORT), "--workers", "2",
        )
        try:
            client = ServiceClient(port=PORT, timeout=30.0)
            health = wait_healthy(client, server)
            assert health["status"] == "ok", health

            # The warm-start contract, observed through the wire: the
            # first served query builds nothing.
            result = client.search(request)
            assert result.partitions, "warmed query answered empty"
            info = result.extra["engine"]
            timings = info["timings"]
            for stage in ("filter", "core", "dominance"):
                assert timings[stage] == 0.0, (stage, timings)
                assert info["cache"][stage] == "hit", info["cache"]
            metrics = client.metrics()
            stage_seconds = metrics["engine"]["stage_seconds"]
            for stage in ("filter", "core", "dominance"):
                assert stage_seconds[stage] == 0.0, stage_seconds
            print("first served query: zero index builds "
                  f"(cache={info['cache']})")

            plan = client.explain(request)
            assert plan.cached["filter"] and plan.cached["core"], plan.cached
            batch = client.search_batch([request, request])
            assert len(batch) == 2

            try:
                client.search(MACRequest.make(
                    query, K, t * 1.01, region,
                    algorithm="local", deadline=1e-6,
                ))
                raise AssertionError("deadline request did not fail typed")
            except DeadlineExceeded as exc:
                print(f"deadline request failed typed: {exc}")

            final = client.metrics()
            # one /v1/search + one /v1/batch admission unit served; the
            # doomed request died in the queue, counted separately
            assert final["service"]["served"] >= 2, final["service"]
            assert final["service"]["deadline_exceeded"] >= 1
            assert final["engine"]["searches"] >= 3, final["engine"]
            client.close()
        finally:
            out = stop_cleanly(server)
        print("clean shutdown confirmed:")
        print(out)

        # Phase 2: the worker tier.  Rebuild the snapshot uncompressed
        # (the mmap-able layout the forked workers page-share) and boot
        # the same deployment with two worker processes.
        pool_snapshot = Path(tmp) / "idx-mmap"
        run_cli(
            "index", "build", "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--out", str(pool_snapshot),
            "--warm", str(warm), "--no-compress",
        )
        pool_port = PORT + 1
        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(pool_snapshot),
            "--port", str(pool_port), "--worker-processes", "2",
        )
        try:
            client = ServiceClient(port=pool_port, timeout=30.0)
            health = wait_healthy(client, server)
            assert health["status"] == "ok", health
            workers = health["workers"]
            assert workers["alive"] == 2 and workers["total"] == 2, workers
            assert health["snapshot"]["fingerprint"], health
            for entry in workers["workers"]:
                assert entry["fingerprint"] == health["snapshot"]["fingerprint"]

            # Zero index builds on first contact, in both forked
            # workers: two requests with different core keys land on
            # (potentially) different workers, each must be all-hit,
            # and the *merged* fleet stage_seconds stays exactly 0.0 —
            # if either worker had built anything, the merge would show
            # it.
            sibling = MACRequest.make(
                query, K - 1, t, region, algorithm="local", label="smoke-b",
            )
            for probe in (request, sibling):
                result = client.search(probe)
                assert result.partitions, "warmed query answered empty"
                info = result.extra["engine"]
                for stage in ("filter", "core", "dominance"):
                    assert info["timings"][stage] == 0.0, info["timings"]
                    assert info["cache"][stage] == "hit", info["cache"]
            metrics = client.metrics()
            assert metrics["service"]["executor"] == "pool", metrics["service"]
            assert metrics["service"]["worker_processes"] == 2
            assert metrics["pool"]["restarts"] == 0, metrics["pool"]
            stage_seconds = metrics["engine"]["stage_seconds"]
            for stage in ("filter", "core", "dominance"):
                assert stage_seconds[stage] == 0.0, stage_seconds
            print("worker tier: first queries built nothing in either "
                  f"worker (merged stage_seconds={stage_seconds})")
            client.close()
        finally:
            out = stop_cleanly(server)
        assert "worker process(es)" in out, out
        print("worker-tier clean shutdown confirmed:")
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
