"""CI service smoke: snapshot -> `repro serve` -> scripted client session.

The end-to-end deployment path, exactly as an operator would run it:

1. build an index snapshot with the query's stages pre-warmed
   (``repro index build --warm``),
2. boot ``repro serve --snapshot`` as a real subprocess,
3. drive a scripted ``ServiceClient`` session asserting the first
   served query performs **zero index builds** (the warm-start contract
   over the wire: per-request stage timings exactly 0.0, all stage
   caches hit, engine stage_seconds all zero),
4. exercise explain/batch/metrics and a deadline-carrying request
   (typed failure, not a hang),
5. SIGTERM the server and assert a clean exit 0.

Run from the repo root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "src"))

from repro import MACRequest, PreferenceRegion, datasets  # noqa: E402
from repro.errors import DeadlineExceeded  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.protocol import region_to_wire  # noqa: E402

DATASET = "sf+slashdot"
SCALE = 0.1
SEED = 7
K = 4
PORT = 18642


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def run_cli(*argv: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        check=True, cwd=REPO, env=cli_env(),
    )


def main() -> int:
    ds = datasets.load_dataset(DATASET, scale=SCALE, seed=SEED)
    d = ds.network.social.dimensionality
    t = ds.default_t * SCALE ** 0.5
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    query = ds.suggest_query(2, k=K, t=t, seed=1)
    request = MACRequest.make(
        query, K, t, region, algorithm="local", label="smoke",
    )

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "idx"
        warm = Path(tmp) / "warm.jsonl"
        warm.write_text(json.dumps({
            "query": list(query), "k": K, "t": t,
            "region": region_to_wire(region), "algorithm": "local",
        }) + "\n")
        run_cli(
            "index", "build", "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--out", str(snapshot), "--warm", str(warm),
        )

        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--dataset", DATASET, "--scale", str(SCALE),
             "--seed", str(SEED), "--snapshot", str(snapshot),
             "--port", str(PORT), "--workers", "2"],
            cwd=REPO, env=cli_env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            client = ServiceClient(port=PORT, timeout=30.0)
            for _ in range(150):
                try:
                    health = client.healthz()
                    break
                except Exception:
                    if server.poll() is not None:
                        out, err = server.communicate()
                        raise AssertionError(
                            f"server died during boot:\n{out}\n{err}"
                        )
                    time.sleep(0.2)
            else:
                raise AssertionError("server never became healthy")
            assert health["status"] == "ok", health

            # The warm-start contract, observed through the wire: the
            # first served query builds nothing.
            result = client.search(request)
            assert result.partitions, "warmed query answered empty"
            info = result.extra["engine"]
            timings = info["timings"]
            for stage in ("filter", "core", "dominance"):
                assert timings[stage] == 0.0, (stage, timings)
                assert info["cache"][stage] == "hit", info["cache"]
            metrics = client.metrics()
            stage_seconds = metrics["engine"]["stage_seconds"]
            for stage in ("filter", "core", "dominance"):
                assert stage_seconds[stage] == 0.0, stage_seconds
            print("first served query: zero index builds "
                  f"(cache={info['cache']})")

            plan = client.explain(request)
            assert plan.cached["filter"] and plan.cached["core"], plan.cached
            batch = client.search_batch([request, request])
            assert len(batch) == 2

            try:
                client.search(MACRequest.make(
                    query, K, t * 1.01, region,
                    algorithm="local", deadline=1e-6,
                ))
                raise AssertionError("deadline request did not fail typed")
            except DeadlineExceeded as exc:
                print(f"deadline request failed typed: {exc}")

            final = client.metrics()
            # one /v1/search + one /v1/batch admission unit served; the
            # doomed request died in the queue, counted separately
            assert final["service"]["served"] >= 2, final["service"]
            assert final["service"]["deadline_exceeded"] >= 1
            assert final["engine"]["searches"] >= 3, final["engine"]
            client.close()
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
            out, err = server.communicate(timeout=30)
        assert server.returncode == 0, (
            f"server exit code {server.returncode}:\n{out}\n{err}"
        )
        assert "shutdown:" in out, out
        print("clean shutdown confirmed:")
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
