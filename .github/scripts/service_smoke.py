"""CI service smoke: snapshot -> `repro serve` -> scripted client session.

The end-to-end deployment path, exactly as an operator would run it:

1. build an index snapshot with the query's stages pre-warmed
   (``repro index build --warm``),
2. boot ``repro serve --snapshot`` as a real subprocess,
3. drive a scripted ``ServiceClient`` session asserting the first
   served query performs **zero index builds** (the warm-start contract
   over the wire: per-request stage timings exactly 0.0, all stage
   caches hit, engine stage_seconds all zero),
4. exercise explain/batch/metrics and a deadline-carrying request
   (typed failure, not a hang),
5. SIGTERM the server and assert a clean exit 0,
6. rebuild the snapshot uncompressed and repeat the boot with
   ``--worker-processes 2``: the worker tier must serve its first
   queries with zero index builds in *both* forked workers (merged
   fleet ``stage_seconds`` exactly 0.0), report both workers alive in
   ``/v1/healthz``, and shut down cleanly on SIGTERM too,
7. chaos: under concurrent client load, live-reload the fleet onto a
   second snapshot (``POST /v1/admin/reload``), resize 2 -> 3 -> 2,
   SIGKILL a worker, and SIGHUP the server — asserting zero non-typed
   request failures, a ``/v1/healthz`` snapshot identity that is never
   half-flipped (generation monotone, worker generations uniform),
   and merged telemetry that never decreases across generations.
8. stall-proofing: boot the worker tier with a ``hang`` fault (each
   worker wedges on its 3rd search), a stall watchdog, hedged
   dispatch, and tight brownout thresholds — under concurrent
   deadline-bearing load plus one live reload the watchdog must
   detect and replace the wedged worker within its budget, every
   failure must stay typed, and the brownout must enter under
   pressure and exit once the load stops.
9. live mutation: on a fresh 2-process worker tier, POST a
   social-edge mutation through ``/v1/admin/mutate`` — the batch must
   reach every worker (uniform fleet fingerprint), queries after it
   must answer identically from all workers, the mutation must be
   appended to the snapshot's delta log beside the index, and a
   *rebooted* server on the same snapshot must replay it
   (``delta_seq`` survives the restart).

Run from the repo root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "src"))

from repro import MACRequest, PreferenceRegion, datasets  # noqa: E402
from repro.errors import DeadlineExceeded, ReproError  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.protocol import region_to_wire  # noqa: E402
from repro.store import read_deltas, snapshot_digest  # noqa: E402

DATASET = "sf+slashdot"
SCALE = 0.1
SEED = 7
K = 4
PORT = 18642


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def run_cli(*argv: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        check=True, cwd=REPO, env=cli_env(),
    )


def boot_server(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *argv],
        cwd=REPO, env=cli_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def wait_healthy(client: ServiceClient, server: subprocess.Popen) -> dict:
    for _ in range(150):
        try:
            return client.healthz()
        except Exception:
            if server.poll() is not None:
                out, err = server.communicate()
                raise AssertionError(
                    f"server died during boot:\n{out}\n{err}"
                )
            time.sleep(0.2)
    raise AssertionError("server never became healthy")


def stop_cleanly(server: subprocess.Popen) -> str:
    if server.poll() is None:
        server.send_signal(signal.SIGTERM)
    out, err = server.communicate(timeout=30)
    assert server.returncode == 0, (
        f"server exit code {server.returncode}:\n{out}\n{err}"
    )
    assert "shutdown:" in out, out
    return out


def main() -> int:
    ds = datasets.load_dataset(DATASET, scale=SCALE, seed=SEED)
    d = ds.network.social.dimensionality
    t = ds.default_t * SCALE ** 0.5
    region = PreferenceRegion.centered([0.9 / d] * (d - 1), 0.01)
    query = ds.suggest_query(2, k=K, t=t, seed=1)
    request = MACRequest.make(
        query, K, t, region, algorithm="local", label="smoke",
    )

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "idx"
        warm = Path(tmp) / "warm.jsonl"
        # Two warm entries with different core keys: phase 2 routes them
        # by affinity, so they exercise (potentially) different workers.
        warm.write_text("".join(
            json.dumps({
                "query": list(query), "k": k, "t": t,
                "region": region_to_wire(region), "algorithm": "local",
            }) + "\n"
            for k in (K, K - 1)
        ))
        run_cli(
            "index", "build", "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--out", str(snapshot), "--warm", str(warm),
        )

        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(snapshot),
            "--port", str(PORT), "--workers", "2",
        )
        try:
            client = ServiceClient(port=PORT, timeout=30.0)
            health = wait_healthy(client, server)
            assert health["status"] == "ok", health

            # The warm-start contract, observed through the wire: the
            # first served query builds nothing.
            result = client.search(request)
            assert result.partitions, "warmed query answered empty"
            info = result.extra["engine"]
            timings = info["timings"]
            for stage in ("filter", "core", "dominance"):
                assert timings[stage] == 0.0, (stage, timings)
                assert info["cache"][stage] == "hit", info["cache"]
            metrics = client.metrics()
            stage_seconds = metrics["engine"]["stage_seconds"]
            for stage in ("filter", "core", "dominance"):
                assert stage_seconds[stage] == 0.0, stage_seconds
            print("first served query: zero index builds "
                  f"(cache={info['cache']})")

            plan = client.explain(request)
            assert plan.cached["filter"] and plan.cached["core"], plan.cached
            batch = client.search_batch([request, request])
            assert len(batch) == 2

            try:
                client.search(MACRequest.make(
                    query, K, t * 1.01, region,
                    algorithm="local", deadline=1e-6,
                ))
                raise AssertionError("deadline request did not fail typed")
            except DeadlineExceeded as exc:
                print(f"deadline request failed typed: {exc}")

            final = client.metrics()
            # one /v1/search + one /v1/batch admission unit served; the
            # doomed request died in the queue, counted separately
            assert final["service"]["served"] >= 2, final["service"]
            assert final["service"]["deadline_exceeded"] >= 1
            assert final["engine"]["searches"] >= 3, final["engine"]
            client.close()
        finally:
            out = stop_cleanly(server)
        print("clean shutdown confirmed:")
        print(out)

        # Phase 2: the worker tier.  Rebuild the snapshot uncompressed
        # (the mmap-able layout the forked workers page-share) and boot
        # the same deployment with two worker processes.
        pool_snapshot = Path(tmp) / "idx-mmap"
        run_cli(
            "index", "build", "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--out", str(pool_snapshot),
            "--warm", str(warm), "--no-compress",
        )
        pool_port = PORT + 1
        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(pool_snapshot),
            "--port", str(pool_port), "--worker-processes", "2",
        )
        try:
            client = ServiceClient(port=pool_port, timeout=30.0)
            health = wait_healthy(client, server)
            assert health["status"] == "ok", health
            workers = health["workers"]
            assert workers["alive"] == 2 and workers["total"] == 2, workers
            assert health["snapshot"]["fingerprint"], health
            for entry in workers["workers"]:
                assert entry["fingerprint"] == health["snapshot"]["fingerprint"]

            # Zero index builds on first contact, in both forked
            # workers: two requests with different core keys land on
            # (potentially) different workers, each must be all-hit,
            # and the *merged* fleet stage_seconds stays exactly 0.0 —
            # if either worker had built anything, the merge would show
            # it.
            sibling = MACRequest.make(
                query, K - 1, t, region, algorithm="local", label="smoke-b",
            )
            for probe in (request, sibling):
                result = client.search(probe)
                assert result.partitions, "warmed query answered empty"
                info = result.extra["engine"]
                for stage in ("filter", "core", "dominance"):
                    assert info["timings"][stage] == 0.0, info["timings"]
                    assert info["cache"][stage] == "hit", info["cache"]
            metrics = client.metrics()
            assert metrics["service"]["executor"] == "pool", metrics["service"]
            assert metrics["service"]["worker_processes"] == 2
            assert metrics["pool"]["restarts"] == 0, metrics["pool"]
            stage_seconds = metrics["engine"]["stage_seconds"]
            for stage in ("filter", "core", "dominance"):
                assert stage_seconds[stage] == 0.0, stage_seconds
            print("worker tier: first queries built nothing in either "
                  f"worker (merged stage_seconds={stage_seconds})")
            client.close()
        finally:
            out = stop_cleanly(server)
        assert "worker process(es)" in out, out
        print("worker-tier clean shutdown confirmed:")
        print(out)

        # Phase 3: chaos.  A second snapshot (different warm set, so a
        # different index digest), then a fresh worker-tier boot that
        # gets live-reloaded, resized, worker-SIGKILLed, and SIGHUPed —
        # all under concurrent client load.
        chaos_snapshot = Path(tmp) / "idx-b"
        warm_b = Path(tmp) / "warm-b.jsonl"
        warm_b.write_text(json.dumps({
            "query": list(query), "k": K, "t": t,
            "region": region_to_wire(region), "algorithm": "local",
        }) + "\n")
        run_cli(
            "index", "build", "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--out", str(chaos_snapshot),
            "--warm", str(warm_b), "--no-compress",
        )
        digest_a = snapshot_digest(pool_snapshot)
        digest_b = snapshot_digest(chaos_snapshot)
        assert digest_a != digest_b, "chaos snapshots must be distinct"

        chaos_port = PORT + 2
        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(pool_snapshot),
            "--port", str(chaos_port), "--worker-processes", "2",
            "--drain-timeout", "10",
        )
        try:
            admin = ServiceClient(port=chaos_port, timeout=120.0)
            health = wait_healthy(admin, server)
            assert health["snapshot"]["index_digest"] == digest_a, health

            stop_load = threading.Event()
            typed: list[str] = []  # typed rejections: allowed, counted
            untyped: list[str] = []  # anything else: the smoke fails
            served = [0]

            def load(label: str) -> None:
                # retry_overloaded absorbs back-pressure spikes; every
                # other failure must still be a typed library error
                # (e.g. WorkerCrashed from the SIGKILL below).
                client = ServiceClient(
                    port=chaos_port, timeout=120.0,
                    retry_overloaded=4, retry_backoff=0.05,
                )
                probe = MACRequest.make(
                    query, K, t, region, algorithm="local", label=label,
                )
                while not stop_load.is_set():
                    try:
                        client.search(probe)
                        served[0] += 1
                    except ReproError as exc:
                        typed.append(f"{type(exc).__name__}: {exc}")
                    except Exception as exc:  # noqa: BLE001
                        untyped.append(f"{type(exc).__name__}: {exc}")
                client.close()

            flips: list[tuple[int, str]] = []
            invariant_errors: list[str] = []

            def poll_health() -> None:
                # The atomic-flip watchdog: the reported snapshot
                # identity must change generation and digest *together*
                # and monotonically, worker generations must never be
                # mixed, and merged telemetry must never decrease.
                client = ServiceClient(port=chaos_port, timeout=120.0)
                last_gen, last_searches = -1, -1
                while not stop_load.is_set():
                    try:
                        h = client.healthz()
                    except ReproError:
                        continue  # a shed poll is not an invariant hole
                    snap = h["snapshot"]
                    gens = {
                        w["generation"] for w in h["workers"]["workers"]
                    }
                    if len(gens) > 1:
                        invariant_errors.append(
                            f"mixed-generation fleet: {sorted(gens)}"
                        )
                    if snap["generation"] < last_gen:
                        invariant_errors.append(
                            f"generation went backwards: {last_gen} -> "
                            f"{snap['generation']}"
                        )
                    if h["engine"]["searches"] < last_searches:
                        invariant_errors.append(
                            f"telemetry decreased: {last_searches} -> "
                            f"{h['engine']['searches']}"
                        )
                    last_searches = h["engine"]["searches"]
                    if snap["generation"] != last_gen:
                        flips.append(
                            (snap["generation"], snap["index_digest"])
                        )
                        last_gen = snap["generation"]
                    time.sleep(0.02)
                client.close()

            threads = [
                threading.Thread(target=load, args=(f"chaos-{i}",))
                for i in range(3)
            ] + [threading.Thread(target=poll_health)]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.5)  # load running against generation 0

                summary = admin.reload(str(chaos_snapshot))
                assert summary["generation"] == 1, summary
                assert summary["index_digest"] == digest_b, summary
                print(f"live reload under load: {summary}")

                grown = admin.resize(3)
                assert grown["workers"] == 3, grown
                shrunk = admin.resize(2)
                assert shrunk["workers"] == 2, shrunk
                print(f"resized 2 -> 3 -> 2 under load: {shrunk}")

                victim = admin.healthz()["workers"]["workers"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                deadline = time.time() + 30
                while time.time() < deadline:
                    h = admin.healthz()
                    if (h["workers"]["alive"] == 2
                            and h["workers"]["restarts"] >= 1):
                        break
                    time.sleep(0.2)
                else:
                    raise AssertionError("killed worker never refilled")
                print(f"SIGKILLed worker pid {victim}; supervisor refilled")

                # SIGHUP re-reloads the boot snapshot (generation 2).
                server.send_signal(signal.SIGHUP)
                deadline = time.time() + 60
                while time.time() < deadline:
                    if admin.metrics()["service"]["reloads"] >= 2:
                        break
                    time.sleep(0.2)
                else:
                    raise AssertionError("SIGHUP reload never landed")
                h = admin.healthz()
                assert h["snapshot"]["generation"] == 2, h["snapshot"]
                assert h["snapshot"]["index_digest"] == digest_a, h["snapshot"]
                print("SIGHUP reloaded the boot snapshot: generation 2")

                time.sleep(0.5)  # load against the final generation
            finally:
                stop_load.set()
                for thread in threads:
                    thread.join(timeout=60)

            assert not untyped, f"non-typed request failures: {untyped[:5]}"
            assert not invariant_errors, invariant_errors[:5]
            assert served[0] > 0, "chaos load served nothing"
            # The watchdog saw every identity exactly once, digests
            # paired with their generation — never a half-flip.
            expected_flips = [
                (0, digest_a), (1, digest_b), (2, digest_a),
            ]
            assert flips == expected_flips, (flips, expected_flips)
            final = admin.metrics()
            assert final["service"]["reloads"] == 2, final["service"]
            assert final["service"]["resizes"] == 2, final["service"]
            print(f"chaos phase: {served[0]} request(s) served, "
                  f"{len(typed)} typed rejection(s), 0 non-typed "
                  f"failures, identity flips {flips}")
            admin.close()
        finally:
            out = stop_cleanly(server)
        print("chaos-phase clean shutdown confirmed:")
        print(out)

        # Phase 4: stall-proofing.  A worker tier booted with a `hang`
        # fault (each worker wedges on its 3rd search, first incarnation
        # only), a 2s stall watchdog, hedged dispatch, and tight
        # brownout thresholds — under concurrent deadline-bearing load
        # plus one live reload.  The watchdog must detect and replace
        # the wedged worker within its budget, every failure must stay
        # typed, and the brownout must enter and exit cleanly.
        stall_timeout = 2.0
        stall_port = PORT + 3
        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(pool_snapshot),
            "--port", str(stall_port), "--worker-processes", "2",
            "--workers", "1", "--queue-depth", "16",
            "--stall-timeout", str(stall_timeout), "--hedge-after", "0.1",
            "--brownout-enter", "2", "--brownout-exit", "0",
            "--brownout-hold", "0.3", "--drain-timeout", "3",
            "--fault-plan",
            '[{"kind": "hang", "op": "search", "after": 3}]',
        )
        try:
            admin = ServiceClient(port=stall_port, timeout=120.0)
            health = wait_healthy(admin, server)
            assert health["mode"] == "normal", health

            stop_load = threading.Event()
            typed: list[str] = []
            untyped: list[str] = []
            served = [0]

            def stall_load(k: int, label: str) -> None:
                client = ServiceClient(
                    port=stall_port, timeout=120.0,
                    retry_overloaded=4, retry_backoff=0.05,
                )
                probe = MACRequest.make(
                    query, k, t, region, algorithm="local", label=label,
                    deadline=2.0,
                )
                while not stop_load.is_set():
                    try:
                        client.search(probe)
                        served[0] += 1
                    except ReproError as exc:
                        typed.append(f"{type(exc).__name__}: {exc}")
                    except Exception as exc:  # noqa: BLE001
                        untyped.append(f"{type(exc).__name__}: {exc}")
                client.close()

            # Two distinct core keys so both affinity slots see traffic
            # (and therefore both reach their 3rd search and wedge).
            threads = [
                threading.Thread(
                    target=stall_load, args=(K - (i % 2), f"stall-{i}")
                )
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                # The wedge: the watchdog must mark the worker stalled
                # (SIGKILL) and the supervisor must refill the slot.
                detect_deadline = time.time() + 30
                detected_at = None
                while time.time() < detect_deadline:
                    h = admin.healthz()
                    if h["workers"]["stalled_workers"] >= 1:
                        detected_at = time.time()
                        break
                    time.sleep(0.1)
                assert detected_at is not None, "wedge never detected"
                refill_deadline = detected_at + 2 * stall_timeout + 5
                while time.time() < refill_deadline:
                    h = admin.healthz()
                    if (h["workers"]["alive"] == 2
                            and h["workers"]["restarts"] >= 1):
                        break
                    time.sleep(0.1)
                else:
                    raise AssertionError(
                        "stalled worker not replaced within the "
                        "watchdog budget"
                    )
                print("stall watchdog: wedged worker killed and "
                      f"refilled (stalled_workers="
                      f"{h['workers']['stalled_workers']})")

                # Sustained pressure on a 1-slot server: brownout.
                brownout_deadline = time.time() + 30
                while time.time() < brownout_deadline:
                    if admin.healthz()["mode"] == "brownout":
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError("brownout never entered")
                print("brownout entered under sustained load")

                summary = admin.reload(str(chaos_snapshot))
                assert summary["generation"] == 1, summary
                print(f"live reload with watchdog active: {summary}")

                time.sleep(0.5)  # load against the reloaded fleet
            finally:
                stop_load.set()
                for thread in threads:
                    thread.join(timeout=60)

            # Calm: with the load gone the brownout must exit.
            exit_deadline = time.time() + 15
            while time.time() < exit_deadline:
                if admin.healthz()["mode"] == "normal":
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("brownout never exited after calm")
            print("brownout exited after load stopped")

            assert not untyped, f"non-typed request failures: {untyped[:5]}"
            assert served[0] > 0, "stall-phase load served nothing"
            final = admin.metrics()
            degradation = final["degradation"]
            assert degradation["brownouts"] >= 1, degradation
            assert degradation["brownout_degraded"] >= 1, degradation
            assert final["pool"]["stalled_workers"] >= 1, final["pool"]
            assert final["pool"]["stall_timeout"] == stall_timeout
            assert final["service"]["reloads"] == 1, final["service"]
            print(f"stall phase: {served[0]} request(s) served, "
                  f"{len(typed)} typed rejection(s), 0 non-typed "
                  f"failures, {final['pool']['stalled_workers']} "
                  f"stall(s), {final['pool']['hedges']} hedge(s), "
                  f"{degradation['brownout_degraded']} degraded")
            admin.close()
        finally:
            out = stop_cleanly(server)
        print("stall-phase clean shutdown confirmed:")
        print(out)

        # Phase 5: live mutation.  A fresh 2-process worker tier on the
        # mmap snapshot; one social-edge mutation broadcast through the
        # admin endpoint must reach every worker, be logged beside the
        # snapshot, and survive a full server restart via delta replay.
        graph = ds.network.social.graph
        users = sorted(graph.vertices())
        u0 = users[0]
        u1 = next(u for u in users[1:] if not graph.has_edge(u0, u))
        mutate_port = PORT + 4
        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(pool_snapshot),
            "--port", str(mutate_port), "--worker-processes", "2",
        )
        try:
            admin = ServiceClient(port=mutate_port, timeout=120.0)
            health = wait_healthy(admin, server)
            assert health["snapshot"]["delta_seq"] == 0, health["snapshot"]

            summary = admin.mutate(
                [{"op": "add_social_edge", "u": u0, "v": u1}]
            )
            assert summary["applied"] == 1, summary
            assert summary["delta_seq"] == 1, summary
            assert summary["logged"] is True, summary
            assert summary["workers"] == 2, summary
            assert summary["applied_workers"] == 2, summary
            assert summary["uniform"] is True, summary
            print(f"mutation broadcast: edge ({u0}, {u1}) applied on "
                  f"{summary['applied_workers']}/{summary['workers']} "
                  "workers")

            h = admin.healthz()
            assert h["snapshot"]["delta_seq"] == 1, h["snapshot"]
            fleet_fp = h["snapshot"]["fingerprint"]
            assert fleet_fp == summary["fingerprint"], (h, summary)
            for entry in h["workers"]["workers"]:
                assert entry["fingerprint"] == fleet_fp, h["workers"]

            # Every worker serves the same post-mutation answer.
            answers = set()
            for _ in range(4):
                result = admin.search(request)
                answers.add((
                    result.htk_vertices,
                    tuple(tuple(sorted(p.best)) for p in result.partitions),
                ))
            assert len(answers) == 1, answers
            metrics = admin.metrics()
            assert metrics["service"]["mutations"] == 1, metrics["service"]
            assert metrics["service"]["deltas_logged"] == 1
            assert metrics["engine"]["mutations"] == 2, metrics["engine"]
            admin.close()
        finally:
            stop_cleanly(server)
        print("mutation-phase clean shutdown confirmed")

        records = read_deltas(pool_snapshot)
        assert [r["seq"] for r in records] == [1], records
        assert records[0]["mutations"] == [
            {"op": "add_social_edge", "u": u0, "v": u1}
        ], records

        # The reboot: a fresh server on the same snapshot must replay
        # the logged mutation before serving.
        server = boot_server(
            "--dataset", DATASET, "--scale", str(SCALE),
            "--seed", str(SEED), "--snapshot", str(pool_snapshot),
            "--port", str(PORT + 5),
        )
        try:
            client = ServiceClient(port=PORT + 5, timeout=30.0)
            health = wait_healthy(client, server)
            assert health["snapshot"]["delta_seq"] == 1, health["snapshot"]
            result = client.search(request)
            replayed = (
                result.htk_vertices,
                tuple(tuple(sorted(p.best)) for p in result.partitions),
            )
            assert {replayed} == answers, (replayed, answers)
            client.close()
        finally:
            stop_cleanly(server)
        print(f"reboot replayed the delta log: delta_seq=1, edge "
              f"({u0}, {u1}) present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
