"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``stats``   — Table-II style statistics of a generated dataset.
``search``  — run one MAC query on a generated dataset through the
              query engine and print the resulting partitions
              (``--explain`` prints the resolved plan instead).
``batch``   — run many MAC queries from a JSONL file through one shared
              :class:`~repro.engine.MACEngine` (see ENGINE.md for the
              line format), optionally in parallel.
``case``    — the Aminer-style case study with author names.
``index``   — persistent index snapshots: ``index build`` constructs
              and saves the prepared engine state (G-tree, CSR views,
              optionally JSONL-warmed stage caches), ``index info``
              prints a snapshot's manifest, ``index verify`` checks its
              integrity (and, with ``--dataset``, its fingerprint).
``mutate``  — apply live graph mutations from a JSONL file: a dry-run
              validation against the regenerated dataset, or — with
              ``--snapshot`` — replayed onto the snapshot's engine and
              appended to its delta log (``deltas.jsonl``) so the next
              load fast-forwards through them.
``serve``   — boot the JSON-over-HTTP serving API on one warm engine
              (optionally warm-started from ``--snapshot``); query it
              with ``repro.service.ServiceClient``.  With
              ``--worker-processes N`` the engine is forked into a
              supervised tier of N worker processes (shared memory via
              copy-on-write + mmap) instead of serving on threads.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import MACEngine, MACRequest, PreferenceRegion, __version__, datasets
from repro.datasets.registry import DATASET_NAMES
from repro.errors import QueryError, ReproError
from repro.kernels.backend import BACKENDS
from repro.service.protocol import DEFAULT_PORT, plan_to_wire, result_to_wire
from repro.store.snapshot import snapshot_info, verify_snapshot


def _add_dataset_args(
    parser: argparse.ArgumentParser,
    dataset_default: str | None = "sf+slashdot",
) -> None:
    # One definition of the dataset defaults for every subcommand:
    # `index verify` must regenerate exactly what `index build` built,
    # so their --scale/--seed defaults cannot drift apart.
    parser.add_argument(
        "--dataset", default=dataset_default, choices=DATASET_NAMES,
        **(
            {"help": "regenerate this dataset and verify the fingerprint"}
            if dataset_default is None else {}
        ),
    )
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=7)


def resolve_search_defaults(
    ds,
    scale: float,
    dimensions: int,
    t: float | None = None,
    sigma: float = 0.01,
    center: list[float] | None = None,
) -> tuple[float, PreferenceRegion]:
    """Resolve the default ``t`` and preference region for a dataset.

    One shared implementation for the ``search`` and ``batch`` commands:
    ``t`` defaults to the dataset's registry value scaled by the road
    extent (sqrt of the scale factor), and the region is a ``sigma``-side
    box around ``center`` (default: 0.9/d per reduced axis, the same
    always-feasible center the benchmark harness uses).
    """
    if t is None:
        t = ds.default_t * scale ** 0.5
    if center is None:
        center = [0.9 / dimensions] * (dimensions - 1)
    return t, PreferenceRegion.centered(center, sigma)


def cmd_stats(args: argparse.Namespace) -> int:
    row = datasets.dataset_statistics(
        args.dataset, scale=args.scale, seed=args.seed
    )
    width = max(len(k) for k in row)
    for key, value in row.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    if args.j < 1:
        raise QueryError(f"--j must be >= 1, got {args.j}")
    ds = datasets.load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        dimensions=args.dimensions,
    )
    t, region = resolve_search_defaults(
        ds, args.scale, args.dimensions, t=args.t, sigma=args.sigma
    )
    query = ds.suggest_query(
        args.query_size, k=args.k, t=t, seed=args.query_seed
    )
    engine = MACEngine(ds.network)
    request = MACRequest.make(
        query, args.k, t, region,
        j=args.j if args.j > 1 else 1,
        problem="topj" if args.j > 1 else "nc",
        algorithm=args.algorithm,
        # Pin the strategy: a one-shot command must not pay the engine's
        # auto G-tree build for a single query.
        use_gtree=args.gtree,
        deadline=args.deadline,
        anytime=args.anytime,
    )
    if args.explain:
        plan = engine.explain(request)
        if args.json:
            print(json.dumps(plan_to_wire(plan), indent=2))
        else:
            print(plan.summary())
        return 0
    result = engine.search(request)
    if args.json:
        # The service wire encoding: one JSON object, parseable by the
        # same consumers that read /v1/search responses.
        print(json.dumps(result_to_wire(result), indent=2))
        return 0
    print(result.summary())
    if result.partial and result.progress:
        print(
            "partial result (deadline expired); progress: "
            + ", ".join(f"{k}={v}" for k, v in result.progress.items())
        )
    if args.members and result.partitions:
        for i, entry in enumerate(result.partitions):
            print(f"partition {i} best: {sorted(entry.best.members)}")
    return 0


def _batch_request(
    obj: dict, ds, args: argparse.Namespace, line_no: int
) -> MACRequest:
    """Translate one JSONL object into a validated MACRequest."""
    if not isinstance(obj, dict):
        raise QueryError(f"line {line_no}: expected a JSON object")
    obj = dict(obj)
    k = obj.pop("k", None)
    if k is None:
        raise QueryError(f"line {line_no}: missing required field 'k'")
    region_spec = obj.pop("region", None)
    sigma = obj.pop("sigma", None)
    center = obj.pop("center", None)
    if region_spec is not None and (sigma is not None or center is not None):
        raise QueryError(
            f"line {line_no}: 'region' conflicts with 'center'/'sigma'; "
            f"give either explicit bounds or a centered box, not both"
        )
    try:
        t, region = resolve_search_defaults(
            ds, args.scale, args.dimensions,
            t=obj.pop("t", None),
            sigma=args.sigma if sigma is None else sigma,
            center=center,
        )
    except ReproError as exc:
        raise QueryError(f"line {line_no}: {exc}") from exc
    if region_spec is not None:
        if (
            not isinstance(region_spec, dict)
            or "lows" not in region_spec
            or "highs" not in region_spec
        ):
            raise QueryError(
                f"line {line_no}: 'region' must be an object with "
                f"'lows' and 'highs' arrays"
            )
        try:
            region = PreferenceRegion(
                region_spec["lows"], region_spec["highs"]
            )
        except ReproError as exc:
            raise QueryError(f"line {line_no}: {exc}") from exc
    if region.num_attributes != args.dimensions:
        raise QueryError(
            f"line {line_no}: region is for d={region.num_attributes} "
            f"attributes but the dataset was loaded with "
            f"d={args.dimensions}"
        )
    query = obj.pop("query", None)
    if query is None:
        size = obj.pop("query_size", 4)
        seed = obj.pop("query_seed", 0)
        try:
            query = ds.suggest_query(size, k=k, t=t, seed=seed)
        except ReproError as exc:
            raise QueryError(f"line {line_no}: {exc}") from exc
    else:
        obj.pop("query_size", None)
        obj.pop("query_seed", None)
        # Validate membership here, where the line number is known —
        # inside search_batch the failure would abort the whole batch
        # with no line attribution.
        missing = [
            v for v in query if v not in ds.network.social.graph
        ]
        if missing:
            raise QueryError(
                f"line {line_no}: query user(s) not in the social "
                f"network: {missing}"
            )
    knobs = dict(obj)
    # Mirror the search command: an explicit j > 1 means a top-j query.
    if knobs.get("j", 1) > 1 and "problem" not in knobs:
        knobs["problem"] = "topj"
    knobs.setdefault("label", f"line-{line_no}")
    try:
        return MACRequest.make(query, k, t, region, **knobs)
    except QueryError as exc:
        raise QueryError(f"line {line_no}: {exc}") from exc


def _read_requests_file(
    path: str, ds, args: argparse.Namespace
) -> list[MACRequest] | None:
    """Read a JSONL request file (``-`` = stdin) into validated requests.

    Shared by the ``batch`` command and ``index build --warm``.  On any
    malformed line, prints an error to stderr and returns ``None`` (the
    caller exits 2).
    """
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(path) as f:
                lines = f.read().splitlines()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return None
    requests: list[MACRequest] = []
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"error: line {line_no}: invalid JSON: {exc}",
                  file=sys.stderr)
            return None
        try:
            requests.append(_batch_request(obj, ds, args, line_no))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
        except (KeyError, TypeError, ValueError) as exc:
            # malformed field values (wrong JSON types, bad shapes)
            print(
                f"error: line {line_no}: bad request field: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return None
    if not requests:
        print("error: no requests in input", file=sys.stderr)
        return None
    return requests


def cmd_batch(args: argparse.Namespace) -> int:
    ds = datasets.load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        dimensions=args.dimensions,
    )
    requests = _read_requests_file(args.requests, ds, args)
    if requests is None:
        return 2

    engine = MACEngine(ds.network)
    try:
        results = engine.search_batch(requests, workers=args.workers)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for request, result in zip(requests, results):
        info = result.extra.get("engine", {})
        cache = info.get("cache", {})
        hits = sum(1 for v in cache.values() if v == "hit")
        mark = ""
        if result.partial:
            progress = ", ".join(
                f"{k}={v}" for k, v in result.progress.items()
            )
            mark = f" [partial{': ' + progress if progress else ''}]"
        print(
            f"{request.label}: {len(result.partitions)} partition(s), "
            f"{len(result.communities())} distinct MAC(s), "
            f"|H^t_k|={result.htk_vertices}, {result.elapsed:.3f}s, "
            f"cache hits {hits}/{len(cache)}{mark}"
        )
    tel = engine.telemetry()
    print(
        f"batch: {len(results)} request(s), workers={args.workers}, "
        f"cache hits={tel.hits} misses={tel.misses} "
        f"(filter {tel.filter.hits}/{tel.filter.requests}, "
        f"core {tel.core.hits}/{tel.core.requests}, "
        f"dominance {tel.dominance.hits}/{tel.dominance.requests})"
    )
    print(
        "stage seconds: "
        + ", ".join(
            f"{stage}={seconds:.3f}"
            for stage, seconds in tel.stage_seconds.items()
        )
    )
    return 0


def cmd_case(args: argparse.Namespace) -> int:
    cs = datasets.aminer_case_study(
        num_background=args.background, groups=max(4, args.background // 30),
        seed=args.seed,
    )
    region = PreferenceRegion([0.1, 0.3, 0.05], [0.3, 0.5, 0.1])
    # Local search: the exact global partitioning of a d = 4 region over
    # the full collaboration network is a long-running analysis job, not
    # a CLI command.
    engine = MACEngine(cs.network)
    result = engine.search(MACRequest.make(
        cs.query, args.k, 1e9, region,
        j=2, algorithm="local", problem="topj",
    ))
    print(f"query: {', '.join(cs.names(cs.query))}")
    for i, entry in enumerate(result.partitions):
        for rank, community in enumerate(entry.communities, start=1):
            print(
                f"partition {i} top-{rank} ({len(community)}): "
                f"{', '.join(cs.names(community.members))}"
            )
    return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    ds = datasets.load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        dimensions=args.dimensions,
    )
    # Validate the warm file before paying the eager G-tree build, so a
    # malformed JSONL fails in milliseconds, not minutes.
    requests: list[MACRequest] = []
    if args.warm is not None:
        read = _read_requests_file(args.warm, ds, args)
        if read is None:
            return 2
        requests = read
    engine = MACEngine(
        ds.network,
        use_gtree=not args.no_gtree,
        backend=args.backend,
        gtree_leaf_size=args.leaf_size,
        eager=True,
    )
    warmed = 0
    for request in requests:
        engine.warm(request)
        warmed += 1
    manifest = engine.save(args.out, compress=not args.no_compress)
    comp = manifest["components"]
    size = sum(snapshot_info(args.out)["files"].values())
    print(f"snapshot written to {args.out}")
    print(f"  dataset      {args.dataset} scale={args.scale} "
          f"seed={args.seed} d={args.dimensions}")
    print(f"  fingerprint  {manifest['fingerprint']}")
    print(f"  backend      {manifest['backend']}")
    print(f"  layout       "
          + ("uncompressed (mmap-able)" if args.no_compress
             else "compressed"))
    print(f"  g-tree       "
          + (f"{comp['gtree']['nodes']} nodes "
             f"({comp['gtree']['leaves']} leaves, "
             f"backend {comp['gtree']['backend']})"
             if "gtree" in comp else "absent"))
    print(f"  road CSR     "
          + ("present" if "road_flat" in comp else "absent"))
    print(f"  stage caches "
          f"filter={len(comp['filter'])} core={len(comp['core'])} "
          f"dominance={len(comp['dominance'])} "
          f"(from {warmed} warmed request(s))")
    print(f"  size         {size} bytes")
    return 0


def cmd_index_info(args: argparse.Namespace) -> int:
    info = snapshot_info(args.path)
    manifest = info["manifest"]
    comp = manifest["components"]
    net = manifest.get("network", {})
    print(f"snapshot {info['path']}")
    print(f"  format       {manifest['format']} "
          f"v{manifest['format_version']} "
          f"(repro {manifest.get('repro_version', '?')})")
    print(f"  fingerprint  {manifest['fingerprint']}")
    print(f"  backend      {manifest.get('backend', '?')}")
    print(f"  network      road |V|={net.get('road_vertices', '?')} "
          f"|E|={net.get('road_edges', '?')}, "
          f"social |V|={net.get('social_users', '?')} "
          f"|E|={net.get('social_edges', '?')}, "
          f"d={net.get('dimensions', '?')}")
    print(f"  g-tree       "
          + (f"{comp['gtree']['nodes']} nodes "
             f"({comp['gtree']['leaves']} leaves)"
             if "gtree" in comp else "absent"))
    print(f"  road CSR     "
          + ("present" if "road_flat" in comp else "absent"))
    counts = info["entry_counts"]
    print(f"  stage caches filter={counts['filter']} "
          f"core={counts['core']} dominance={counts['dominance']}")
    depth = info.get("delta_depth", 0)
    print(f"  delta log    "
          + (f"{depth} batch(es) replayed on load" if depth else "empty"))
    for name, size in info["files"].items():
        print(f"  {name:12s} {size} bytes")
    return 0


def cmd_index_verify(args: argparse.Namespace) -> int:
    network = None
    if args.dataset is not None:
        network = datasets.load_dataset(
            args.dataset, scale=args.scale, seed=args.seed,
            dimensions=args.dimensions,
        ).network
    info = verify_snapshot(args.path, network=network, deep=args.deep)
    detail = (
        f", {info['checksums_checked']} content checksum(s) verified"
        if args.deep else ""
    )
    print(f"snapshot ok: {info['arrays_checked']} array(s) verified"
          f"{detail}, fingerprint "
          + ("verified against --dataset" if info["fingerprint_checked"]
             else "not checked (pass --dataset to check)"))
    return 0


def _read_mutations_file(path: str) -> list[list[dict]] | None:
    """Read a JSONL mutation file (``-`` = stdin) into wire batches.

    Two line shapes are accepted, but never mixed in one file: plain
    wire mutations (``{"op": ...}``), where the whole file forms ONE
    atomic batch, and delta-log batch records (``{"mutations": [...]}``,
    the ``deltas.jsonl`` layout), where each record stays its own batch.
    On any malformed line, prints an error to stderr and returns
    ``None`` (the caller exits 2).
    """
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(path) as f:
                lines = f.read().splitlines()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return None
    single: list[dict] = []
    batches: list[list[dict]] = []
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"error: line {line_no}: invalid JSON: {exc}",
                  file=sys.stderr)
            return None
        if not isinstance(obj, dict):
            print(f"error: line {line_no}: expected a JSON object",
                  file=sys.stderr)
            return None
        if "mutations" in obj:
            if not isinstance(obj["mutations"], list) or not obj["mutations"]:
                print(
                    f"error: line {line_no}: 'mutations' must be a "
                    f"non-empty array",
                    file=sys.stderr,
                )
                return None
            batches.append(obj["mutations"])
        elif "op" in obj:
            single.append(obj)
        else:
            print(
                f"error: line {line_no}: expected a wire mutation "
                f"('op' field) or a delta-log batch record "
                f"('mutations' field)",
                file=sys.stderr,
            )
            return None
    if single and batches:
        print(
            "error: file mixes plain wire mutations with delta-log "
            "batch records; use one shape throughout",
            file=sys.stderr,
        )
        return None
    if single:
        batches = [single]
    if not batches:
        print("error: no mutations in input", file=sys.stderr)
        return None
    return batches


def cmd_mutate(args: argparse.Namespace) -> int:
    batches = _read_mutations_file(args.file)
    if batches is None:
        return 2
    ds = datasets.load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        dimensions=args.dimensions,
    )
    if args.snapshot is not None:
        # Loading replays the existing delta log first, so new batches
        # append after what is already recorded.  The snapshot's base
        # arrays are NOT re-saved: its fingerprint stays that of the
        # pristine dataset and every load replays the same history.
        from repro.store.snapshot import append_delta

        engine = MACEngine.load(args.snapshot, ds.network)
        target = f"snapshot {args.snapshot}"
    else:
        engine = MACEngine(ds.network)
        target = "dry run (pass --snapshot to persist to its delta log)"
    applied = 0
    evicted = 0
    by_kind: dict[str, int] = {}
    last_seq = None
    for batch in batches:
        summary = engine.apply(batch)
        applied += summary["applied"]
        evicted += summary["evicted"]
        for kind, count in summary["by_kind"].items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        if args.snapshot is not None:
            last_seq = append_delta(args.snapshot, batch)
    print(f"applied {applied} mutation(s) in {len(batches)} batch(es) "
          f"to {target}")
    print("  by kind      "
          + ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items())))
    print(f"  cache        {evicted} entr(ies) evicted")
    net = engine.network
    print(f"  network      social |V|={len(net.social.graph)} "
          f"|E|={net.social.graph.num_edges}")
    if last_seq is not None:
        print(f"  delta log    depth {last_seq} "
              f"(replayed on every snapshot load)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import MACService

    if args.worker_processes < 0:
        raise QueryError(
            f"--worker-processes must be >= 0, got {args.worker_processes}"
        )
    if args.drain_timeout <= 0:
        raise QueryError(
            f"--drain-timeout must be > 0, got {args.drain_timeout}"
        )
    pool_mode = args.worker_processes > 0
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        raise QueryError(
            f"--stall-timeout must be > 0, got {args.stall_timeout}"
        )
    if args.stall_timeout is not None and not pool_mode:
        raise QueryError(
            "--stall-timeout requires --worker-processes N: the watchdog "
            "supervises worker processes, not in-process threads"
        )
    hedge_after: float | str | None = None
    if args.hedge_after is not None:
        if not pool_mode:
            raise QueryError(
                "--hedge-after requires --worker-processes N: hedging "
                "re-dispatches to a second worker process"
            )
        if args.hedge_after == "auto":
            hedge_after = "auto"
        else:
            try:
                hedge_after = float(args.hedge_after)
            except ValueError:
                raise QueryError(
                    f"--hedge-after must be a positive number of seconds "
                    f"or 'auto', got {args.hedge_after!r}"
                ) from None
            if hedge_after <= 0:
                raise QueryError(
                    f"--hedge-after must be > 0, got {args.hedge_after}"
                )
    ds = datasets.load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        dimensions=args.dimensions,
    )
    index_digest = None
    if args.snapshot is not None:
        from repro.store.snapshot import snapshot_digest

        # In pool mode, open uncompressed array payloads as read-only
        # memory maps: all workers then share one page-cache copy
        # (build the snapshot with `index build --no-compress`).
        index_digest = snapshot_digest(args.snapshot)
        engine = MACEngine.load(args.snapshot, ds.network, mmap=pool_mode)
        source = f"snapshot {args.snapshot} (warm start)"
    else:
        # Pool mode forces the eager build: indexes built before the
        # fork are shared copy-on-write; built after, they would be
        # rebuilt privately in every worker.
        engine = MACEngine(ds.network, eager=args.eager or pool_mode)
        source = "fresh engine" + (
            " (eager indexes)" if args.eager or pool_mode else ""
        )
    snapshot_path = (
        str(args.snapshot) if args.snapshot is not None else None
    )
    pool = None
    if pool_mode:
        from repro.pool import FaultPlan, PoolExecutor, WorkerPool

        fault_plan = (
            FaultPlan.parse(args.fault_plan)
            if args.fault_plan is not None
            else FaultPlan.from_env()
        )
        pool = WorkerPool(
            engine,
            args.worker_processes,
            drain_timeout=args.drain_timeout,
            stall_timeout=args.stall_timeout,
            hedge_after=hedge_after,
            fault_plan=fault_plan,
            source=snapshot_path,
            index_digest=index_digest,
        ).start()
        service = MACService(
            executor=PoolExecutor(pool),
            host=args.host,
            port=args.port,
            max_concurrency=args.workers,
            queue_depth=args.queue_depth,
            default_deadline=args.default_deadline,
            drain_timeout=args.drain_timeout,
            snapshot_path=snapshot_path,
            brownout_enter=args.brownout_enter,
            brownout_exit=args.brownout_exit,
            brownout_hold=args.brownout_hold,
        )
    else:
        from repro.service.executor import EngineExecutor

        service = MACService(
            executor=EngineExecutor(
                engine, source=snapshot_path, index_digest=index_digest
            ),
            host=args.host,
            port=args.port,
            max_concurrency=args.workers,
            queue_depth=args.queue_depth,
            default_deadline=args.default_deadline,
            drain_timeout=args.drain_timeout,
            snapshot_path=snapshot_path,
            brownout_enter=args.brownout_enter,
            brownout_exit=args.brownout_exit,
            brownout_hold=args.brownout_hold,
        )

    def banner() -> None:
        # Flushed line-by-line so a supervisor (or the CI smoke job) can
        # poll for readiness on stdout as well as on /v1/healthz.
        print(f"engine: {args.dataset} scale={args.scale} seed={args.seed} "
              f"d={args.dimensions}, {source}", flush=True)
        tier = (
            f"executor=pool worker_processes={args.worker_processes}"
            if pool_mode else "executor=threads"
        )
        print(f"serving on http://{service.host}:{service.port} "
              f"({tier}, workers={args.workers}, "
              f"queue_depth={args.queue_depth}, "
              f"default_deadline={args.default_deadline})", flush=True)

    service.run(on_started=banner)
    if pool is not None:
        stats = pool.pool_wire()
        served = sum(w.get("served", 0) for w in stats["workers"])
        print(f"shutdown: {served} op(s) served across "
              f"{stats['num_workers']} worker process(es), "
              f"restarts={stats['restarts']}, "
              f"crashed-requests={stats['crashed_requests']}, "
              f"dispatched affinity={stats['dispatched']['affinity']} "
              f"spill={stats['dispatched']['spill']} "
              f"failover={stats['dispatched']['failover']}")
    else:
        tel = engine.telemetry()
        print(f"shutdown: {tel.searches} search(es) served, cache "
              f"hits={tel.hits} misses={tel.misses}, "
              f"deadline-exceeded={tel.deadline_exceeded}")
    return 0


#: Attribute dimensionality shared by every dataset-loading subcommand
#: (declared once so `index verify` regenerates what `index build` saw).
DEFAULT_DIMENSIONS = 3


def _add_query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sigma", type=float, default=0.01)
    parser.add_argument("--dimensions", type=int, default=DEFAULT_DIMENSIONS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-attributed community search (ICDE 2021 repro)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table II)")
    _add_dataset_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_search = sub.add_parser("search", help="run a MAC query")
    _add_dataset_args(p_search)
    _add_query_args(p_search)
    p_search.add_argument("--k", type=int, default=6)
    p_search.add_argument("--t", type=float, default=None)
    p_search.add_argument("--j", type=int, default=1)
    p_search.add_argument("--query-size", type=int, default=4)
    p_search.add_argument("--query-seed", type=int, default=1)
    p_search.add_argument(
        "--algorithm", choices=("auto", "global", "local"), default="local"
    )
    p_search.add_argument("--gtree", action="store_true")
    p_search.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; expiry raises DeadlineExceeded "
             "(or returns a partial result with --anytime)",
    )
    p_search.add_argument(
        "--anytime", action="store_true",
        help="on deadline expiry, return the best-so-far feasible "
             "community marked partial instead of failing",
    )
    p_search.add_argument(
        "--members", action="store_true", help="print community members"
    )
    p_search.add_argument(
        "--explain", action="store_true",
        help="print the resolved query plan instead of running it",
    )
    p_search.add_argument(
        "--json", action="store_true",
        help="machine-readable output: the result (or, with --explain, "
             "the plan) as one JSON object in the service wire format",
    )
    p_search.set_defaults(func=cmd_search)

    p_batch = sub.add_parser(
        "batch", help="run JSONL requests through one shared engine"
    )
    _add_dataset_args(p_batch)
    _add_query_args(p_batch)
    p_batch.add_argument(
        "--requests", required=True,
        help="path to a JSONL request file, or '-' for stdin",
    )
    p_batch.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool width for independent requests (default 4)",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_mutate = sub.add_parser(
        "mutate",
        help="apply live graph mutations from a JSONL file",
    )
    _add_dataset_args(p_mutate)
    p_mutate.add_argument(
        "--dimensions", type=int, default=DEFAULT_DIMENSIONS
    )
    p_mutate.add_argument(
        "--file", required=True, metavar="JSONL",
        help="mutation file, or '-' for stdin: wire mutations one per "
             "line (the whole file applied as one atomic batch), or "
             "delta-log batch records (a snapshot's deltas.jsonl, one "
             "batch per record)",
    )
    p_mutate.add_argument(
        "--snapshot", default=None, metavar="DIR",
        help="replay onto this snapshot's engine and append the batches "
             "to its delta log, so every later load (and `repro serve "
             "--snapshot`) fast-forwards through them; without it the "
             "file is validated and applied as a dry run against the "
             "regenerated dataset",
    )
    p_mutate.set_defaults(func=cmd_mutate)

    p_index = sub.add_parser(
        "index", help="build / inspect / verify persistent index snapshots"
    )
    isub = p_index.add_subparsers(dest="index_command", required=True)

    p_build = isub.add_parser(
        "build", help="build prepared indexes and save them as a snapshot"
    )
    _add_dataset_args(p_build)
    _add_query_args(p_build)
    p_build.add_argument(
        "--out", required=True, help="snapshot output directory"
    )
    p_build.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="engine compute backend recorded in the snapshot",
    )
    p_build.add_argument(
        "--leaf-size", type=int, default=64,
        help="G-tree leaf size (default 64)",
    )
    p_build.add_argument(
        "--no-gtree", action="store_true",
        help="skip the G-tree build (snapshot stage caches only)",
    )
    p_build.add_argument(
        "--no-compress", action="store_true",
        help="store array payloads uncompressed so `repro serve "
             "--worker-processes N` can memory-map them (one shared "
             "page-cache copy across all workers)",
    )
    p_build.add_argument(
        "--warm", default=None, metavar="JSONL",
        help="JSONL request file (batch format) whose filter/core/"
             "dominance stages are pre-built into the snapshot",
    )
    p_build.set_defaults(func=cmd_index_build)

    p_info = isub.add_parser(
        "info", help="print a snapshot's manifest summary"
    )
    p_info.add_argument("path", help="snapshot directory")
    p_info.set_defaults(func=cmd_index_info)

    p_verify = isub.add_parser(
        "verify",
        help="check a snapshot's integrity (all arrays readable, "
             "format version supported; with --dataset, fingerprint too)",
    )
    p_verify.add_argument("path", help="snapshot directory")
    _add_dataset_args(p_verify, dataset_default=None)
    p_verify.add_argument(
        "--dimensions", type=int, default=DEFAULT_DIMENSIONS
    )
    p_verify.add_argument(
        "--deep", action="store_true",
        help="also recompute each array's content checksum against the "
             "manifest (catches bit-rot the shape/readability check "
             "cannot; snapshots predating checksums pass trivially)",
    )
    p_verify.set_defaults(func=cmd_index_verify)

    p_serve = sub.add_parser(
        "serve",
        help="serve MAC queries over JSON/HTTP from one warm engine",
    )
    _add_dataset_args(p_serve)
    p_serve.add_argument(
        "--dimensions", type=int, default=DEFAULT_DIMENSIONS
    )
    p_serve.add_argument(
        "--snapshot", default=None, metavar="DIR",
        help="warm-start the engine from this index snapshot "
             "(built with `repro index build`; fingerprint-checked "
             "against the regenerated dataset)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="engine calls executing at once (default 4)",
    )
    p_serve.add_argument(
        "--worker-processes", type=int, default=0, metavar="N",
        help="serve from N supervised worker processes forked from the "
             "warm engine instead of in-process threads (0, the "
             "default); processes escape the GIL for CPU-bound "
             "searches and share index memory copy-on-write",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="admitted-but-waiting requests beyond --workers before "
             "the server answers 429 (default 16)",
    )
    p_serve.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="budget stamped onto requests that carry no deadline",
    )
    p_serve.add_argument(
        "--eager", action="store_true",
        help="build network-level indexes before listening "
             "(no-op with --snapshot)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="grace period for in-flight requests on shutdown, live "
             "snapshot swap, and fleet resize before stragglers are "
             "terminated (default 5)",
    )
    p_serve.add_argument(
        "--stall-timeout", type=float, default=None, metavar="SECONDS",
        help="worker-tier stall watchdog: a worker that stops replying "
             "for this long is killed and respawned, its in-flight "
             "requests failing with retryable WorkerStalled (pool mode "
             "only; default off)",
    )
    p_serve.add_argument(
        "--hedge-after", default=None, metavar="SECONDS|auto",
        help="hedged dispatch for idempotent searches: after this delay "
             "without a reply, re-send to a second worker and return "
             "whichever answers first ('auto' derives the delay from "
             "the observed latency EWMA; pool mode only; default off)",
    )
    p_serve.add_argument(
        "--brownout-enter", type=int, default=None, metavar="N",
        help="in-flight requests at/above which the server enters "
             "brownout mode, degrading deadline-bearing searches to "
             "anytime partials (default: capacity + 3/4 of queue depth)",
    )
    p_serve.add_argument(
        "--brownout-exit", type=int, default=None, metavar="N",
        help="in-flight requests at/below which brownout ends "
             "(default: half of --workers; must be below --brownout-enter)",
    )
    p_serve.add_argument(
        "--brownout-hold", type=float, default=0.5, metavar="SECONDS",
        help="pressure (or calm) must persist this long before the mode "
             "flips — hysteresis against flapping (default 0.5)",
    )
    p_serve.add_argument(
        "--fault-plan", default=None, metavar="JSON",
        help="deterministic fault-injection plan for the worker tier "
             "(chaos testing; overrides the REPRO_FAULT_PLAN "
             "environment variable), e.g. "
             "'[{\"kind\": \"kill\", \"slot\": 0, \"after\": 3}]'",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_case = sub.add_parser("case", help="Aminer-style case study")
    p_case.add_argument("--k", type=int, default=5)
    p_case.add_argument("--seed", type=int, default=11)
    p_case.add_argument(
        "--background", type=int, default=400,
        help="number of background authors (default 400)",
    )
    p_case.set_defaults(func=cmd_case)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # library errors (bad query, empty region, ...) are user errors,
        # not crashes — no traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())


_ = np  # numpy re-exported for interactive use of the module
