"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``stats``   — Table-II style statistics of a generated dataset.
``search``  — run a MAC query on a generated dataset and print the
              resulting partitions.
``case``    — the Aminer-style case study with author names.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import PreferenceRegion, datasets, mac_search
from repro.datasets.registry import DATASET_NAMES


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="sf+slashdot", choices=DATASET_NAMES
    )
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=7)


def cmd_stats(args: argparse.Namespace) -> int:
    row = datasets.dataset_statistics(
        args.dataset, scale=args.scale, seed=args.seed
    )
    width = max(len(k) for k in row)
    for key, value in row.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    ds = datasets.load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        dimensions=args.dimensions,
    )
    t = args.t if args.t is not None else ds.default_t * args.scale ** 0.5
    query = ds.suggest_query(
        args.query_size, k=args.k, t=t, seed=args.query_seed
    )
    d = args.dimensions
    center = [0.9 / d] * (d - 1)
    region = PreferenceRegion.centered(center, args.sigma)
    result = mac_search(
        ds.network, query, args.k, t, region,
        j=args.j,
        algorithm=args.algorithm,
        problem="topj" if args.j > 1 else "nc",
        use_gtree=args.gtree,
    )
    print(result.summary())
    if args.members and result.partitions:
        for i, entry in enumerate(result.partitions):
            print(f"partition {i} best: {sorted(entry.best.members)}")
    return 0


def cmd_case(args: argparse.Namespace) -> int:
    cs = datasets.aminer_case_study(
        num_background=args.background, groups=max(4, args.background // 30),
        seed=args.seed,
    )
    region = PreferenceRegion([0.1, 0.3, 0.05], [0.3, 0.5, 0.1])
    # Local search: the exact global partitioning of a d = 4 region over
    # the full collaboration network is a long-running analysis job, not
    # a CLI command.
    result = mac_search(
        cs.network, cs.query, args.k, 1e9, region,
        j=2, algorithm="local", problem="topj",
    )
    print(f"query: {', '.join(cs.names(cs.query))}")
    for i, entry in enumerate(result.partitions):
        for rank, community in enumerate(entry.communities, start=1):
            print(
                f"partition {i} top-{rank} ({len(community)}): "
                f"{', '.join(cs.names(community.members))}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-attributed community search (ICDE 2021 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table II)")
    _add_dataset_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_search = sub.add_parser("search", help="run a MAC query")
    _add_dataset_args(p_search)
    p_search.add_argument("--k", type=int, default=6)
    p_search.add_argument("--t", type=float, default=None)
    p_search.add_argument("--j", type=int, default=1)
    p_search.add_argument("--sigma", type=float, default=0.01)
    p_search.add_argument("--dimensions", type=int, default=3)
    p_search.add_argument("--query-size", type=int, default=4)
    p_search.add_argument("--query-seed", type=int, default=1)
    p_search.add_argument(
        "--algorithm", choices=("global", "local"), default="local"
    )
    p_search.add_argument("--gtree", action="store_true")
    p_search.add_argument(
        "--members", action="store_true", help="print community members"
    )
    p_search.set_defaults(func=cmd_search)

    p_case = sub.add_parser("case", help="Aminer-style case study")
    p_case.add_argument("--k", type=int, default=5)
    p_case.add_argument("--seed", type=int, default=11)
    p_case.add_argument(
        "--background", type=int, default=400,
        help="number of background authors (default 400)",
    )
    p_case.set_defaults(func=cmd_case)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())


_ = np  # numpy re-exported for interactive use of the module
