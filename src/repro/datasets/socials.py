"""Synthetic social graphs with paper-like shape statistics.

The five social networks of Table II are heavy-tailed (dg_max in the
thousands at dg_avg 5-13) with deep cores (k_max 34-129).  A preferential
attachment process reproduces the heavy tail; planting a few overlapping
dense cores reproduces the core depth, which the k-sweep benchmarks need
(k up to 64).  Everything is seeded and hand-rolled on adjacency sets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.adjacency import AdjacencyGraph


def preferential_attachment(
    num_vertices: int, edges_per_vertex: int, rng: np.random.Generator
) -> AdjacencyGraph:
    """Barabási–Albert-style graph via the repeated-targets trick."""
    m = edges_per_vertex
    if num_vertices <= m:
        raise DatasetError(
            f"need more than {m} vertices, got {num_vertices}"
        )
    graph = AdjacencyGraph()
    targets = list(range(m + 1))
    for u in targets:
        graph.add_vertex(u)
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            graph.add_edge(u, v)
    # repeated: vertex appears once per incident edge (degree-proportional)
    repeated: list[int] = []
    for u in targets:
        repeated.extend([u] * graph.degree(u))
    for v in range(m + 1, num_vertices):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(repeated[rng.integers(len(repeated))])
        graph.add_vertex(v)
        for u in chosen:
            graph.add_edge(v, u)
            repeated.append(u)
        repeated.extend([v] * m)
    return graph


def bfs_partition(
    graph: AdjacencyGraph, num_groups: int, rng: np.random.Generator
) -> list[list[int]]:
    """Partition vertices into socially contiguous groups of similar size.

    Repeated BFS chunking: grow a group from an unassigned seed until the
    target size, then start the next.  Groups approximate social
    communities and are used to co-locate friends geographically (a basic
    property of real LBSNs that random placement would destroy).
    """
    target = max(1, graph.num_vertices // max(num_groups, 1))
    unassigned = set(graph.vertices())
    groups: list[list[int]] = []
    order = sorted(unassigned)
    rng.shuffle(order)
    seeds = iter(order)
    while unassigned:
        seed_v = next((s for s in seeds if s in unassigned), None)
        if seed_v is None:
            seed_v = next(iter(unassigned))
        group = [seed_v]
        unassigned.discard(seed_v)
        frontier = [u for u in graph.neighbors(seed_v) if u in unassigned]
        while frontier and len(group) < target:
            v = frontier.pop()
            if v in unassigned:
                group.append(v)
                unassigned.discard(v)
                frontier.extend(
                    u for u in graph.neighbors(v) if u in unassigned
                )
        groups.append(group)
    return groups


def plant_dense_cores(
    graph: AdjacencyGraph,
    core_sizes: list[int],
    rng: np.random.Generator,
    groups: list[list[int]] | None = None,
    density: float = 0.9,
) -> None:
    """Overlay near-cliques (raises k_max to support deep k sweeps).

    Each planted set of size s approximates an (s-1)-core at full density;
    ``density`` thins it slightly so cores are not perfect cliques.  When
    ``groups`` is given, each core is planted *inside* one social group so
    that dense subgraphs stay geographically coherent after the check-in
    location mapping.
    """
    vertices = list(graph.vertices())
    for size in core_sizes:
        pool = vertices
        if groups:
            eligible = [g for g in groups if len(g) >= size]
            if eligible:
                pool = eligible[rng.integers(len(eligible))]
        if size > len(pool):
            continue
        chosen = rng.choice(len(pool), size=size, replace=False)
        members = [pool[i] for i in chosen]
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if u != v and rng.random() < density:
                    graph.add_edge(u, v)


def add_intra_group_edges(
    graph: AdjacencyGraph,
    groups: list[list[int]],
    edges_per_vertex: float,
    rng: np.random.Generator,
) -> None:
    """Densify communities with random within-group edges.

    Preferential attachment alone spreads edges globally; real (location-
    based) social networks are denser inside communities, which is what
    makes deep k-cores survive the paper's t-range filter."""
    for group in groups:
        if len(group) < 3:
            continue
        wanted = int(len(group) * edges_per_vertex)
        for _ in range(wanted):
            i, j = rng.integers(len(group), size=2)
            if i != j:
                graph.add_edge(group[i], group[j])


def power_law_social(
    num_vertices: int,
    avg_degree: float,
    seed: int = 0,
    planted_cores: list[int] | None = None,
    num_groups: int | None = None,
) -> tuple[AdjacencyGraph, list[list[int]]]:
    """Heavy-tailed, community-structured social graph.

    Half the target degree comes from global preferential attachment (the
    heavy tail), half from within-community edges (the locally dense part
    that survives the road-distance filter).  Returns the graph together
    with its community partition (used for geographically coherent
    location assignment).  ``planted_cores`` lists the sizes of overlaid
    dense subgraphs; defaults support the paper's k sweep at small scale.
    """
    rng = np.random.default_rng(seed)
    m = max(1, round(avg_degree / 4))
    graph = preferential_attachment(num_vertices, m, rng)
    if num_groups is None:
        # Few large communities: H^t_k sizes then reach the hundreds at
        # realistic t, as in the paper's Fig. 11(c).
        num_groups = max(2, num_vertices // 1200)
    groups = bfs_partition(graph, num_groups, rng)
    add_intra_group_edges(graph, groups, avg_degree / 4.0, rng)
    if planted_cores is None:
        base = max(12, int(np.sqrt(num_vertices)))
        planted_cores = [base, int(base * 0.75), int(base * 0.6)]
    plant_dense_cores(graph, planted_cores, rng, groups=groups)
    return graph, groups
