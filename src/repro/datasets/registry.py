"""Named road-social dataset pairings mirroring the paper's Table II.

Each name ("sf+slashdot", ..., "fl+yelp") produces a seeded synthetic
pairing whose *shape* follows the original: road sparsity, social degree
distribution and core depth, attribute regime (independent by default,
zero-inflated "real" for Yelp).  ``scale`` multiplies the default sizes —
the defaults are chosen so a full benchmark sweep runs in minutes on a
laptop; nothing caps larger scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.attributes import attributes_as_dict, generate_attributes
from repro.datasets.locations import checkin_locations
from repro.datasets.roads import grid_road
from repro.datasets.socials import power_law_social
from repro.errors import DatasetError
from repro.graph.core import peel_to_k_core
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork


@dataclass(frozen=True)
class _RoadSpec:
    vertices: int
    spacing: float
    t_values: tuple[float, ...]
    default_t: float


@dataclass(frozen=True)
class _SocialSpec:
    vertices: int
    avg_degree: float
    attribute_kind: str


_ROADS = {
    "sf": _RoadSpec(4000, 20.0, (200.0, 250.0, 300.0, 350.0, 400.0), 300.0),
    "fl": _RoadSpec(6000, 25.0, (250.0, 300.0, 350.0, 400.0, 450.0), 350.0),
}

_SOCIALS = {
    "slashdot": _SocialSpec(3000, 13.0, "independent"),
    "delicious": _SocialSpec(5000, 5.0, "independent"),
    "lastfm": _SocialSpec(6000, 7.0, "independent"),
    "flixster": _SocialSpec(7000, 6.0, "independent"),
    "yelp": _SocialSpec(8000, 5.0, "real"),
}

_PAIRINGS = {
    "sf+slashdot": ("sf", "slashdot"),
    "sf+delicious": ("sf", "delicious"),
    "fl+lastfm": ("fl", "lastfm"),
    "fl+flixster": ("fl", "flixster"),
    "fl+yelp": ("fl", "yelp"),
}

DATASET_NAMES = tuple(_PAIRINGS)


@dataclass
class LoadedDataset:
    """A generated pairing plus query-selection helpers."""

    name: str
    network: RoadSocialNetwork
    attribute_kind: str
    seed: int
    t_values: tuple[float, ...]
    default_t: float
    extra: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Content fingerprint of the generated network (snapshot identity).

        Index snapshots (:mod:`repro.store`) record this digest and
        refuse to load against a network whose fingerprint differs —
        the guard that makes CI index caching and cross-process
        warm-starts safe.  Identical ``(name, scale, dimensions,
        attribute_kind, seed)`` parameters regenerate identical networks
        and therefore identical fingerprints.
        """
        from repro.store.fingerprint import network_fingerprint

        return network_fingerprint(self.network)

    def suggest_query(
        self,
        size: int,
        k: int,
        t: float | None = None,
        seed: int = 0,
        attempts: int = 60,
    ) -> tuple[int, ...]:
        """Random query set with a non-empty maximal (k,t)-core.

        Mirrors the paper's protocol: query vertices are drawn from the
        social k-core (nearby vertices for |Q| > 1) and re-drawn until the
        (k,t)-core exists.
        """
        t = self.default_t if t is None else t
        rng = np.random.default_rng(seed)
        # Pinned to the python cascade: the seeded draw sequence below
        # walks neighbor *sets*, whose iteration order depends on how the
        # core graph was materialized.  The cascade layout keeps suggested
        # queries byte-stable across kernel-backend changes.
        core = peel_to_k_core(self.network.social.graph, k, backend="python")
        if core.num_vertices == 0:
            raise DatasetError(f"{self.name}: social graph has no {k}-core")
        pool = sorted(core.vertices())
        for _attempt in range(attempts):
            start = pool[rng.integers(len(pool))]
            members = [start]
            frontier = sorted(core.neighbors(start))
            while len(members) < size and frontier:
                nxt = frontier[rng.integers(len(frontier))]
                frontier.remove(nxt)
                if nxt not in members:
                    members.append(nxt)
                    frontier.extend(
                        u for u in core.neighbors(nxt)
                        if u not in members and u not in frontier
                    )
            if len(members) < size:
                continue
            query = tuple(sorted(members))
            if self.network.maximal_kt_core(query, k, t) is not None:
                return query
        raise DatasetError(
            f"{self.name}: no satisfiable query found for |Q|={size}, "
            f"k={k}, t={t} after {attempts} attempts"
        )


def load_dataset(
    name: str,
    scale: float = 1.0,
    dimensions: int = 3,
    attribute_kind: str | None = None,
    seed: int = 7,
) -> LoadedDataset:
    """Generate a named pairing (see DATASET_NAMES).

    ``scale`` multiplies both road and social sizes; ``dimensions`` sets d;
    ``attribute_kind`` overrides the dataset's default regime.
    """
    if name not in _PAIRINGS:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    road_key, social_key = _PAIRINGS[name]
    road_spec = _ROADS[road_key]
    social_spec = _SOCIALS[social_key]
    kind = attribute_kind or social_spec.attribute_kind

    road = grid_road(
        max(100, int(road_spec.vertices * scale)),
        seed=seed,
        spacing=road_spec.spacing,
    )
    n_social = max(60, int(social_spec.vertices * scale))
    graph, groups = power_law_social(
        n_social, social_spec.avg_degree, seed=seed + 1
    )
    attrs = attributes_as_dict(
        generate_attributes(n_social, dimensions, kind=kind, seed=seed + 2)
    )
    locations = checkin_locations(
        road, graph.vertices(), seed=seed + 3, groups=groups
    )
    social = SocialNetwork(graph, attrs, locations)
    return LoadedDataset(
        name=name,
        network=RoadSocialNetwork(road, social),
        attribute_kind=kind,
        seed=seed,
        t_values=road_spec.t_values,
        default_t=road_spec.default_t,
    )


def dataset_statistics(
    name: str, scale: float = 1.0, seed: int = 7
) -> dict[str, object]:
    """Table-II style row for a generated pairing."""
    ds = load_dataset(name, scale=scale, seed=seed)
    stats = ds.network.social.statistics()
    stats["dataset"] = name
    stats["road_vertices"] = ds.network.road.num_vertices
    stats["road_edges"] = ds.network.road.num_edges
    stats["road_dg_avg"] = round(ds.network.road.average_degree(), 2)
    return stats
