"""Check-in style user → road-location mapping.

The paper projects each road map into the unit square and assigns every
user the road vertex nearest to a normalized check-in position.  We
reproduce the same recipe with synthetic check-ins: a handful of hot-spot
centres (Zipf-weighted) with Gaussian scatter, snapped to the nearest
road vertex through a KD-tree.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import DatasetError
from repro.road.network import RoadNetwork, SpatialPoint


def checkin_locations(
    road: RoadNetwork,
    users: Iterable[int],
    seed: int = 0,
    num_centers: int = 12,
    scatter: float = 0.05,
    groups: list[list[int]] | None = None,
) -> dict[int, SpatialPoint]:
    """Map each user to a road vertex via synthetic check-ins.

    ``scatter`` is the Gaussian standard deviation as a fraction of the
    map's extent.  Without ``groups``, ``num_centers`` hot spots receive
    Zipf-like popularity and users are assigned independently.  With
    ``groups`` (social communities), each group shares one hot spot, so
    friends check in near each other — the property that makes the
    paper's (k,t)-core queries satisfiable at realistic t.
    """
    user_list = list(users)
    road_vertices = [v for v in road.vertices() if road.has_coordinates(v)]
    if not road_vertices:
        raise DatasetError("road network has no coordinates to snap to")
    rng = np.random.default_rng(seed)
    coords = np.asarray([road.coordinates(v) for v in road_vertices])
    tree = cKDTree(coords)
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    extent = float(np.max(hi - lo))

    if groups:
        centers = coords[
            rng.choice(
                len(coords), size=min(len(groups), len(coords)), replace=False
            )
        ]
        center_of = {}
        for gi, group in enumerate(groups):
            for u in group:
                center_of[u] = gi % len(centers)
        assignments = np.asarray(
            [center_of.get(u, rng.integers(len(centers))) for u in user_list]
        )
    else:
        centers = coords[
            rng.choice(
                len(coords), size=min(num_centers, len(coords)), replace=False
            )
        ]
        weights = 1.0 / np.arange(1, len(centers) + 1)
        weights /= weights.sum()
        assignments = rng.choice(len(centers), size=len(user_list), p=weights)

    offsets = rng.normal(0.0, scatter * extent, size=(len(user_list), 2))
    positions = centers[assignments] + offsets
    _dists, nearest = tree.query(positions)
    return {
        u: SpatialPoint.at_vertex(road_vertices[idx])
        for u, idx in zip(user_list, nearest)
    }
