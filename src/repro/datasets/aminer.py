"""Aminer+NA-style case-study network (Fig. 15).

The paper's first case study queries four renowned data-mining authors in
a scientific collaboration network (109,931 authors; four numerical
attributes: h-index, #publications, activeness, diverseness) mapped onto
the North-America road map.  The crawl is not redistributable, so this
module synthesizes a collaboration network with the same structure:

* a dense, named "DM community" around the four query authors whose
  attribute tiers reproduce the nested top-1/top-2 MAC structure of
  Fig. 15(a-d),
* background research groups (planted partition) with correlated
  attributes,
* per-author field keywords (DB/DM/IR/ML) for the ATC-style baseline,
* locations on an NA-like grid road, with research groups clustered
  geographically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.locations import checkin_locations
from repro.datasets.roads import grid_road
from repro.graph.adjacency import AdjacencyGraph
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

#: The named inner community, ordered by attribute tier (strongest first).
DM_AUTHORS = (
    "Jiawei Han",
    "Jian Pei",
    "Philip S. Yu",
    "Xifeng Yan",
    "Ke Wang",
    "Charu Aggarwal",
    "Haixun Wang",
    "Yizhou Sun",
    "Chi Wang",
    "Xiang Ren",
    "Yintao Yu",
    "Jing Gao",
    "Xiaohui Gu",
    "Yu Xiao",
    "Xin Jin",
    "Chen Chen",
    "Wei Fan",
    "Marina Danilevsky",
)

#: The case-study query (Fig. 15): four renowned DM scientists.
QUERY_AUTHORS = ("Jiawei Han", "Jian Pei", "Philip S. Yu", "Xifeng Yan")

FIELDS = ("DB", "DM", "IR", "ML")


@dataclass
class CaseStudyNetwork:
    """The generated case-study pairing with author-name mappings."""

    network: RoadSocialNetwork
    author_id: dict[str, int]
    author_name: dict[int, str]
    keywords: dict[int, str]
    extra: dict = field(default_factory=dict)

    @property
    def query(self) -> tuple[int, ...]:
        return tuple(sorted(self.author_id[a] for a in QUERY_AUTHORS))

    def names(self, members) -> list[str]:
        return sorted(self.author_name.get(v, f"author-{v}") for v in members)


def _dm_attribute(rank: int, rng: np.random.Generator) -> np.ndarray:
    """Four-dimensional attributes decreasing with the tier rank.

    Tiers (matching the nesting of Fig. 15): ranks 0-6 are the strongest
    (the top-1 non-contained MAC), 7-8 next (top-2 MAC), 9-10 next, then
    11, then the rest of the DM community.
    """
    tiers = [7, 9, 11, 12, len(DM_AUTHORS)]
    tier = next(i for i, stop in enumerate(tiers) if rank < stop)
    base = 9.0 - 1.1 * tier
    return np.clip(
        base + rng.normal(0.0, 0.15, size=4), 0.5, 10.0
    )


def aminer_case_study(
    num_background: int = 1200,
    groups: int = 40,
    seed: int = 11,
    road_vertices: int = 2500,
) -> CaseStudyNetwork:
    """Build the Aminer+NA-like case-study road-social network."""
    rng = np.random.default_rng(seed)
    graph = AdjacencyGraph()
    author_name: dict[int, str] = {}
    keywords: dict[int, str] = {}
    attrs: dict[int, np.ndarray] = {}

    # --- the named DM community -------------------------------------
    dm_ids = list(range(len(DM_AUTHORS)))
    for i, name in enumerate(DM_AUTHORS):
        graph.add_vertex(i)
        author_name[i] = name
        keywords[i] = "DM"
        attrs[i] = _dm_attribute(i, rng)
    # Dense collaboration inside the community, denser at the top.
    for i in dm_ids:
        for j in dm_ids:
            if i < j:
                p = 0.95 if j < 9 else (0.7 if j < 12 else 0.45)
                if rng.random() < p:
                    graph.add_edge(i, j)

    # --- background research groups ----------------------------------
    next_id = len(DM_AUTHORS)
    group_sizes = rng.integers(12, 40, size=groups)
    group_members: list[list[int]] = []
    remaining = num_background
    for size in group_sizes:
        size = int(min(size, remaining))
        if size < 3:
            break
        members = list(range(next_id, next_id + size))
        field_name = FIELDS[rng.integers(len(FIELDS))]
        for v in members:
            graph.add_vertex(v)
            author_name[v] = f"author-{v}"
            keywords[v] = field_name
        for a_idx, u in enumerate(members):
            for v in members[a_idx + 1 :]:
                if rng.random() < 0.35:
                    graph.add_edge(u, v)
        group_members.append(members)
        next_id += size
        remaining -= size
    # Correlated background attributes, clearly below the DM tiers.
    for members in group_members:
        level = rng.uniform(1.0, 5.5)
        for v in members:
            attrs[v] = np.clip(
                level + rng.normal(0.0, 0.5, size=4), 0.0, 10.0
            )

    # Sparse cross-group collaborations + links into the DM community.
    all_groups = group_members + [dm_ids]
    for _ in range(len(all_groups) * 6):
        ga, gb = rng.integers(len(all_groups), size=2)
        if ga == gb:
            continue
        u = all_groups[ga][rng.integers(len(all_groups[ga]))]
        v = all_groups[gb][rng.integers(len(all_groups[gb]))]
        if u != v:
            graph.add_edge(u, v)

    # --- NA-like road map; research groups cluster geographically ----
    road = grid_road(road_vertices, seed=seed + 1, spacing=30.0)
    locations = checkin_locations(
        road, graph.vertices(), seed=seed + 2, groups=all_groups
    )
    social = SocialNetwork(graph, attrs, locations)
    author_id = {name: i for i, name in author_name.items()}
    return CaseStudyNetwork(
        network=RoadSocialNetwork(road, social),
        author_id=author_id,
        author_name=author_name,
        keywords=keywords,
    )
