"""Numerical attribute generators.

The paper generates independent, correlated and anti-correlated attributes
for the first four social networks with the classic skyline-benchmark
method of Börzsönyi et al. [21], and uses real (heavily correlated,
zero-inflated) attributes for Yelp.  All four regimes are reproduced here
on a [0, 10] scale per dimension.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

#: Attribute value scale (paper examples use single-digit reals).
SCALE = 10.0

KINDS = ("independent", "correlated", "anticorrelated", "real")


def generate_attributes(
    num_vertices: int,
    dimensions: int,
    kind: str = "independent",
    seed: int = 0,
) -> np.ndarray:
    """Matrix of shape (num_vertices, dimensions) in [0, SCALE].

    ``independent``: i.i.d. uniform per dimension.
    ``correlated``: values cluster around the main diagonal.
    ``anticorrelated``: values cluster around the anti-diagonal plane
    (points good in one dimension are bad in others).
    ``real``: Yelp-like — zero-inflated, heavy-tailed, strongly correlated
    (most users have zero compliments; active users are active everywhere).
    """
    if dimensions < 1:
        raise DatasetError(f"dimensions must be >= 1, got {dimensions}")
    if num_vertices < 1:
        raise DatasetError(f"num_vertices must be >= 1, got {num_vertices}")
    rng = np.random.default_rng(seed)
    if kind == "independent":
        return rng.uniform(0.0, SCALE, size=(num_vertices, dimensions))
    if kind == "correlated":
        base = rng.uniform(0.0, SCALE, size=num_vertices)
        noise = rng.normal(0.0, SCALE * 0.08, size=(num_vertices, dimensions))
        values = base[:, None] + noise
        return np.clip(values, 0.0, SCALE)
    if kind == "anticorrelated":
        base = rng.normal(SCALE / 2, SCALE * 0.06, size=num_vertices)
        # Spread each row's mass across dimensions so the row sum stays
        # near base * dimensions while individual entries trade off.
        raw = rng.uniform(0.0, 1.0, size=(num_vertices, dimensions))
        shares = raw / raw.sum(axis=1, keepdims=True)
        values = shares * (base[:, None] * dimensions)
        return np.clip(values, 0.0, SCALE)
    if kind == "real":
        activity = rng.exponential(0.35, size=num_vertices)
        active = rng.random(num_vertices) < np.minimum(activity, 0.9)
        base = np.where(active, activity * SCALE * 0.8, 0.0)
        noise = rng.normal(
            0.0, SCALE * 0.05, size=(num_vertices, dimensions)
        )
        values = base[:, None] * rng.uniform(
            0.7, 1.0, size=(num_vertices, dimensions)
        ) + np.where(base[:, None] > 0, noise, 0.0)
        return np.clip(values, 0.0, SCALE)
    raise DatasetError(f"unknown attribute kind {kind!r}; one of {KINDS}")


def attributes_as_dict(matrix: np.ndarray) -> dict[int, np.ndarray]:
    """Row-indexed view used by :class:`SocialNetwork`."""
    return {i: matrix[i] for i in range(matrix.shape[0])}
