"""Dataset generators and the named registry of paper-like pairings.

The paper evaluates on five real social networks (Slashdot, Delicious,
Lastfm, Flixster, Yelp), two road maps (San Francisco, Florida) and two
case-study networks (Aminer, Yelp).  Those dumps are not redistributable,
so this package generates *seeded synthetic equivalents with matching
shape statistics* (degree distribution, core depth, attribute correlation,
road sparsity) at a configurable scale — see DESIGN.md for the
substitution rationale.
"""

from repro.datasets.attributes import generate_attributes
from repro.datasets.aminer import aminer_case_study
from repro.datasets.locations import checkin_locations
from repro.datasets.registry import (
    DATASET_NAMES,
    LoadedDataset,
    dataset_statistics,
    load_dataset,
)
from repro.datasets.roads import grid_road
from repro.datasets.socials import power_law_social

__all__ = [
    "grid_road",
    "power_law_social",
    "generate_attributes",
    "checkin_locations",
    "load_dataset",
    "LoadedDataset",
    "DATASET_NAMES",
    "dataset_statistics",
    "aminer_case_study",
]
