"""Synthetic road networks shaped like the paper's SF / FL maps.

Real road networks are near-planar with average degree ~2.5 (SF: 2.55,
FL: 2.53 in Table II).  A perturbed grid with random edge thinning and a
largest-connected-component cut reproduces exactly that regime, with
coordinates for the G-tree's spatial bisection and edge weights that mimic
segment lengths.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DatasetError
from repro.road.network import RoadNetwork


def grid_road(
    num_vertices: int,
    seed: int = 0,
    spacing: float = 20.0,
    drop_fraction: float = 0.42,
    jitter: float = 0.25,
) -> RoadNetwork:
    """A road network of roughly ``num_vertices`` intersections.

    Builds a sqrt(n) x sqrt(n) lattice with jittered coordinates, drops
    ``drop_fraction`` of the edges at random (thinning the grid towards
    road-like average degree ~2.5), and keeps the largest connected
    component.  Edge weights are Euclidean segment lengths.
    """
    if num_vertices < 4:
        raise DatasetError(f"need at least 4 vertices, got {num_vertices}")
    if not 0 <= drop_fraction < 1:
        raise DatasetError("drop_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    side = max(2, int(math.isqrt(num_vertices)))
    coords = {}
    for i in range(side):
        for j in range(side):
            v = i * side + j
            dx, dy = rng.uniform(-jitter, jitter, size=2) * spacing
            coords[v] = (j * spacing + dx, i * spacing + dy)

    edges = []
    for i in range(side):
        for j in range(side):
            v = i * side + j
            if j + 1 < side:
                edges.append((v, v + 1))
            if i + 1 < side:
                edges.append((v, v + side))
    keep_mask = rng.random(len(edges)) >= drop_fraction
    kept = [e for e, keep in zip(edges, keep_mask) if keep]

    road = RoadNetwork()
    for v, xy in coords.items():
        road.add_vertex(v, xy)
    for u, v in kept:
        (x1, y1), (x2, y2) = coords[u], coords[v]
        road.add_edge(u, v, math.hypot(x2 - x1, y2 - y1))

    # Keep the largest connected component (thinning may fragment the map).
    components: list[set[int]] = []
    remaining = set(road.vertices())
    while remaining:
        start = next(iter(remaining))
        comp = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for w in road.neighbors(u):
                if w not in comp:
                    comp.add(w)
                    stack.append(w)
        components.append(comp)
        remaining -= comp
    largest = max(components, key=len)
    return road.subgraph(largest)
