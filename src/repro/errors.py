"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Structural problem with a graph operation (missing vertex/edge, ...)."""


class QueryError(ReproError):
    """A community-search query is malformed or unsatisfiable upfront."""


class GeometryError(ReproError):
    """A preference-domain geometry operation failed (empty region, ...)."""


class DatasetError(ReproError):
    """A dataset generator received inconsistent parameters."""


class SnapshotError(ReproError):
    """An index snapshot is missing, corrupted, stale, or incompatible."""


class MutationError(ReproError):
    """A live graph mutation is invalid against the current network state.

    Raised by :mod:`repro.live` (and surfaced by the service as HTTP
    400) when a mutation batch fails validation — an edge insert whose
    endpoints are unknown or whose edge already exists, a delete of a
    missing edge, an attribute vector of the wrong dimensionality, a
    negative road weight, and so on.  Validation runs against the whole
    batch before anything is applied, so a rejected batch leaves the
    network, the engine caches, and the delta log untouched — mutation
    batches are all-or-nothing, which keeps delta-log replay
    deterministic.
    """


class DeadlineExceeded(ReproError):
    """A request ran past its wall-clock deadline and was aborted.

    Raised by the engine (and surfaced by the service as HTTP 504) when
    ``MACRequest.deadline`` expires at a pipeline-stage boundary or
    inside a search loop — a budgeted query fails typed instead of
    hanging.
    """


class ServiceError(ReproError):
    """A service request failed for a transport- or server-side reason."""


class ServiceOverloaded(ServiceError):
    """The server's admission queue is full (HTTP 429).

    ``retry_after`` is the server's backoff hint in seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ReloadError(ServiceError):
    """A zero-downtime admin operation failed and was rolled back (HTTP 409).

    Raised by the live snapshot-swap / fleet-resize paths
    (``POST /v1/admin/reload``, ``POST /v1/admin/resize``, ``SIGHUP``)
    when the new snapshot fails validation, the replacement generation
    never comes up, or another admin operation is already in progress.
    The serving fleet is left on its previous generation — a failed
    reload never degrades the running service.
    """


class WorkerCrashed(ServiceError):
    """A worker process died while this request was in flight (HTTP 503).

    Raised by the worker tier (:mod:`repro.pool`) when the process a
    request was dispatched to exits before answering — crash, SIGKILL,
    or OOM kill.  Only the requests in flight on the dead worker fail;
    the supervisor restarts it from the pre-fork engine, so a retry is
    expected to succeed.  Queries are pure, which makes that retry safe.
    """


class WorkerStalled(WorkerCrashed):
    """A wedged worker was killed by the stall watchdog (HTTP 503).

    Raised by the worker tier when a worker process stopped replying —
    infinite loop, stuck syscall — for longer than the configured
    ``stall_timeout`` (clamped to the request's deadline when one is
    set).  The watchdog SIGKILLs the wedged process and only its
    in-flight requests fail; the supervisor refills the slot through
    the normal respawn path.  Subclasses :class:`WorkerCrashed`, so it
    inherits the 503 mapping and the retry-is-safe semantics.
    """


class CircuitOpen(ServiceError):
    """The client's circuit breaker is open: calls fail fast.

    Raised client-side (never by the server) after ``breaker_threshold``
    consecutive connection failures or worker-loss 503s; further calls
    fail immediately instead of hammering a down service.  After
    ``breaker_cooldown`` seconds one half-open probe is allowed — its
    success closes the circuit, its failure re-opens it.  ``retry_after``
    is the remaining cooldown in seconds.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after
