"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Structural problem with a graph operation (missing vertex/edge, ...)."""


class QueryError(ReproError):
    """A community-search query is malformed or unsatisfiable upfront."""


class GeometryError(ReproError):
    """A preference-domain geometry operation failed (empty region, ...)."""


class DatasetError(ReproError):
    """A dataset generator received inconsistent parameters."""


class SnapshotError(ReproError):
    """An index snapshot is missing, corrupted, stale, or incompatible."""
