"""G-tree: a hierarchical road-network index for fast range queries.

The paper (Section III) accelerates the Lemma-1 range filter with the
G-tree of Zhong et al. [24].  This module implements a faithful, compact
G-tree:

* the road network is recursively bisected (spatially, on the median of
  the wider coordinate axis; BFS halving when coordinates are missing),
* every tree node stores its **borders** — vertices with an edge leaving
  the node's vertex set,
* leaf nodes store border→vertex distance matrices computed *inside* the
  leaf subgraph,
* internal nodes store pairwise distances between the union of their
  children's borders, computed on a "mini-graph" assembled from child
  matrices plus cross-child edges.

Single-source queries run a Dijkstra over the multi-level border network
(each node's matrix acts as a weighted clique), which is exact because any
shortest path decomposes at the borders it crosses.  Range queries prune
whole subtrees whose borders are all farther than the bound.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.errors import GraphError
from repro.kernels import (
    all_pairs_minplus,
    dense_weight_matrix,
    masked_dijkstra_rows,
    resolve_backend,
)
from repro.road.network import RoadNetwork, SpatialPoint

INF = math.inf


class _Node:
    __slots__ = (
        "index",
        "parent",
        "children",
        "vertices",
        "borders",
        "matrix",
        "is_leaf",
    )

    def __init__(self, index: int, vertices: set[int]) -> None:
        self.index = index
        self.parent: int | None = None
        self.children: list[int] = []
        self.vertices = vertices
        self.borders: list[int] = []
        # leaf: {border: {vertex: dist}}; internal: {border: {border: dist}}
        self.matrix: dict[int, dict[int, float]] = {}
        self.is_leaf = False


def _bfs_halves(road: RoadNetwork, vertices: set[int]) -> tuple[set[int], set[int]]:
    """Split ``vertices`` into two halves by BFS layering (no coordinates)."""
    target = len(vertices) // 2
    start = next(iter(vertices))
    half: set[int] = set()
    queue = deque([start])
    seen = {start}
    while queue and len(half) < target:
        u = queue.popleft()
        half.add(u)
        for v in road.neighbors(u):
            if v in vertices and v not in seen:
                seen.add(v)
                queue.append(v)
    rest = vertices - half
    if not half or not rest:  # pathological: fall back to arbitrary split
        ordered = sorted(vertices)
        half, rest = set(ordered[:target]), set(ordered[target:])
    return half, rest


def _spatial_halves(
    road: RoadNetwork, vertices: set[int]
) -> tuple[set[int], set[int]]:
    """Median split on the wider coordinate axis."""
    xs = [road.coordinates(v)[0] for v in vertices]
    ys = [road.coordinates(v)[1] for v in vertices]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    ordered = sorted(vertices, key=lambda v: (road.coordinates(v)[axis], v))
    mid = len(ordered) // 2
    return set(ordered[:mid]), set(ordered[mid:])


class GTree:
    """G-tree index over a :class:`RoadNetwork`.

    Parameters
    ----------
    road:
        The indexed network (kept by reference; do not mutate afterwards).
    leaf_size:
        Maximum number of vertices per leaf node.
    backend:
        ``"flat"`` assembles the distance matrices with the vectorized
        kernels (dense min-plus all-pairs per node instead of a python
        Dijkstra per border) on the road's cached CSR view;
        ``"python"`` keeps the original per-border loops; ``"auto"``
        picks by network size.  Matrices are equal up to floating-point
        associativity of path sums.
    """

    def __init__(
        self,
        road: RoadNetwork,
        leaf_size: int = 64,
        backend: str = "auto",
    ) -> None:
        if leaf_size < 2:
            raise GraphError(f"leaf_size must be >= 2, got {leaf_size}")
        self._road = road
        self._leaf_size = leaf_size
        self.backend = resolve_backend(backend, road.num_vertices)
        self._flat = road.flat() if self.backend == "flat" else None
        self._nodes: list[_Node] = []
        self._leaf_of: dict[int, int] = {}
        # border vertex -> [(node index, )] where it appears in a matrix
        self._border_nodes: dict[int, list[int]] = {}
        if road.num_vertices:
            self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _split(self, vertices: set[int]) -> tuple[set[int], set[int]]:
        if all(self._road.has_coordinates(v) for v in vertices):
            return _spatial_halves(self._road, vertices)
        return _bfs_halves(self._road, vertices)

    def _build(self) -> None:
        road = self._road
        root = _Node(0, set(road.vertices()))
        self._nodes = [root]
        stack = [0]
        while stack:
            idx = stack.pop()
            node = self._nodes[idx]
            if len(node.vertices) <= self._leaf_size:
                node.is_leaf = True
                for v in node.vertices:
                    self._leaf_of[v] = idx
                continue
            left_set, right_set = self._split(node.vertices)
            for part in (left_set, right_set):
                child = _Node(len(self._nodes), part)
                child.parent = idx
                node.children.append(child.index)
                self._nodes.append(child)
                stack.append(child.index)
        for node in self._nodes:
            node.borders = self._compute_borders(node.vertices)
        for node in self._nodes:
            if node.is_leaf:
                self._build_leaf_matrix(node)
        # Bottom-up internal matrices: children always have larger indices
        # than their parents, so reverse index order is a valid order.
        for node in sorted(self._nodes, key=lambda n: -n.index):
            if not node.is_leaf:
                self._build_internal_matrix(node)
        for node in self._nodes:
            if not node.is_leaf:
                for b in node.matrix:
                    self._border_nodes.setdefault(b, []).append(node.index)

    def _compute_borders(self, vertices: set[int]) -> list[int]:
        borders = []
        for v in vertices:
            if any(u not in vertices for u in self._road.neighbors(v)):
                borders.append(v)
        return sorted(borders)

    def _dijkstra_within(
        self, source: int, vertices: set[int]
    ) -> dict[int, float]:
        """Plain Dijkstra restricted to the induced subgraph on vertices."""
        if self._flat is not None:
            fg = self._flat
            allowed = {fg.row_of(v) for v in vertices}
            ids = fg.ids
            return {
                ids[r]: d
                for r, d in masked_dijkstra_rows(
                    fg, fg.row_of(source), allowed
                ).items()
            }
        dist: dict[int, float] = {}
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in dist:
                continue
            dist[u] = d
            for v, w in self._road.neighbors(u).items():
                if v in vertices and v not in dist:
                    heapq.heappush(heap, (d + w, v))
        return dist

    def _build_leaf_matrix(self, node: _Node) -> None:
        if self._flat is not None:
            # Dense all-pairs over the leaf subgraph (<= leaf_size rows):
            # one vectorized min-plus sweep computes every border row at
            # once instead of a python Dijkstra per border.
            fg = self._flat
            rows = np.sort(np.asarray(fg.rows_of(node.vertices), np.int64))
            dense = all_pairs_minplus(dense_weight_matrix(fg, rows))
            ids = [fg.ids[r] for r in rows.tolist()]
            border_pos = np.searchsorted(rows, fg.rows_of(node.borders))
            for b, i in zip(node.borders, border_pos.tolist()):
                row = dense[i]
                finite = np.nonzero(np.isfinite(row))[0]
                node.matrix[b] = {
                    ids[j]: float(row[j]) for j in finite.tolist()
                }
            return
        for b in node.borders:
            node.matrix[b] = self._dijkstra_within(b, node.vertices)

    def _build_internal_matrix(self, node: _Node) -> None:
        """Pairwise distances among children's borders within the node."""
        children = [self._nodes[c] for c in node.children]
        union: set[int] = set()
        for child in children:
            union.update(child.borders)
        # Mini-graph: child matrices as cliques + cross-child edges.
        if self._flat is not None:
            self._build_internal_matrix_flat(node, children, union)
            return
        adj: dict[int, list[tuple[int, float]]] = {b: [] for b in union}
        for child in children:
            idx = (
                child.borders
                if child.is_leaf
                else [b for b in child.matrix if b in union]
            )
            for b in idx:
                row = child.matrix.get(b, {})
                for b2 in idx:
                    if b2 != b:
                        d = row.get(b2, INF)
                        if d < INF:
                            adj[b].append((b2, d))
        for b in union:
            for v, w in self._road.neighbors(b).items():
                if v in union and v in node.vertices:
                    # Cross edge (possibly within same child; harmless).
                    adj[b].append((v, w))
        for b in union:
            dist: dict[int, float] = {}
            heap = [(0.0, b)]
            while heap:
                d, u = heapq.heappop(heap)
                if u in dist:
                    continue
                dist[u] = d
                for v, w in adj[u]:
                    if v not in dist:
                        heapq.heappush(heap, (d + w, v))
            node.matrix[b] = dist

    def _build_internal_matrix_flat(
        self, node: _Node, children: list[_Node], union: set[int]
    ) -> None:
        """Same mini-graph, solved as one dense min-plus all-pairs."""
        borders = sorted(union)
        pos = {b: i for i, b in enumerate(borders)}
        m = len(borders)
        dense = np.full((m, m), INF)
        np.fill_diagonal(dense, 0.0)
        for child in children:
            idx = (
                child.borders
                if child.is_leaf
                else [b for b in child.matrix if b in union]
            )
            for b in idx:
                row = child.matrix.get(b, {})
                i = pos[b]
                for b2 in idx:
                    if b2 != b:
                        d = row.get(b2, INF)
                        if d < dense[i, pos[b2]]:
                            dense[i, pos[b2]] = d
        for b in borders:
            i = pos[b]
            for v, w in self._road.neighbors(b).items():
                j = pos.get(v)
                if j is not None and v in node.vertices and w < dense[i, j]:
                    dense[i, j] = w
        all_pairs_minplus(dense)
        for b in borders:
            row = dense[pos[b]]
            finite = np.nonzero(np.isfinite(row))[0]
            node.matrix[b] = {
                borders[j]: float(row[j]) for j in finite.tolist()
            }

    # ------------------------------------------------------------------
    # snapshot round-trip (repro.store)
    # ------------------------------------------------------------------
    def to_state(self) -> dict[str, np.ndarray]:
        """The full node hierarchy + distance matrices as flat arrays.

        Ragged structures (per-node vertex sets, border lists, matrix
        rows) serialize as ``*_ptr`` offset arrays over concatenated
        payload arrays — the natural ``.npz`` shape.  ``from_state``
        reconstructs an equivalent index without re-running any
        Dijkstra/min-plus build.
        """
        nodes = self._nodes
        parent = np.asarray(
            [-1 if n.parent is None else n.parent for n in nodes], np.int64
        )
        is_leaf = np.asarray([n.is_leaf for n in nodes], bool)
        vert_ptr = np.zeros(len(nodes) + 1, np.int64)
        border_ptr = np.zeros(len(nodes) + 1, np.int64)
        mat_ptr = np.zeros(len(nodes) + 1, np.int64)
        vert_flat: list[int] = []
        border_flat: list[int] = []
        mat_src: list[int] = []
        mat_dst: list[int] = []
        mat_w: list[float] = []
        for i, node in enumerate(nodes):
            vert_flat.extend(sorted(node.vertices))
            border_flat.extend(node.borders)
            for b, row in node.matrix.items():
                for v, d in row.items():
                    mat_src.append(b)
                    mat_dst.append(v)
                    mat_w.append(d)
            vert_ptr[i + 1] = len(vert_flat)
            border_ptr[i + 1] = len(border_flat)
            mat_ptr[i + 1] = len(mat_src)
        return {
            "parent": parent,
            "is_leaf": is_leaf,
            "vert_ptr": vert_ptr,
            "vert_flat": np.asarray(vert_flat, np.int64),
            "border_ptr": border_ptr,
            "border_flat": np.asarray(border_flat, np.int64),
            "mat_ptr": mat_ptr,
            "mat_src": np.asarray(mat_src, np.int64),
            "mat_dst": np.asarray(mat_dst, np.int64),
            "mat_w": np.asarray(mat_w, np.float64),
        }

    @classmethod
    def from_state(
        cls,
        road: RoadNetwork,
        state: dict,
        leaf_size: int,
        backend: str,
    ) -> GTree:
        """Rebuild an index from :meth:`to_state` arrays (no matrix builds).

        ``backend`` must be the *resolved* selector recorded at save time
        (it only governs how post-load queries run their local leaf
        Dijkstras, not the restored matrices).
        """
        self = cls.__new__(cls)
        self._road = road
        self._leaf_size = leaf_size
        self.backend = backend
        self._flat = road.flat() if backend == "flat" else None
        parent = state["parent"].tolist()
        is_leaf = state["is_leaf"].tolist()
        vert_ptr = state["vert_ptr"].tolist()
        vert_flat = state["vert_flat"].tolist()
        border_ptr = state["border_ptr"].tolist()
        border_flat = state["border_flat"].tolist()
        mat_ptr = state["mat_ptr"].tolist()
        mat_src = state["mat_src"].tolist()
        mat_dst = state["mat_dst"].tolist()
        mat_w = state["mat_w"].tolist()
        self._nodes = []
        self._leaf_of = {}
        self._border_nodes = {}
        for i in range(len(parent)):
            node = _Node(i, set(vert_flat[vert_ptr[i]:vert_ptr[i + 1]]))
            node.parent = None if parent[i] < 0 else parent[i]
            node.is_leaf = bool(is_leaf[i])
            node.borders = border_flat[border_ptr[i]:border_ptr[i + 1]]
            for pos in range(mat_ptr[i], mat_ptr[i + 1]):
                node.matrix.setdefault(mat_src[pos], {})[mat_dst[pos]] = (
                    mat_w[pos]
                )
            self._nodes.append(node)
            if node.is_leaf:
                for v in node.vertices:
                    self._leaf_of[v] = i
        for node in self._nodes:
            if node.parent is not None:
                # Children were created in index order, so appending by
                # index reproduces the original child ordering.
                self._nodes[node.parent].children.append(node.index)
            if not node.is_leaf:
                for b in node.matrix:
                    self._border_nodes.setdefault(b, []).append(node.index)
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def leaf_size(self) -> int:
        return self._leaf_size

    @property
    def num_leaves(self) -> int:
        return sum(1 for n in self._nodes if n.is_leaf)

    def leaf_of(self, vertex: int) -> int:
        try:
            return self._leaf_of[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} not indexed") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _seed(self, source: SpatialPoint | int) -> list[tuple[int, float]]:
        if isinstance(source, int):
            source = SpatialPoint.at_vertex(source)
        self._road.validate_point(source)
        if source.on_vertex:
            return [(source.u, 0.0)]
        length = self._road.weight(source.u, source.v)
        return [(source.u, source.offset), (source.v, length - source.offset)]

    def range_query(
        self, source: SpatialPoint | int, bound: float
    ) -> dict[int, float]:
        """All road vertices within ``bound`` of ``source`` with distances.

        Exact (equal to a bounded Dijkstra over the full network) but prunes
        subtrees whose borders all exceed the bound.
        """
        seeds = self._seed(source)
        border_dist: dict[int, float] = {}
        inner_direct: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        # Phase 1: local Dijkstra inside each seed's leaf.
        for vertex, offset in seeds:
            if offset > bound:
                continue
            leaf = self._nodes[self._leaf_of[vertex]]
            local = self._dijkstra_within(vertex, leaf.vertices)
            for v, d in local.items():
                total = offset + d
                if total <= bound and total < inner_direct.get(v, INF):
                    inner_direct[v] = total
            for b in leaf.borders:
                d = local.get(b, INF)
                total = offset + d
                if total <= bound and total < border_dist.get(b, INF):
                    border_dist[b] = total
                    heapq.heappush(heap, (total, b))
        # Phase 2: Dijkstra over the multi-level border network.
        settled: set[int] = set()
        while heap:
            d, b = heapq.heappop(heap)
            if b in settled or d > border_dist.get(b, INF):
                continue
            settled.add(b)
            for node_idx in self._border_nodes.get(b, ()):
                row = self._nodes[node_idx].matrix[b]
                for b2, w in row.items():
                    nd = d + w
                    if nd <= bound and nd < border_dist.get(b2, INF):
                        border_dist[b2] = nd
                        heapq.heappush(heap, (nd, b2))
        # Phase 3: descend into reachable leaves only.
        result = dict(inner_direct)
        for b, d in border_dist.items():
            if d < result.get(b, INF):
                result[b] = d
        # Ancestors of the seed leaves must always be descended: their
        # interior is reachable without crossing their own borders.
        seed_ancestors: set[int] = set()
        for vertex, _offset in seeds:
            idx: int | None = self._leaf_of[vertex]
            while idx is not None:
                seed_ancestors.add(idx)
                idx = self._nodes[idx].parent
        stack = [0] if self._nodes else []
        while stack:
            node = self._nodes[stack.pop()]
            if not node.is_leaf:
                # Entry points into an internal node are its children's
                # borders (matrix keys); prune the subtree when none is
                # reachable — unless the source lies inside the node.
                if node.index in seed_ancestors or any(
                    b in border_dist for b in node.matrix
                ):
                    stack.extend(node.children)
                continue
            reach = [
                (b, border_dist[b]) for b in node.borders if b in border_dist
            ]
            if not reach:
                continue
            for v in node.vertices:
                best = result.get(v, INF)
                row_min = INF
                for b, db in reach:
                    via = db + node.matrix[b].get(v, INF)
                    if via < row_min:
                        row_min = via
                if row_min < best and row_min <= bound:
                    result[v] = row_min
        return {v: d for v, d in result.items() if d <= bound}

    def distance(self, a: SpatialPoint | int, b: SpatialPoint | int) -> float:
        """Exact network distance via the index (+inf when disconnected)."""
        if isinstance(b, int):
            b = SpatialPoint.at_vertex(b)
        targets = self._seed(b)
        all_dist = self.range_query(a, INF)
        best = INF
        for vertex, offset in targets:
            d = all_dist.get(vertex, INF) + offset
            best = min(best, d)
        if (
            isinstance(a, SpatialPoint)
            and not a.on_vertex
            and not b.on_vertex
            and {a.u, a.v} == {b.u, b.v}
        ):
            off_b = (
                b.offset if a.u == b.u else self._road.weight(a.u, a.v) - b.offset
            )
            best = min(best, abs(a.offset - off_b))
        return best

    def query_distances(
        self, query_points: Iterable[SpatialPoint], bound: float
    ) -> dict[int, float]:
        """``D_Q`` filter (Def. 2 / Lemma 1) using the index per query point."""
        result: dict[int, float] | None = None
        for q in query_points:
            d = self.range_query(q, bound)
            if result is None:
                result = d
            else:
                result = {
                    v: max(result[v], d[v]) for v in result.keys() & d.keys()
                }
            if not result:
                return {}
        return result if result is not None else {}
