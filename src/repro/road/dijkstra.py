"""Shortest-path routines over road networks.

Provides plain and distance-bounded Dijkstra from vertices or from
``SpatialPoint``s lying mid-edge, plus the query-distance aggregation
``D_Q(v) = max_q dist(L(v), L(q))`` of Definition 2.

All entry points take ``backend="auto" | "flat" | "python"``: the flat
backend runs :func:`repro.kernels.bounded_dijkstra_rows` on the road's
cached CSR view (flat distance table, list-indexed adjacency); the
python backend is the original dict-keyed heap loop.  Unlike the core
and dominance kernels, Dijkstra on the bundled road shapes (degree
~2.5) is heap-bound and the flat path measures break-even to slower
(``BENCH_kernels.json``), so ``"auto"`` resolves to python here — the
flat path runs only when requested explicitly.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

from repro.errors import GraphError
from repro.kernels import BACKENDS, bounded_dijkstra_rows
from repro.road.network import RoadNetwork, SpatialPoint

INF = math.inf


def _seed_heap(road: RoadNetwork, source: SpatialPoint) -> list[tuple[float, int]]:
    """Initial heap entries for a source that may lie mid-edge."""
    road.validate_point(source)
    if source.on_vertex:
        return [(0.0, source.u)]
    length = road.weight(source.u, source.v)
    return [(source.offset, source.u), (length - source.offset, source.v)]


def dijkstra(
    road: RoadNetwork, source: SpatialPoint | int, backend: str = "auto"
) -> dict[int, float]:
    """Distances from ``source`` to every reachable road vertex."""
    return bounded_dijkstra(road, source, INF, backend=backend)


def bounded_dijkstra(
    road: RoadNetwork,
    source: SpatialPoint | int,
    bound: float,
    backend: str = "auto",
) -> dict[int, float]:
    """Distances from ``source`` to vertices within ``bound`` (inclusive)."""
    if isinstance(source, int):
        source = SpatialPoint.at_vertex(source)
    if backend not in BACKENDS:
        raise GraphError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "flat":
        fg = road.flat()
        seeds = [
            (fg.row_of(v), off) for off, v in _seed_heap(road, source)
        ]
        rows = bounded_dijkstra_rows(fg, seeds, bound)
        ids = fg.ids
        return {ids[r]: d for r, d in rows.items()}
    dist: dict[int, float] = {}
    heap = [e for e in _seed_heap(road, source) if e[0] <= bound]
    heapq.heapify(heap)
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        for v, w in road.neighbors(u).items():
            nd = d + w
            if nd <= bound and v not in dist:
                heapq.heappush(heap, (nd, v))
    return dist


def _point_distance(dist: dict[int, float], target: SpatialPoint,
                    road: RoadNetwork) -> float:
    """Distance to a target point given vertex distances from the source."""
    if target.on_vertex:
        return dist.get(target.u, INF)
    length = road.weight(target.u, target.v)
    via_u = dist.get(target.u, INF) + target.offset
    via_v = dist.get(target.v, INF) + (length - target.offset)
    return min(via_u, via_v)


def network_distance(
    road: RoadNetwork,
    a: SpatialPoint | int,
    b: SpatialPoint | int,
    backend: str = "auto",
) -> float:
    """Shortest network distance between two locations (+inf if disconnected).

    Handles the degenerate case of two points on the *same* edge, where the
    along-edge path may beat any path through the endpoints.
    """
    if isinstance(a, int):
        a = SpatialPoint.at_vertex(a)
    if isinstance(b, int):
        b = SpatialPoint.at_vertex(b)
    direct = INF
    if not a.on_vertex and not b.on_vertex:
        same = {a.u, a.v} == {b.u, b.v}
        if same:
            off_b = b.offset if a.u == b.u else road.weight(a.u, a.v) - b.offset
            direct = abs(a.offset - off_b)
    dist = dijkstra(road, a, backend=backend)
    return min(direct, _point_distance(dist, b, road))


def query_distances(
    road: RoadNetwork,
    query_points: Iterable[SpatialPoint],
    bound: float = INF,
    backend: str = "auto",
) -> dict[int, float]:
    """``D_Q`` over road vertices: max distance to any query point (Def. 2).

    Only vertices within ``bound`` of *every* query point are returned,
    which implements the Lemma 1 filter directly.
    """
    result: dict[int, float] | None = None
    for q in query_points:
        d = bounded_dijkstra(road, q, bound, backend=backend)
        if result is None:
            result = d
        else:
            result = {
                v: max(result[v], d[v]) for v in result.keys() & d.keys()
            }
        if not result:
            return {}
    return result if result is not None else {}
