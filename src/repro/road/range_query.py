"""The Lemma-1 range filter with pluggable backends.

Given query locations and a distance threshold ``t``, keep exactly the
road vertices whose query distance ``D_Q`` (Definition 2) is at most
``t``.  Backends: plain bounded Dijkstra, or a prebuilt :class:`GTree`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import QueryError
from repro.road.dijkstra import query_distances
from repro.road.gtree import GTree
from repro.road.network import RoadNetwork, SpatialPoint


def range_filter(
    road: RoadNetwork,
    query_points: Iterable[SpatialPoint],
    t: float,
    gtree: GTree | None = None,
) -> dict[int, float]:
    """Road vertices v with ``D_Q(v) <= t``, mapped to their ``D_Q`` value.

    When ``gtree`` is provided the index accelerates each per-query range
    scan; otherwise a t-bounded Dijkstra per query point is used.  The two
    backends return identical results.
    """
    points = list(query_points)
    if not points:
        raise QueryError("range filter needs at least one query point")
    if t < 0:
        raise QueryError(f"distance threshold must be non-negative, got {t}")
    if gtree is not None:
        return gtree.query_distances(points, t)
    return query_distances(road, points, t)
