"""Road-network substrate: weighted graphs, shortest paths, G-tree index."""

from repro.road.dijkstra import (
    bounded_dijkstra,
    dijkstra,
    network_distance,
    query_distances,
)
from repro.road.gtree import GTree
from repro.road.network import RoadNetwork, SpatialPoint
from repro.road.range_query import range_filter

__all__ = [
    "RoadNetwork",
    "SpatialPoint",
    "dijkstra",
    "bounded_dijkstra",
    "network_distance",
    "query_distances",
    "GTree",
    "range_filter",
]
