"""Road network model: weighted undirected graph + points on vertices/edges.

Matches Section II-A of the paper: vertices are road intersections/ends,
edges are road segments with non-negative costs, and a spatial point may
lie either on a vertex or part-way along an edge (``SpatialPoint``), with
``w(u, p)`` proportional to the distance from endpoint ``u``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import GraphError


@dataclass(frozen=True)
class SpatialPoint:
    """A location on the road network.

    ``offset`` is the distance from ``u`` along edge (u, v); a point on a
    vertex is represented with ``v is None`` and ``offset == 0``.
    """

    u: int
    v: int | None = None
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.v is None and self.offset != 0.0:
            raise GraphError("vertex point must have zero offset")
        if self.offset < 0:
            raise GraphError("offset must be non-negative")

    @property
    def on_vertex(self) -> bool:
        return self.v is None

    @staticmethod
    def at_vertex(u: int) -> SpatialPoint:
        return SpatialPoint(u)

    @staticmethod
    def on_edge(u: int, v: int, offset: float) -> SpatialPoint:
        return SpatialPoint(u, v, offset)


class RoadNetwork:
    """Undirected weighted road graph with optional planar coordinates.

    Coordinates are used by the G-tree spatial bisection and by the
    check-in location mapper; distances are always *network* distances.
    """

    __slots__ = ("_adj", "_coords", "_num_edges", "_flat")

    def __init__(self) -> None:
        self._adj: dict[int, dict[int, float]] = {}
        self._coords: dict[int, tuple[float, float]] = {}
        self._num_edges = 0
        self._flat = None

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def neighbors(self, v: int) -> dict[int, float]:
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"road vertex {v!r} not in network") from None

    def degree(self, v: int) -> int:
        return len(self.neighbors(v))

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def max_degree(self) -> int:
        return max((len(n) for n in self._adj.values()), default=0)

    def weight(self, u: int, v: int) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in network") from None

    def coordinates(self, v: int) -> tuple[float, float]:
        try:
            return self._coords[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} has no coordinates") from None

    def has_coordinates(self, v: int) -> bool:
        return v in self._coords

    # ------------------------------------------------------------------
    def add_vertex(self, v: int, xy: tuple[float, float] | None = None) -> None:
        self._adj.setdefault(v, {})
        if xy is not None:
            self._coords[v] = (float(xy[0]), float(xy[1]))
        self._flat = None

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            raise GraphError(f"self-loop on road vertex {u!r} not allowed")
        if weight < 0:
            raise GraphError(f"edge weight must be non-negative, got {weight}")
        a = self._adj.setdefault(u, {})
        b = self._adj.setdefault(v, {})
        if v not in a:
            self._num_edges += 1
            self._flat = None
        elif self._flat is not None:
            # Weight-only update: the row structure of the CSR view is
            # still valid, so patch the weight entries in place instead
            # of dropping the whole cached conversion.
            self._patch_flat_weight(u, v, float(weight))
        a[v] = float(weight)
        b[u] = float(weight)

    def _patch_flat_weight(self, u: int, v: int, weight: float) -> None:
        fg = self._flat
        ru, rv = fg.row_of(u), fg.row_of(v)
        weights = fg.weights
        if not weights.flags.writeable:
            # Snapshot-restored CSRs may be read-only memory maps;
            # copy-on-write instead of touching the shared mapping.
            weights = weights.copy()
            fg.weights = weights
        s, e = fg.indptr[ru], fg.indptr[ru + 1]
        weights[s:e][fg.indices[s:e] == rv] = weight
        s, e = fg.indptr[rv], fg.indptr[rv + 1]
        weights[s:e][fg.indices[s:e] == ru] = weight
        # Derived per-vertex views embed weights; rebuild them lazily.
        fg._lists = None
        fg._pairs = None

    def flat(self):
        """Cached CSR view (:class:`repro.kernels.FlatGraph`) of the network.

        Built on first use and invalidated by topology mutations (a
        weight-only :meth:`add_edge` on an existing edge patches the
        cached weight array in place instead); shared by every
        flat-backend shortest-path call so the conversion cost is paid
        once per network, not per query.  Concurrent first calls may
        race to build — both produce identical snapshots, so the benign
        race only wastes one build.
        """
        if self._flat is None:
            from repro.kernels.flatgraph import FlatGraph

            self._flat = FlatGraph.from_road(self)
        return self._flat

    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[int]) -> RoadNetwork:
        keep_set = {v for v in keep if v in self._adj}
        g = RoadNetwork()
        for v in keep_set:
            g.add_vertex(v, self._coords.get(v))
        for v in keep_set:
            for u, w in self._adj[v].items():
                if u in keep_set and v < u:
                    g.add_edge(v, u, w)
        return g

    def validate_point(self, p: SpatialPoint) -> None:
        """Raise GraphError unless ``p`` refers to real network elements."""
        if p.u not in self._adj:
            raise GraphError(f"point endpoint {p.u!r} not in network")
        if p.v is not None:
            w = self.weight(p.u, p.v)
            if p.offset > w:
                raise GraphError(
                    f"point offset {p.offset} exceeds edge length {w}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoadNetwork(|V|={self.num_vertices}, |E|={self.num_edges})"
