"""`ServiceClient`: the blocking Python client of a MAC service.

Drop-in migration target for :class:`~repro.engine.MACEngine`: the
methods mirror the engine API (``search`` / ``search_batch`` /
``explain``), accept the same typed :class:`MACRequest` objects, and
raise the same :mod:`repro.errors` classes the in-process engine raises
(rebuilt from the server's typed error payloads) — callers migrate by
swapping the constructor::

    engine = MACEngine(network)          # before: in-process
    engine = ServiceClient(port=8321)    # after: remote, same call sites

    result = engine.search(request)      # MACRequest in, partitions out
    plans = engine.explain(request)

Transport is stdlib ``http.client`` over a keep-alive connection; a
stale connection (server restarted between calls) is retried once
transparently.  Server-side back-pressure surfaces as
:class:`~repro.errors.ServiceOverloaded` (with the server's
``retry_after`` hint) and expired budgets as
:class:`~repro.errors.DeadlineExceeded` — never as a hang.  With
``retry_overloaded=N`` the client absorbs up to N back-pressure
rejections itself, sleeping a capped exponential backoff (with jitter,
honoring the server's hint) between attempts.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time

from repro.engine.request import MACRequest
from repro.errors import ServiceError, ServiceOverloaded
from repro.service.protocol import (
    DEFAULT_PORT,
    ServicePlan,
    ServiceResult,
    error_from_wire,
    plan_from_wire,
    request_to_wire,
    result_from_wire,
)


class ServiceClient:
    """A blocking client bound to one ``host:port`` MAC service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 120.0,
        retry_resets: bool = True,
        retry_overloaded: int = 0,
        retry_backoff: float = 0.25,
        retry_backoff_cap: float = 10.0,
    ) -> None:
        if retry_overloaded < 0:
            raise ServiceError(
                f"retry_overloaded must be >= 0, got {retry_overloaded}"
            )
        if retry_backoff <= 0 or retry_backoff_cap <= 0:
            raise ServiceError("retry backoff parameters must be positive")
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Retry once when the connection is reset mid-response.  MAC
        #: queries are pure (read-only over immutable indexes), so the
        #: replay is idempotent; the reset signature is what a worker
        #: crash in the server's process tier looks like from here.
        self.retry_resets = retry_resets
        #: Absorb up to N 429 rejections (typed ``ServiceOverloaded``)
        #: before surfacing one, sleeping between attempts.  The sleep
        #: is ``min(cap, max(server_hint, backoff * 2**attempt))`` with
        #: ±25% jitter — capped exponential backoff that honors the
        #: server's ``Retry-After`` and never synchronizes a client
        #: herd.  The default 0 preserves fail-fast behavior.
        self.retry_overloaded = retry_overloaded
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, method: str, path: str, payload=None) -> dict:
        """One logical call: transport retries + bounded 429 backoff."""
        attempt = 0
        while True:
            try:
                return self._call_once(method, path, payload)
            except ServiceOverloaded as exc:
                if attempt >= self.retry_overloaded:
                    raise
                backoff = self.retry_backoff * (2**attempt)
                hint = getattr(exc, "retry_after", 0.0) or 0.0
                delay = min(self.retry_backoff_cap, max(hint, backoff))
                time.sleep(delay * (0.75 + 0.5 * random.random()))
                attempt += 1

    def _call_once(self, method: str, path: str, payload=None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        data = b""
        for attempt in (1, 2):
            # Retry exactly once, and only for the stale-keep-alive
            # signatures on a *reused* connection (send failure, or the
            # server closing without sending any response) — a failure
            # mid-response may mean the request already executed, and
            # while queries are pure, silently re-running them doubles
            # engine work; surface those typed instead.
            reused = self._conn is not None
            retriable = reused and attempt == 1
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
            except socket.timeout as exc:
                self.close()
                raise ServiceError(
                    f"MAC service at {self.host}:{self.port} timed out "
                    f"after {self.timeout:g}s"
                ) from exc
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if retriable:
                    continue  # the stale socket never carried the request
                raise ServiceError(
                    f"cannot reach MAC service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            try:
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout as exc:
                self.close()
                raise ServiceError(
                    f"MAC service at {self.host}:{self.port} timed out "
                    f"after {self.timeout:g}s"
                ) from exc
            except http.client.RemoteDisconnected as exc:
                self.close()
                if retriable:
                    continue  # classic stale keep-alive: no response sent
                raise ServiceError(
                    f"MAC service at {self.host}:{self.port} closed the "
                    f"connection without responding: {exc}"
                ) from exc
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if (
                    isinstance(exc, (ConnectionResetError, BrokenPipeError))
                    and self.retry_resets
                    and attempt == 1
                ):
                    # A reset mid-response is the restart window of the
                    # server's worker tier (or a server bounce).  The
                    # request may have executed, but queries are pure —
                    # one replay trades at worst duplicate engine work
                    # for not failing a retriable request.
                    continue
                raise ServiceError(
                    f"connection to MAC service at {self.host}:{self.port} "
                    f"was lost while awaiting the response: {exc}"
                ) from exc
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"malformed response from MAC service ({exc})"
            ) from exc
        if isinstance(parsed, dict) and "error" in parsed:
            raise error_from_wire(parsed["error"])
        if not isinstance(parsed, dict):
            raise ServiceError("malformed response from MAC service")
        return parsed

    @staticmethod
    def _check_request(request) -> MACRequest:
        if not isinstance(request, MACRequest):
            raise ServiceError(
                f"expected a MACRequest, got {type(request).__name__}; "
                f"build one with MACRequest.make(...)"
            )
        return request

    # ------------------------------------------------------------------
    # the engine-mirroring API
    # ------------------------------------------------------------------
    def search(self, request: MACRequest) -> ServiceResult:
        """Run one request on the server (`MACEngine.search` shape)."""
        wire = request_to_wire(self._check_request(request))
        payload = self._call("POST", "/v1/search", wire)
        return result_from_wire(payload.get("result"))

    def search_batch(
        self,
        requests,
        workers: int | None = None,
        *,
        return_errors: bool = False,
    ) -> list:
        """Run independent requests in one round trip, in request order.

        Mirrors ``MACEngine.search_batch``: by default the first
        per-item failure is re-raised typed (the whole batch was still
        executed server-side).  With ``return_errors=True`` the list
        carries the typed exception object in the failed slots instead,
        so callers can harvest partial results.
        """
        reqs = [self._check_request(r) for r in requests]
        if not reqs:
            return []
        body = {"requests": [request_to_wire(r) for r in reqs]}
        if workers is not None:
            body["workers"] = workers
        payload = self._call("POST", "/v1/batch", body)
        items = payload.get("results")
        if not isinstance(items, list) or len(items) != len(reqs):
            raise ServiceError(
                "malformed batch response from MAC service"
            )
        out = []
        for item in items:
            if isinstance(item, dict) and item.get("ok"):
                out.append(result_from_wire(item.get("result")))
            else:
                error = error_from_wire(
                    item.get("error") if isinstance(item, dict) else None
                )
                if not return_errors:
                    raise error
                out.append(error)
        return out

    def explain(self, request: MACRequest) -> ServicePlan:
        """Resolve the plan server-side (`MACEngine.explain` shape)."""
        wire = request_to_wire(self._check_request(request))
        payload = self._call("POST", "/v1/explain", wire)
        return plan_from_wire(payload.get("plan"))

    # ------------------------------------------------------------------
    # service introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness + version info (never triggers index builds)."""
        return self._call("GET", "/v1/healthz")

    def metrics(self) -> dict:
        """Engine cache/stage telemetry + server admission counters."""
        return self._call("GET", "/v1/metrics")

    # ------------------------------------------------------------------
    # zero-downtime admin operations
    # ------------------------------------------------------------------
    def reload(self, snapshot=None) -> dict:
        """Live snapshot swap (``POST /v1/admin/reload``).

        ``snapshot=None`` reloads the path the server booted from.
        Blocks until the new generation serves and the old one drained;
        a validation failure raises the typed
        :class:`~repro.errors.ReloadError` (the fleet was rolled back).
        """
        payload = {} if snapshot is None else {"snapshot": str(snapshot)}
        result = self._call("POST", "/v1/admin/reload", payload)
        return result.get("reload", {})

    def resize(self, workers: int) -> dict:
        """Grow/shrink the server's worker fleet at runtime."""
        result = self._call("POST", "/v1/admin/resize", {"workers": workers})
        return result.get("resize", {})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceClient(http://{self.host}:{self.port})"
