"""`ServiceClient`: the blocking Python client of a MAC service.

Drop-in migration target for :class:`~repro.engine.MACEngine`: the
methods mirror the engine API (``search`` / ``search_batch`` /
``explain``), accept the same typed :class:`MACRequest` objects, and
raise the same :mod:`repro.errors` classes the in-process engine raises
(rebuilt from the server's typed error payloads) — callers migrate by
swapping the constructor::

    engine = MACEngine(network)          # before: in-process
    engine = ServiceClient(port=8321)    # after: remote, same call sites

    result = engine.search(request)      # MACRequest in, partitions out
    plans = engine.explain(request)

Transport is stdlib ``http.client`` over a keep-alive connection; a
stale connection (server restarted between calls) is retried once
transparently.  Server-side back-pressure surfaces as
:class:`~repro.errors.ServiceOverloaded` (with the server's
``retry_after`` hint) and expired budgets as
:class:`~repro.errors.DeadlineExceeded` — never as a hang.  With
``retry_overloaded=N`` the client absorbs up to N back-pressure
rejections itself, sleeping a capped exponential backoff (with jitter,
honoring the server's hint) between attempts.

With ``breaker_threshold=N`` the client also runs a circuit breaker:
after N *consecutive* connection failures (or worker-loss 503s) the
circuit opens and calls fail fast with the typed
:class:`~repro.errors.CircuitOpen` instead of hammering a down
service.  After ``breaker_cooldown`` seconds one half-open probe call
is let through — success closes the circuit, failure re-opens it.
Only transport failures and :class:`~repro.errors.WorkerCrashed`
count: any parsed HTTP response (even a 4xx error) proves the server
is reachable and resets the breaker.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time

from repro.engine.request import MACRequest
from repro.errors import (
    CircuitOpen,
    ServiceError,
    ServiceOverloaded,
    WorkerCrashed,
)
from repro.service.protocol import (
    DEFAULT_PORT,
    ServicePlan,
    ServiceResult,
    error_from_wire,
    plan_from_wire,
    request_to_wire,
    result_from_wire,
)


class _ConnectionFailed(ServiceError):
    """Internal: the service could not be reached or stopped answering.

    Every transport-level raise site uses this subclass so the circuit
    breaker can tell "the server is unreachable" apart from "the server
    answered with an error" without string matching.  Public surface is
    unchanged — callers still catch :class:`ServiceError`.
    """


class ServiceClient:
    """A blocking client bound to one ``host:port`` MAC service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 120.0,
        retry_resets: bool = True,
        retry_overloaded: int = 0,
        retry_backoff: float = 0.25,
        retry_backoff_cap: float = 10.0,
        breaker_threshold: int = 0,
        breaker_cooldown: float = 5.0,
    ) -> None:
        if retry_overloaded < 0:
            raise ServiceError(
                f"retry_overloaded must be >= 0, got {retry_overloaded}"
            )
        if retry_backoff <= 0 or retry_backoff_cap <= 0:
            raise ServiceError("retry backoff parameters must be positive")
        if breaker_threshold < 0:
            raise ServiceError(
                f"breaker_threshold must be >= 0, got {breaker_threshold}"
            )
        if breaker_cooldown <= 0:
            raise ServiceError(
                f"breaker_cooldown must be positive, got {breaker_cooldown}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Retry once when the connection is reset mid-response.  MAC
        #: queries are pure (read-only over immutable indexes), so the
        #: replay is idempotent; the reset signature is what a worker
        #: crash in the server's process tier looks like from here.
        self.retry_resets = retry_resets
        #: Absorb up to N 429 rejections (typed ``ServiceOverloaded``)
        #: before surfacing one, sleeping between attempts.  The sleep
        #: is ``min(cap, max(server_hint, backoff * 2**attempt))`` with
        #: ±25% jitter — capped exponential backoff that honors the
        #: server's ``Retry-After`` and never synchronizes a client
        #: herd.  The default 0 preserves fail-fast behavior.
        self.retry_overloaded = retry_overloaded
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        #: Circuit breaker: consecutive connection/worker-loss failures
        #: before the circuit opens (0 = disabled, the default) and how
        #: long it stays open before a half-open probe is allowed.
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._breaker_failures = 0
        self._breaker_open_until: float | None = None
        self._breaker_probing = False
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- circuit breaker ----------------------------------------------
    def _breaker_preflight(self) -> None:
        """Fail fast while the circuit is open; arm the half-open probe."""
        if not self.breaker_threshold or self._breaker_open_until is None:
            return
        remaining = self._breaker_open_until - time.monotonic()
        if remaining > 0:
            raise CircuitOpen(
                f"circuit to MAC service at {self.host}:{self.port} is "
                f"open after {self._breaker_failures} consecutive "
                f"connection failure(s); next probe in {remaining:.2f}s",
                retry_after=remaining,
            )
        # Cooldown elapsed: let this one call through as the probe.
        self._breaker_probing = True

    def _breaker_success(self) -> None:
        self._breaker_failures = 0
        self._breaker_open_until = None
        self._breaker_probing = False

    def _breaker_record(self, exc: Exception) -> None:
        """Count a failed call; open (or re-open) the circuit if due.

        Only unreachability counts: transport failures and
        :class:`WorkerCrashed` (the server's compute tier is dying
        under us).  Any other typed error came in a parsed HTTP
        response — the server is alive, so the streak resets.
        """
        if not self.breaker_threshold:
            return
        if isinstance(exc, (_ConnectionFailed, WorkerCrashed)):
            self._breaker_failures += 1
            if (
                self._breaker_probing
                or self._breaker_failures >= self.breaker_threshold
            ):
                self._breaker_open_until = (
                    time.monotonic() + self.breaker_cooldown
                )
            self._breaker_probing = False
        else:
            self._breaker_success()

    def _call(self, method: str, path: str, payload=None) -> dict:
        """One logical call: breaker + transport retries + 429 backoff."""
        attempt = 0
        while True:
            self._breaker_preflight()
            try:
                result = self._call_once(method, path, payload)
            except ServiceOverloaded as exc:
                # Back-pressure is a healthy server answering: the
                # breaker resets even while we back off.
                self._breaker_success()
                if attempt >= self.retry_overloaded:
                    raise
                backoff = self.retry_backoff * (2**attempt)
                hint = getattr(exc, "retry_after", 0.0) or 0.0
                delay = min(self.retry_backoff_cap, max(hint, backoff))
                time.sleep(delay * (0.75 + 0.5 * random.random()))
                attempt += 1
                continue
            except Exception as exc:
                self._breaker_record(exc)
                raise
            self._breaker_success()
            return result

    def _call_once(self, method: str, path: str, payload=None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        data = b""
        for attempt in (1, 2):
            # Retry exactly once, and only for the stale-keep-alive
            # signatures on a *reused* connection (send failure, or the
            # server closing without sending any response) — a failure
            # mid-response may mean the request already executed, and
            # while queries are pure, silently re-running them doubles
            # engine work; surface those typed instead.
            reused = self._conn is not None
            retriable = reused and attempt == 1
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
            except socket.timeout as exc:
                self.close()
                raise _ConnectionFailed(
                    f"MAC service at {self.host}:{self.port} timed out "
                    f"after {self.timeout:g}s"
                ) from exc
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if retriable:
                    continue  # the stale socket never carried the request
                raise _ConnectionFailed(
                    f"cannot reach MAC service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            try:
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout as exc:
                self.close()
                raise _ConnectionFailed(
                    f"MAC service at {self.host}:{self.port} timed out "
                    f"after {self.timeout:g}s"
                ) from exc
            except http.client.RemoteDisconnected as exc:
                self.close()
                if retriable:
                    continue  # classic stale keep-alive: no response sent
                raise _ConnectionFailed(
                    f"MAC service at {self.host}:{self.port} closed the "
                    f"connection without responding: {exc}"
                ) from exc
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if (
                    isinstance(exc, (ConnectionResetError, BrokenPipeError))
                    and self.retry_resets
                    and attempt == 1
                ):
                    # A reset mid-response is the restart window of the
                    # server's worker tier (or a server bounce).  The
                    # request may have executed, but queries are pure —
                    # one replay trades at worst duplicate engine work
                    # for not failing a retriable request.
                    continue
                raise _ConnectionFailed(
                    f"connection to MAC service at {self.host}:{self.port} "
                    f"was lost while awaiting the response: {exc}"
                ) from exc
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"malformed response from MAC service ({exc})"
            ) from exc
        if isinstance(parsed, dict) and "error" in parsed:
            raise error_from_wire(parsed["error"])
        if not isinstance(parsed, dict):
            raise ServiceError("malformed response from MAC service")
        return parsed

    @staticmethod
    def _check_request(request) -> MACRequest:
        if not isinstance(request, MACRequest):
            raise ServiceError(
                f"expected a MACRequest, got {type(request).__name__}; "
                f"build one with MACRequest.make(...)"
            )
        return request

    # ------------------------------------------------------------------
    # the engine-mirroring API
    # ------------------------------------------------------------------
    def search(self, request: MACRequest) -> ServiceResult:
        """Run one request on the server (`MACEngine.search` shape)."""
        wire = request_to_wire(self._check_request(request))
        payload = self._call("POST", "/v1/search", wire)
        return result_from_wire(payload.get("result"))

    def search_batch(
        self,
        requests,
        workers: int | None = None,
        *,
        return_errors: bool = False,
    ) -> list:
        """Run independent requests in one round trip, in request order.

        Mirrors ``MACEngine.search_batch``: by default the first
        per-item failure is re-raised typed (the whole batch was still
        executed server-side).  With ``return_errors=True`` the list
        carries the typed exception object in the failed slots instead,
        so callers can harvest partial results.
        """
        reqs = [self._check_request(r) for r in requests]
        if not reqs:
            return []
        body = {"requests": [request_to_wire(r) for r in reqs]}
        if workers is not None:
            body["workers"] = workers
        payload = self._call("POST", "/v1/batch", body)
        items = payload.get("results")
        if not isinstance(items, list) or len(items) != len(reqs):
            raise ServiceError(
                "malformed batch response from MAC service"
            )
        out = []
        for item in items:
            if isinstance(item, dict) and item.get("ok"):
                out.append(result_from_wire(item.get("result")))
            else:
                error = error_from_wire(
                    item.get("error") if isinstance(item, dict) else None
                )
                if not return_errors:
                    raise error
                out.append(error)
        return out

    def explain(self, request: MACRequest) -> ServicePlan:
        """Resolve the plan server-side (`MACEngine.explain` shape)."""
        wire = request_to_wire(self._check_request(request))
        payload = self._call("POST", "/v1/explain", wire)
        return plan_from_wire(payload.get("plan"))

    # ------------------------------------------------------------------
    # service introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness + version info (never triggers index builds)."""
        return self._call("GET", "/v1/healthz")

    def metrics(self) -> dict:
        """Engine cache/stage telemetry + server admission counters."""
        return self._call("GET", "/v1/metrics")

    # ------------------------------------------------------------------
    # zero-downtime admin operations
    # ------------------------------------------------------------------
    def reload(self, snapshot=None) -> dict:
        """Live snapshot swap (``POST /v1/admin/reload``).

        ``snapshot=None`` reloads the path the server booted from.
        Blocks until the new generation serves and the old one drained;
        a validation failure raises the typed
        :class:`~repro.errors.ReloadError` (the fleet was rolled back).
        """
        payload = {} if snapshot is None else {"snapshot": str(snapshot)}
        result = self._call("POST", "/v1/admin/reload", payload)
        return result.get("reload", {})

    def resize(self, workers: int) -> dict:
        """Grow/shrink the server's worker fleet at runtime."""
        result = self._call("POST", "/v1/admin/resize", {"workers": workers})
        return result.get("resize", {})

    def mutate(self, mutations) -> dict:
        """Apply one live mutation batch fleet-wide.

        ``mutations`` is a :mod:`repro.live` batch — typed mutation
        objects or their wire dicts — normalized client-side so a
        malformed mutation fails here as a typed
        :class:`~repro.errors.MutationError` before any network round
        trip.  Server-side rejection comes back as the same typed error
        (HTTP 400, nothing applied); a mutation racing another admin
        operation raises :class:`~repro.errors.ReloadError` (409).
        Returns the apply summary (``applied``/``by_kind``/``evicted``/
        ``delta_seq``/``logged``).
        """
        from repro.live.mutations import mutation_to_wire, normalize_batch

        wire = [mutation_to_wire(m) for m in normalize_batch(mutations)]
        result = self._call("POST", "/v1/admin/mutate", {"mutations": wire})
        return result.get("mutate", {})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceClient(http://{self.host}:{self.port})"
