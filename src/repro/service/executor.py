"""`EngineExecutor`: the in-process (threads) execution backend.

:class:`~repro.service.MACService` talks to its compute tier through a
small executor protocol — ``search_wire`` / ``explain_wire`` /
``telemetry_wire`` plus liveness introspection and the zero-downtime
admin surface (``reload`` / ``resize`` / ``mutate_wire`` /
``snapshot_wire``) — so the
same server fronts either one shared engine on a thread pool (this
module, the default) or a multi-process worker tier
(:class:`repro.pool.PoolExecutor`, ``repro serve --worker-processes N``).
"""

from __future__ import annotations

import time

from repro.engine.request import MACRequest
from repro.errors import ReloadError, SnapshotError
from repro.service.protocol import (
    plan_to_wire,
    result_to_wire,
    telemetry_to_wire,
)


class EngineExecutor:
    """Executor over one in-process engine shared across server threads.

    ``remote`` is false: calls run in the server process, so the server
    keeps dispatching them on its bounded engine-call thread pool and
    answering ``explain`` directly on the event loop.
    """

    kind = "threads"
    remote = False
    num_workers = 0

    def __init__(
        self,
        engine,
        *,
        source: str | None = None,
        index_digest: str | None = None,
    ) -> None:
        self.engine = engine
        self._fingerprint: str | None = None
        self._generation = 0
        self._source = source
        self._index_digest = index_digest

    def search_wire(self, request: MACRequest) -> dict:
        return result_to_wire(self.engine.search(request))

    def explain_wire(self, request: MACRequest) -> dict:
        return plan_to_wire(self.engine.explain(request))

    def telemetry_wire(self) -> dict:
        return telemetry_to_wire(self.engine.telemetry())

    def fingerprint(self) -> str | None:
        if self._fingerprint is None:
            try:
                from repro.store.fingerprint import network_fingerprint

                self._fingerprint = network_fingerprint(self.engine.network)
            except Exception:
                # Duck-typed test engines need not carry a real network;
                # the fingerprint is informational, never load-bearing.
                return None
        return self._fingerprint

    def mutate_wire(self, mutations: list) -> dict:
        """Apply one live mutation batch to the engine, in place.

        The threads tier has a single shared engine, so one
        :meth:`~repro.engine.MACEngine.apply` call mutates what every
        slot serves.  The cached dataset fingerprint is dropped — the
        network content just changed — and recomputed lazily.
        """
        summary = self.engine.apply(mutations)
        self._fingerprint = None
        return summary

    def snapshot_wire(self) -> dict:
        return {
            "fingerprint": self.fingerprint(),
            "generation": self._generation,
            "source": self._source,
            "index_digest": self._index_digest,
            "delta_seq": getattr(self.engine, "delta_seq", 0),
        }

    def workers_wire(self) -> dict:
        return {
            "alive": 1,
            "total": 1,
            "restarts": 0,
            "generation": self._generation,
            "stalled_workers": 0,
            "workers": [],
        }

    def pool_wire(self) -> dict | None:
        return None

    def reload(self, snapshot_path) -> dict:
        """Reload the engine from a snapshot, in place.

        The threads tier has no fleet to swap: in-flight searches finish
        on the old engine object, new calls see the new one (one
        attribute assignment).  Validation failures raise a typed
        :class:`~repro.errors.ReloadError`, old engine untouched.
        """
        from repro.engine.engine import MACEngine
        from repro.store.snapshot import snapshot_digest

        path = str(snapshot_path)
        started = time.monotonic()
        try:
            digest = snapshot_digest(path)
            engine = MACEngine.load(path, self.engine.network)
        except SnapshotError as exc:
            raise ReloadError(
                f"reload of {path} rolled back, engine untouched: {exc}"
            ) from exc
        self.engine = engine
        self._fingerprint = None
        self._generation += 1
        self._source = path
        self._index_digest = digest
        return {
            "generation": self._generation,
            "fingerprint": self.fingerprint(),
            "source": path,
            "index_digest": digest,
            "workers": 0,
            "drained": 0,
            "terminated": 0,
            "elapsed_s": round(time.monotonic() - started, 3),
        }

    def resize(self, num_workers: int) -> dict:
        raise ReloadError(
            "the in-process thread executor has no worker fleet to resize; "
            "boot with `repro serve --worker-processes N` for a resizable tier"
        )

    def close(self, timeout: float | None = None) -> None:
        pass  # the engine outlives the service (callers own it)
