"""`EngineExecutor`: the in-process (threads) execution backend.

:class:`~repro.service.MACService` talks to its compute tier through a
small executor protocol — ``search_wire`` / ``explain_wire`` /
``telemetry_wire`` plus liveness introspection — so the same server
fronts either one shared engine on a thread pool (this module, the
default) or a multi-process worker tier
(:class:`repro.pool.PoolExecutor`, ``repro serve --worker-processes N``).
"""

from __future__ import annotations

from repro.engine.request import MACRequest
from repro.service.protocol import (
    plan_to_wire,
    result_to_wire,
    telemetry_to_wire,
)


class EngineExecutor:
    """Executor over one in-process engine shared across server threads.

    ``remote`` is false: calls run in the server process, so the server
    keeps dispatching them on its bounded engine-call thread pool and
    answering ``explain`` directly on the event loop.
    """

    kind = "threads"
    remote = False
    num_workers = 0

    def __init__(self, engine) -> None:
        self.engine = engine
        self._fingerprint: str | None = None

    def search_wire(self, request: MACRequest) -> dict:
        return result_to_wire(self.engine.search(request))

    def explain_wire(self, request: MACRequest) -> dict:
        return plan_to_wire(self.engine.explain(request))

    def telemetry_wire(self) -> dict:
        return telemetry_to_wire(self.engine.telemetry())

    def fingerprint(self) -> str | None:
        if self._fingerprint is None:
            try:
                from repro.store.fingerprint import network_fingerprint

                self._fingerprint = network_fingerprint(self.engine.network)
            except Exception:
                # Duck-typed test engines need not carry a real network;
                # the fingerprint is informational, never load-bearing.
                return None
        return self._fingerprint

    def workers_wire(self) -> dict:
        return {"alive": 1, "total": 1, "restarts": 0, "workers": []}

    def pool_wire(self) -> dict | None:
        return None

    def close(self) -> None:
        pass  # the engine outlives the service (callers own it)
