"""`MACService`: the asyncio JSON-over-HTTP front end of `MACEngine`.

One warm engine process, many concurrent remote queries.  The server is
stdlib-only (``asyncio`` streams + a minimal HTTP/1.1 layer): engine
calls are CPU-bound Python, so they run on a bounded thread pool while
the event loop stays free to accept, parse, and answer.

The compute tier behind the HTTP layer is pluggable: the default
:class:`~repro.service.executor.EngineExecutor` shares one in-process
engine across the thread pool, while
:class:`~repro.pool.PoolExecutor` fronts a supervised tier of worker
*processes* (``repro serve --worker-processes N``) that escapes the GIL
for CPU-bound searches.  A request in flight on a worker that dies
fails typed (503, :class:`~repro.errors.WorkerCrashed`); the tier
restarts the worker and later retries succeed.

Endpoints (all bodies JSON):

========================  =============================================
``POST /v1/search``       one wire request -> one result
``POST /v1/batch``        ``{"requests": [...], "workers": n}`` ->
                          per-item ``{"ok": ..., "result"|"error"}``
``POST /v1/explain``      one wire request -> the resolved plan
``GET  /v1/healthz``      liveness + version/protocol (never builds)
``GET  /v1/metrics``      engine cache/stage telemetry + admission
                          counters
``POST /v1/admin/reload`` ``{"snapshot": path?}`` -> live snapshot swap
                          (zero-downtime; 409 typed rollback on failure)
``POST /v1/admin/resize`` ``{"workers": n}`` -> grow/shrink the worker
                          fleet with graceful drain
``POST /v1/admin/mutate`` ``{"mutations": [...]}`` -> apply one live
                          mutation batch fleet-wide (400 typed
                          ``MutationError`` on a rejected batch, 409
                          when racing another admin operation)
========================  =============================================

**Zero-downtime operations.**  The admin endpoints (and ``SIGHUP`` when
running under :meth:`MACService.run`) reload the serving snapshot and
resize the worker fleet without dropping requests; they run outside
admission control so an overloaded server can still be operated.  See
ENGINE.md ("Operations").

**Admission control.**  At most ``max_concurrency`` requests compute at
once; up to ``queue_depth`` more wait.  Beyond that the server answers
``429`` with a ``Retry-After`` estimate instead of building an unbounded
backlog — back-pressure reaches the client as the typed
:class:`~repro.errors.ServiceOverloaded`.

**Deadlines.**  A request's ``deadline`` budget covers queue wait too:
time spent queued is subtracted before dispatch, and a request whose
budget died in the queue fails fast (504, typed
:class:`~repro.errors.DeadlineExceeded`) without occupying a worker.
``default_deadline`` applies a server-side budget to requests that do
not carry one, so one pathological query cannot wedge a slot forever.

**Load shedding & brownout.**  Two earlier outs keep an overloaded
server from doing doomed work: a budgeted search whose EWMA-predicted
queue wait already exceeds its remaining budget is rejected at
admission (429 + ``Retry-After`` — cheaper for everyone than a certain
504), and under *sustained* pressure the server enters **brownout**
mode: deadline-bearing searches are auto-degraded to ``anytime=True``
so they return marked partial results at their budget instead of
timing out — graceful degradation rather than a 5xx storm.  Entry and
exit are hysteretic (``brownout_enter``/``brownout_exit`` in-flight
thresholds, each sustained for ``brownout_hold`` seconds); healthz
reports ``mode: normal|brownout`` and ``/v1/metrics`` counts degraded
and shed requests.  See ENGINE.md ("Degradation & tail latency").
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import queue
import signal
import sys
import threading
import time
import traceback
from collections.abc import Callable
from dataclasses import replace

from repro import __version__
from repro.engine.engine import MACEngine
from repro.errors import (
    DeadlineExceeded,
    QueryError,
    ReloadError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    WorkerCrashed,
)
from repro.service.executor import EngineExecutor
from repro.service.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    error_to_wire,
    request_from_wire,
)

#: Largest accepted request body (a batch of thousands of requests fits
#: comfortably; anything bigger is a client bug, answered with 413).
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _DaemonExecutor(concurrent.futures.Executor):
    """A fixed pool of *daemon* worker threads.

    ``ThreadPoolExecutor`` workers are non-daemon and joined at
    interpreter exit, so one wedged engine call (an unbudgeted request
    stuck in a pathological search) would block process shutdown
    forever — violating the clean-SIGTERM contract.  Daemon workers let
    the process exit with in-flight work abandoned; bounded requests
    never reach that point (their deadline aborts them typed).

    ``submit`` is only ever called from the event-loop thread, so the
    lazy thread spawning needs no locking.
    """

    def __init__(self, max_workers: int, thread_name_prefix: str) -> None:
        self._work: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self._max_workers = max_workers
        self._prefix = thread_name_prefix
        self._is_shutdown = False

    def submit(self, fn, /, *args, **kwargs):
        if self._is_shutdown:
            raise RuntimeError("cannot submit to a shut-down executor")
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._work.put((future, fn, args, kwargs))
        if len(self._threads) < self._max_workers:
            thread = threading.Thread(
                target=self._worker,
                name=f"{self._prefix}-{len(self._threads)}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return future

    def _worker(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            future, fn, args, kwargs = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:
                future.set_exception(exc)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False):
        self._is_shutdown = True
        for _ in self._threads:
            self._work.put(None)


class MACService:
    """A long-lived serving process around one prepared engine.

    Parameters
    ----------
    engine:
        The warm :class:`MACEngine` every request runs against (its
        caches are thread-safe; the service shares them across slots).
        Mutually exclusive with ``executor``.
    executor:
        An execution backend instead of an in-process engine — e.g.
        :class:`repro.pool.PoolExecutor` over a worker-process tier.
        Passing ``engine`` is shorthand for
        ``executor=EngineExecutor(engine)``.
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start` / ``start_background``).
    max_concurrency:
        Engine calls executing at once (the thread-pool width).
    queue_depth:
        Admitted-but-waiting requests beyond ``max_concurrency``; the
        next request is rejected with 429 + ``Retry-After``.
    default_deadline:
        Budget (seconds) stamped onto requests that carry none; ``None``
        serves unbudgeted requests as-is.
    drain_timeout:
        Grace period (seconds) for in-flight work at shutdown: open
        connections get this long to finish their response, and the
        compute tier gets it to drain its in-flight pool requests
        before workers are terminated (``--drain-timeout`` on the CLI).
    snapshot_path:
        The snapshot ``/v1/admin/reload`` (and ``SIGHUP``) reloads when
        the request names none — normally the path the server booted
        from.
    brownout_enter:
        In-flight requests at or above which (sustained for
        ``brownout_hold`` seconds) the server enters brownout mode.
        Defaults to three quarters into the admission queue.
    brownout_exit:
        In-flight requests at or below which (sustained for
        ``brownout_hold`` seconds) a brownout ends.  Must be below
        ``brownout_enter``; defaults to half of ``max_concurrency``.
    brownout_hold:
        Hysteresis hold (seconds) for both brownout transitions, so a
        single burst or a momentary lull does not flap the mode.
    """

    def __init__(
        self,
        engine: MACEngine | None = None,
        *,
        executor=None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_concurrency: int = 4,
        queue_depth: int = 16,
        default_deadline: float | None = None,
        drain_timeout: float = 5.0,
        snapshot_path: str | None = None,
        brownout_enter: int | None = None,
        brownout_exit: int | None = None,
        brownout_hold: float = 0.5,
    ) -> None:
        if (engine is None) == (executor is None):
            raise ServiceError(
                "provide exactly one of engine= or executor="
            )
        if max_concurrency < 1:
            raise ServiceError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_depth < 0:
            raise ServiceError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        if default_deadline is not None and default_deadline <= 0:
            raise ServiceError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        if drain_timeout <= 0:
            raise ServiceError(
                f"drain_timeout must be positive, got {drain_timeout}"
            )
        if brownout_enter is None:
            # Deep into the admission queue: pressure, not a burst.
            brownout_enter = max_concurrency + max(1, 3 * queue_depth // 4)
        if brownout_exit is None:
            brownout_exit = max(0, max_concurrency // 2)
        if brownout_enter < 1:
            raise ServiceError(
                f"brownout_enter must be >= 1, got {brownout_enter}"
            )
        if brownout_exit < 0 or brownout_exit >= brownout_enter:
            raise ServiceError(
                f"brownout_exit must be in [0, brownout_enter), got "
                f"{brownout_exit} (enter {brownout_enter})"
            )
        if brownout_hold <= 0:
            raise ServiceError(
                f"brownout_hold must be positive, got {brownout_hold}"
            )
        self.executor = (
            executor if executor is not None else EngineExecutor(engine)
        )
        # ``None`` in pool mode: the parent engine exists only to fork.
        self.engine = (
            engine if engine is not None else self.executor.engine
        )
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.default_deadline = default_deadline
        self.drain_timeout = drain_timeout
        self.snapshot_path = snapshot_path
        self.brownout_enter = brownout_enter
        self.brownout_exit = brownout_exit
        self.brownout_hold = brownout_hold
        # The single engine-call pool: its width IS the concurrency
        # bound — every search, including each batch item, runs on it.
        self._pool = _DaemonExecutor(
            max_workers=max_concurrency, thread_name_prefix="mac-service"
        )
        self._sem = asyncio.Semaphore(max_concurrency)
        self._open_writers: set[asyncio.StreamWriter] = set()
        self._busy_writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._thread_error: BaseException | None = None
        self._started_at = time.monotonic()
        # Admission/serving counters; touched only from the event loop.
        self._in_flight = 0
        self._served = 0
        self._rejected = 0
        self._errors = 0
        self._deadline_exceeded = 0
        self._requests_total = 0
        self._reloads = 0
        self._resizes = 0
        self._mutations = 0
        self._deltas_logged = 0
        self._admin_tasks: set[asyncio.Task] = set()
        self._latency_ewma = 0.1  # seconds; seeds the Retry-After estimate
        # Degradation state.  ``_mode`` transitions happen only on the
        # event loop (in _dispatch); the shed/degrade counters are also
        # bumped from pool worker threads, hence the lock.
        self._mode = "normal"
        self._pressure_since: float | None = None
        self._calm_since: float | None = None
        self._brownouts = 0
        self._counters_lock = threading.Lock()
        self._brownout_degraded = 0
        self._shed_expired = 0
        self._shed_predicted = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (inside a running event loop)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Stop accepting, drain open connections, release the pool.

        Idle keep-alive connections are closed immediately (the handler
        sees EOF and exits); handlers mid-request get ``drain_timeout``
        seconds to finish writing their response (the drain flag stops
        them from waiting for another request afterwards), then any
        stragglers are cut.  The compute tier gets the same grace: a
        pool executor drains its in-flight worker requests before any
        worker process is terminated — SIGTERM on ``repro serve`` loses
        nothing a worker could still finish.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._open_writers):
            if writer not in self._busy_writers:
                writer.close()
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks), timeout=self.drain_timeout
            )
        for writer in list(self._open_writers):
            writer.close()
        self._pool.shutdown(wait=False)
        # Stop the compute tier (a no-op for the default in-process
        # executor; the pool executor drains, then joins its worker
        # processes).
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.executor.close(self.drain_timeout)
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def run(self, on_started: Callable[[], None] | None = None) -> None:
        """Serve until SIGINT/SIGTERM (the blocking CLI entry point)."""
        asyncio.run(self._run_async(on_started))

    async def _run_async(
        self, on_started: Callable[[], None] | None
    ) -> None:
        await self.start()
        self._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop_event.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        if hasattr(signal, "SIGHUP"):
            # The classic operator reload signal: re-read the serving
            # snapshot (zero-downtime swap in pool mode).
            try:
                loop.add_signal_handler(signal.SIGHUP, self._on_sighup)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        if on_started is not None:
            on_started()
        await self._stop_event.wait()
        await self.stop()

    def _on_sighup(self) -> None:
        """SIGHUP = reload the boot snapshot (runs on the event loop)."""
        if self.snapshot_path is None:
            print(
                "serve: SIGHUP ignored — no --snapshot to reload",
                file=sys.stderr, flush=True,
            )
            return
        task = asyncio.ensure_future(self._sighup_reload())
        self._admin_tasks.add(task)
        task.add_done_callback(self._admin_tasks.discard)

    async def _sighup_reload(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            summary = await loop.run_in_executor(
                None, self.executor.reload, self.snapshot_path
            )
        except ReproError as exc:
            print(f"serve: SIGHUP reload failed: {exc}",
                  file=sys.stderr, flush=True)
            return
        self.engine = self.executor.engine
        self._reloads += 1
        print(
            f"serve: SIGHUP reload complete — generation "
            f"{summary['generation']}, fingerprint {summary['fingerprint']}",
            file=sys.stderr, flush=True,
        )

    # -- background-thread lifecycle (tests, benchmarks, embedding) ----
    def start_background(self) -> MACService:
        """Run the server on a daemon thread; returns once it is bound."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, args=(ready,),
            name="mac-service-loop", daemon=True,
        )
        self._thread.start()
        ready.wait()
        if self._thread_error is not None:
            raise self._thread_error
        return self

    def _thread_main(self, ready: threading.Event) -> None:
        try:
            asyncio.run(self._background_main(ready))
        except BaseException as exc:  # pragma: no cover - defensive
            self._thread_error = exc
            ready.set()

    async def _background_main(self, ready: threading.Event) -> None:
        try:
            await self.start()
        except BaseException as exc:
            self._thread_error = exc
            ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        ready.set()
        await self._stop_event.wait()
        await self.stop()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop a background server and join its thread."""
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> MACService:
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._open_writers.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break  # client closed between requests
                except asyncio.LimitOverrunError:
                    self._write_response(
                        writer, 431,
                        {"error": {"type": "ServiceError",
                                   "message": "request headers too large"}},
                        keep_alive=False,
                    )
                    break
                method, path, keep_alive, length, bad = self._parse_head(head)
                if bad is not None:
                    self._write_response(writer, *bad, keep_alive=False)
                    break
                if length > MAX_BODY_BYTES:
                    self._write_response(
                        writer, 413,
                        {"error": {"type": "ServiceError",
                                   "message": "request body too large"}},
                        keep_alive=False,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                self._busy_writers.add(writer)
                try:
                    status, payload, headers = await self._dispatch(
                        method, path, body
                    )
                    self._write_response(
                        writer, status, payload,
                        keep_alive=keep_alive, extra_headers=headers,
                    )
                    await writer.drain()
                finally:
                    self._busy_writers.discard(writer)
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._open_writers.discard(writer)
            self._busy_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _parse_head(head: bytes):
        """(method, path, keep_alive, content_length, error) of a request."""
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            bad = (400, {"error": {"type": "ServiceError",
                                   "message": "malformed HTTP request line"}})
            return "", "", False, 0, bad
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        connection = headers.get("connection", "").lower()
        keep_alive = version.strip() == "HTTP/1.1" and connection != "close"
        try:
            length = int(headers.get("content-length", "0") or "0")
            if length < 0:
                raise ValueError(length)
        except ValueError:
            bad = (400, {"error": {"type": "ServiceError",
                                   "message": "malformed Content-Length"}})
            return method, path, False, 0, bad
        return method, path, keep_alive, length, None

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        extra_headers: tuple = (),
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns (status, payload, extra_headers)."""
        self._requests_total += 1
        self._update_mode()
        routes = {
            "/v1/search": ("POST", self._handle_search),
            "/v1/batch": ("POST", self._handle_batch),
            "/v1/explain": ("POST", self._handle_explain),
            "/v1/healthz": ("GET", self._handle_healthz),
            "/v1/metrics": ("GET", self._handle_metrics),
            "/v1/admin/reload": ("POST", self._handle_admin_reload),
            "/v1/admin/resize": ("POST", self._handle_admin_resize),
            "/v1/admin/mutate": ("POST", self._handle_admin_mutate),
        }
        route = routes.get(path)
        if route is None:
            return 404, {"error": {
                "type": "ServiceError",
                "message": f"unknown endpoint {path!r}; expected one of "
                           f"{sorted(routes)}",
            }}, ()
        expected_method, handler = route
        if method != expected_method:
            return 405, {"error": {
                "type": "ServiceError",
                "message": f"{path} expects {expected_method}, got {method}",
            }}, ()
        try:
            obj = None
            if expected_method == "POST":
                try:
                    obj = json.loads(body.decode("utf-8")) if body else None
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise QueryError(f"request body is not valid JSON: {exc}")
                if obj is None:
                    if path.startswith("/v1/admin/"):
                        obj = {}  # admin ops take an empty body (curl -X POST)
                    else:
                        raise QueryError("request body must be a JSON object")
            payload = await handler(obj)
            return 200, payload, ()
        except ServiceOverloaded as exc:
            self._rejected += 1
            retry_after = max(1, int(round(exc.retry_after)))
            return 429, {"error": error_to_wire(exc)}, (
                ("Retry-After", str(retry_after)),
            )
        except DeadlineExceeded as exc:
            self._deadline_exceeded += 1
            return 504, {"error": error_to_wire(exc)}, ()
        except ReloadError as exc:
            # An admin operation failed and was rolled back: 409, the
            # serving fleet is unchanged and still healthy.
            self._errors += 1
            return 409, {"error": error_to_wire(exc)}, ()
        except WorkerCrashed as exc:
            # Before ReproError: WorkerCrashed is a ServiceError, but it
            # is the tier's fault, not the client's — 503, retriable.
            self._errors += 1
            return 503, {"error": error_to_wire(exc)}, ()
        except ReproError as exc:
            self._errors += 1
            return 400, {"error": error_to_wire(exc)}, ()
        except Exception as exc:  # pragma: no cover - defensive
            self._errors += 1
            traceback.print_exc(file=sys.stderr)
            return 500, {"error": {
                "type": "ServiceError",
                "message": f"internal error: {type(exc).__name__}: {exc}",
            }}, ()

    # ------------------------------------------------------------------
    # degradation: brownout mode + load shedding
    # ------------------------------------------------------------------
    def _update_mode(self) -> None:
        """Advance the normal/brownout state machine (event loop only).

        Both transitions are hysteretic: the in-flight count must stay
        past the threshold for ``brownout_hold`` seconds, observed
        across dispatches (healthz/metrics polls advance it too), so a
        single burst or lull does not flap the mode.
        """
        now = time.monotonic()
        if self._mode == "normal":
            self._calm_since = None
            if self._in_flight >= self.brownout_enter:
                if self._pressure_since is None:
                    self._pressure_since = now
                elif now - self._pressure_since >= self.brownout_hold:
                    self._mode = "brownout"
                    self._brownouts += 1
                    self._pressure_since = None
            else:
                self._pressure_since = None
        else:
            self._pressure_since = None
            if self._in_flight <= self.brownout_exit:
                if self._calm_since is None:
                    self._calm_since = now
                elif now - self._calm_since >= self.brownout_hold:
                    self._mode = "normal"
                    self._calm_since = None
            else:
                self._calm_since = None

    def _degrade_for_brownout(self, request):
        """In brownout, budgeted searches become anytime (marked partial).

        A deadline-bearing request under pressure would likely burn its
        budget queueing and 504; served as anytime it returns its
        best-so-far answer *at* the budget instead.  Requests that are
        already anytime, or carry no deadline, pass through unchanged.
        """
        if (
            self._mode == "brownout"
            and request.deadline is not None
            and not request.anytime
        ):
            with self._counters_lock:
                self._brownout_degraded += 1
            return replace(request, anytime=True)
        return request

    def _predictive_shed(self, request) -> None:
        """Reject a budgeted search whose queue wait is already hopeless.

        When every compute slot is busy, the EWMA service latency
        predicts how long this request would wait; if that alone
        exceeds its remaining budget, admitting it only converts a
        cheap 429-now into an expensive 504-later.  Anytime requests
        are never shed — a partial answer beats a rejection.
        """
        if (
            request.deadline is None
            or request.anytime
            or self._in_flight < self.max_concurrency
        ):
            return
        backlog = self._in_flight - self.max_concurrency + 1
        predicted = self._latency_ewma * backlog / self.max_concurrency
        if predicted > request.deadline:
            with self._counters_lock:
                self._shed_predicted += 1
            raise ServiceOverloaded(
                f"predicted queue wait {predicted:.3f}s exceeds this "
                f"request's {request.deadline:g}s budget; shed at admission",
                retry_after=self._retry_after(),
            )

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _retry_after(self) -> float:
        """Backoff hint: queue drain time at the observed service rate."""
        backlog = max(1, self._in_flight - self.max_concurrency + 1)
        estimate = self._latency_ewma * backlog / self.max_concurrency
        return max(1.0, estimate)

    def _charge_queue_wait(self, request, waited: float):
        """Subtract queue wait from the request's deadline budget."""
        if request.deadline is None:
            return request
        remaining = request.deadline - waited
        if remaining <= 0:
            if request.anytime:
                # An anytime request must still reach the engine so it
                # can return its best-so-far partial answer; hand it the
                # smallest legal budget instead of failing typed here.
                return replace(request, deadline=1e-3)
            with self._counters_lock:
                self._shed_expired += 1
            raise DeadlineExceeded(
                f"request spent its {request.deadline:g}s deadline in the "
                f"admission queue ({waited:.3f}s queued)"
            )
        return replace(request, deadline=remaining)

    def _stamp_deadline(self, request):
        """Apply the server's default budget to unbudgeted requests."""
        if request.deadline is None and self.default_deadline is not None:
            return replace(request, deadline=self.default_deadline)
        return request

    def _charged_search(self, request, submitted_at: float) -> dict:
        """One executor call, charging pool-queue wait against the budget.

        The admission semaphore counts *units* while the pool bounds
        *executor calls*, so a search can hold a free semaphore slot yet
        still queue behind a batch's items inside the pool.  Runs on a
        worker thread: the wait between submission and pickup is
        re-charged here, so a budget that died in the pool queue fails
        typed before dispatch.  Returns the result in wire form (remote
        executors never materialise engine objects in this process).
        """
        waited = time.monotonic() - submitted_at
        return self.executor.search_wire(
            self._charge_queue_wait(request, waited)
        )

    async def _admit(
        self, requests: list, runner: Callable, per_item: bool = False
    ):
        """``await runner(adjusted_requests)`` under admission control.

        One admission unit = one semaphore slot; the runner dispatches
        its engine calls onto the shared pool, so total engine-call
        concurrency is bounded by ``max_concurrency`` across all units
        (a batch never multiplies it).  Raises
        :class:`ServiceOverloaded` when the bounded queue is full.  With
        ``per_item=True`` (batch), a request whose deadline died in the
        queue is handed to the runner as its ``DeadlineExceeded`` so the
        other items still run; otherwise the charge failure propagates.
        """
        if self._in_flight >= self.max_concurrency + self.queue_depth:
            raise ServiceOverloaded(
                f"admission queue full ({self._in_flight} in flight, "
                f"capacity {self.max_concurrency}+{self.queue_depth}); "
                f"retry later",
                retry_after=self._retry_after(),
            )
        self._in_flight += 1
        enqueued = time.monotonic()
        try:
            async with self._sem:
                waited = time.monotonic() - enqueued
                adjusted = []
                for request in requests:
                    try:
                        adjusted.append(
                            self._charge_queue_wait(request, waited)
                        )
                    except DeadlineExceeded as exc:
                        if not per_item:
                            raise
                        adjusted.append(exc)
                start = time.monotonic()
                result = await runner(adjusted)
                elapsed = time.monotonic() - start
                self._latency_ewma += 0.2 * (elapsed - self._latency_ewma)
                self._served += 1
                return result
        finally:
            self._in_flight -= 1

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _handle_search(self, obj) -> dict:
        request = self._stamp_deadline(request_from_wire(obj))
        # Degrade before shedding: a browned-out request is anytime and
        # therefore never shed — it serves partial instead of 429ing.
        request = self._degrade_for_brownout(request)
        self._predictive_shed(request)
        loop = asyncio.get_running_loop()

        async def run(reqs: list):
            submitted = time.monotonic()
            return await loop.run_in_executor(
                self._pool,
                lambda: self._charged_search(reqs[0], submitted),
            )

        wire = await self._admit([request], run)
        return {"ok": True, "result": wire}

    async def _handle_batch(self, obj) -> dict:
        if not isinstance(obj, dict) or not isinstance(
            obj.get("requests"), list
        ):
            raise QueryError(
                "batch body must be {\"requests\": [...], \"workers\": n?}"
            )
        raw = obj["requests"]
        if not raw:
            raise QueryError("batch field 'requests' must be non-empty")
        requests = []
        for i, item in enumerate(raw):
            try:
                requests.append(
                    self._degrade_for_brownout(
                        self._stamp_deadline(request_from_wire(item))
                    )
                )
            except ReproError as exc:
                raise QueryError(f"requests[{i}]: {exc}") from exc
        workers = obj.get("workers")
        if workers is not None and (
            not isinstance(workers, int) or workers < 1
        ):
            raise QueryError(f"workers must be a positive integer, got "
                             f"{workers!r}")
        width = min(
            workers if workers is not None else min(4, len(requests)),
            self.max_concurrency,
            len(requests),
        )

        def one(req, submitted_at: float) -> dict:
            if isinstance(req, ReproError):
                # this item's deadline died in the admission queue
                return {"ok": False, "error": error_to_wire(req)}
            try:
                return {
                    "ok": True,
                    "result": self._charged_search(req, submitted_at),
                }
            except ReproError as exc:
                return {"ok": False, "error": error_to_wire(exc)}

        async def run_batch(reqs: list) -> list[dict]:
            # Items go through the *shared* pool, so a batch raises no
            # extra engine-call concurrency beyond max_concurrency; the
            # per-batch gate only caps this batch's share of the pool.
            loop = asyncio.get_running_loop()
            gate = asyncio.Semaphore(width)

            async def guarded(req) -> dict:
                async with gate:
                    return await loop.run_in_executor(
                        self._pool, one, req, time.monotonic()
                    )

            return list(await asyncio.gather(*(guarded(r) for r in reqs)))

        items = await self._admit(requests, run_batch, per_item=True)
        # Per-item failures ride inside a 200; count the budget blowers.
        for item in items:
            if not item["ok"] and item["error"]["type"] == "DeadlineExceeded":
                self._deadline_exceeded += 1
        return {"ok": True, "results": items}

    async def _handle_explain(self, obj) -> dict:
        request = request_from_wire(obj)
        if self.executor.remote:
            loop = asyncio.get_running_loop()
            wire = await loop.run_in_executor(
                None, self.executor.explain_wire, request
            )
        else:
            # explain touches no heavy computation — answer on the loop.
            wire = self.executor.explain_wire(request)
        return {"ok": True, "plan": wire}

    async def _handle_admin_reload(self, obj) -> dict:
        """Zero-downtime snapshot swap (``POST /v1/admin/reload``).

        Runs outside admission control — an overloaded server can still
        be operated — and off the event loop (a pool swap forks, drains,
        and joins processes).  Failure is a typed
        :class:`~repro.errors.ReloadError` (409) with the serving fleet
        rolled back, untouched.
        """
        if not isinstance(obj, dict):
            raise QueryError('reload body must be {"snapshot": "<path>"?}')
        path = obj.get("snapshot", self.snapshot_path)
        if path is None:
            raise QueryError(
                'no snapshot to reload: pass {"snapshot": "<path>"} or boot '
                "the server with --snapshot"
            )
        if not isinstance(path, str):
            raise QueryError(f"snapshot must be a path string, got {path!r}")
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(None, self.executor.reload, path)
        self.engine = self.executor.engine
        self._reloads += 1
        return {"ok": True, "reload": summary}

    async def _handle_admin_resize(self, obj) -> dict:
        """Grow/shrink the worker fleet (``POST /v1/admin/resize``)."""
        workers = obj.get("workers") if isinstance(obj, dict) else None
        if not isinstance(workers, int) or isinstance(workers, bool) or (
            workers < 1
        ):
            raise QueryError(
                'resize body must be {"workers": n} with n a positive integer'
            )
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, self.executor.resize, workers
        )
        self._resizes += 1
        return {"ok": True, "resize": summary}

    async def _handle_admin_mutate(self, obj) -> dict:
        """Apply one live mutation batch (``POST /v1/admin/mutate``).

        The batch is all-or-nothing: validation failure is a typed
        :class:`~repro.errors.MutationError` (400) with nothing applied;
        racing another admin operation in pool mode is a typed
        :class:`~repro.errors.ReloadError` (409).  On success, when the
        server was booted with ``--snapshot``, the batch is appended to
        that snapshot's delta log so a restart (or a reload of the same
        path) fast-forwards to the mutated state instead of reviving the
        stale base.  A mutation that applied but failed to log still
        answers 200 — the fleet *is* mutated — with ``logged: false``.
        """
        if not isinstance(obj, dict) or not isinstance(
            obj.get("mutations"), list
        ):
            raise QueryError('mutate body must be {"mutations": [...]}')
        mutations = obj["mutations"]
        if not mutations:
            raise QueryError("mutate field 'mutations' must be non-empty")
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, self.executor.mutate_wire, mutations
        )
        self._mutations += 1
        if self.snapshot_path is not None:
            from repro.store.snapshot import append_delta

            try:
                await loop.run_in_executor(
                    None, append_delta, self.snapshot_path, mutations
                )
                self._deltas_logged += 1
                summary["logged"] = True
            except Exception as exc:
                print(
                    f"serve: mutation applied but delta log append to "
                    f"{self.snapshot_path} failed: {exc}",
                    file=sys.stderr, flush=True,
                )
                summary["logged"] = False
        else:
            summary["logged"] = False
        return {"ok": True, "mutate": summary}

    async def _handle_healthz(self, _obj) -> dict:
        # Built off the loop: a remote executor polls worker pipes for
        # telemetry, and even the in-process fingerprint hashes the
        # network once — neither belongs on the accept path.
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._healthz_payload)

    def _healthz_payload(self) -> dict:
        tel = self.executor.telemetry_wire()
        workers = self.executor.workers_wire()
        degraded = workers["alive"] < workers["total"]
        return {
            "status": "degraded" if degraded else "ok",
            "mode": self._mode,
            "version": __version__,
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started_at,
            "engine": {
                "searches": tel["searches"],
                "cache_hits": tel["cache_hits"],
                "cache_misses": tel["cache_misses"],
            },
            "snapshot": self.executor.snapshot_wire(),
            "workers": workers,
            "admission": {
                "in_flight": self._in_flight,
                "capacity": self.max_concurrency,
                "queue_depth": self.queue_depth,
            },
        }

    async def _handle_metrics(self, _obj) -> dict:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._metrics_payload)

    def _metrics_payload(self) -> dict:
        payload = {
            "service": {
                "uptime_s": time.monotonic() - self._started_at,
                "version": __version__,
                "protocol_version": PROTOCOL_VERSION,
                "executor": self.executor.kind,
                "worker_processes": self.executor.num_workers,
                "max_concurrency": self.max_concurrency,
                "queue_depth": self.queue_depth,
                "default_deadline": self.default_deadline,
                "in_flight": self._in_flight,
                "served": self._served,
                "rejected": self._rejected,
                "errors": self._errors,
                "deadline_exceeded": self._deadline_exceeded,
                "requests_total": self._requests_total,
                "reloads": self._reloads,
                "resizes": self._resizes,
                "mutations": self._mutations,
                "deltas_logged": self._deltas_logged,
                "drain_timeout": self.drain_timeout,
                "latency_ewma_s": self._latency_ewma,
            },
            "degradation": {
                "mode": self._mode,
                "brownouts": self._brownouts,
                "brownout_degraded": self._brownout_degraded,
                "shed_expired": self._shed_expired,
                "shed_predicted": self._shed_predicted,
                "brownout_enter": self.brownout_enter,
                "brownout_exit": self.brownout_exit,
                "brownout_hold": self.brownout_hold,
            },
            "engine": self.executor.telemetry_wire(),
        }
        pool = self.executor.pool_wire()
        if pool is not None:
            payload["pool"] = pool
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MACService({self.url}, workers={self.max_concurrency}, "
            f"queue={self.queue_depth}, served={self._served})"
        )
