"""JSON wire protocol of the MAC service — shared by server and client.

One codec, two directions: the server encodes engine objects
(`MACSearchResult`, `QueryPlan`, `EngineTelemetry`, exceptions) to plain
JSON-able dicts, the client decodes them back into lightweight typed
views (:class:`ServiceResult`, :class:`ServicePlan`) and re-raises
errors as the *same* :mod:`repro.errors` classes the in-process engine
raises — `except QueryError` / `except DeadlineExceeded` works
identically against a local engine and a remote service, which is what
makes the client a drop-in migration target.

Requests travel as the obvious JSON spelling of :class:`MACRequest`:
``query``/``k``/``t``/``region`` are required (``region`` is an object
with ``lows``/``highs`` arrays), every other engine knob is optional
and validated server-side by ``MACRequest.make`` — an unknown field is
a typed ``QueryError`` (HTTP 400), never a silent drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro import errors as _errors
from repro.engine.cache import CacheStats
from repro.engine.engine import EngineTelemetry
from repro.engine.request import MACRequest
from repro.errors import QueryError, ReproError, ServiceError, ServiceOverloaded
from repro.geometry.region import PreferenceRegion

#: Bump on any incompatible change to the wire format.  Sent by
#: ``/v1/healthz`` so clients can detect skew before querying.
#: v2: anytime/partial results (result ``partial`` + ``progress``,
#: per-community partial flags, plan ``search_backend``/``frontier``,
#: telemetry ``partial_results``).
#: v3: live mutations (``POST /v1/admin/mutate``, snapshot
#: ``delta_seq``, telemetry ``mutations`` / ``mutations_by_kind`` /
#: ``cache_evicted_by_mutation``).
PROTOCOL_VERSION = 3

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8321

#: Typed errors a client may safely retry: queries are pure, and each
#: of these means "the request did not damage anything server-side" —
#: back-pressure (429), a worker lost mid-flight (503, the supervisor
#: is already restarting it — including a wedged worker killed by the
#: stall watchdog), or a refused admin operation (409, the fleet was
#: rolled back untouched).  Chaos tests and retry loops key off this
#: set rather than hard-coding type names.
RETRYABLE_ERRORS = (
    "ServiceOverloaded", "WorkerCrashed", "WorkerStalled", "ReloadError",
)

#: Optional request knobs and their defaults (fields beyond the
#: required query/k/t/region); the encoder omits default values so the
#: wire form stays minimal and forward-portable.
_REQUEST_DEFAULTS = {
    f.name: f.default
    for f in dataclass_fields(MACRequest)
    if f.name not in ("query", "k", "t", "region")
}


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
def region_to_wire(region: PreferenceRegion) -> dict:
    return {
        "lows": region.lows.tolist(),
        "highs": region.highs.tolist(),
    }


def region_from_wire(spec) -> PreferenceRegion:
    if (
        not isinstance(spec, dict)
        or "lows" not in spec
        or "highs" not in spec
    ):
        raise QueryError(
            "request field 'region' must be an object with 'lows' and "
            "'highs' arrays"
        )
    try:
        return PreferenceRegion(spec["lows"], spec["highs"])
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise QueryError(f"bad region bounds: {exc}") from exc


def request_to_wire(request: MACRequest) -> dict:
    """A request as its minimal JSON form (defaults omitted)."""
    wire = {
        "query": list(request.query),
        "k": request.k,
        "t": request.t,
        "region": region_to_wire(request.region),
    }
    for name, default in _REQUEST_DEFAULTS.items():
        value = getattr(request, name)
        if value != default:
            wire[name] = value
    return wire


def request_from_wire(obj) -> MACRequest:
    """Validate one wire request into a :class:`MACRequest`.

    Raises :class:`QueryError` on any malformed shape, so the server
    answers 400 with the precise complaint instead of a stack trace.
    """
    if not isinstance(obj, dict):
        raise QueryError("request must be a JSON object")
    data = dict(obj)
    missing = [f for f in ("query", "k", "t", "region") if f not in data]
    if missing:
        raise QueryError(
            f"request is missing required field(s): {', '.join(missing)}"
        )
    region = region_from_wire(data.pop("region"))
    query = data.pop("query")
    if not isinstance(query, (list, tuple)):
        raise QueryError("request field 'query' must be an array of user ids")
    k = data.pop("k")
    t = data.pop("t")
    try:
        return MACRequest.make(query, k, t, region, **data)
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise QueryError(f"bad request field value: {exc}") from exc


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def result_to_wire(result) -> dict:
    """A :class:`~repro.core.api.MACSearchResult` as JSON-able data.

    Cells travel as a representative interior weight per partition (the
    exact H-representation is an engine-side artifact; the weight is
    what callers act on), communities as sorted member arrays, best
    first.
    """
    partitions = []
    for entry in result.partitions:
        wire_entry = {
            "weight": [float(x) for x in entry.sample_weight()],
            "communities": [sorted(c.members) for c in entry.communities],
        }
        flags = [bool(getattr(c, "partial", False)) for c in entry.communities]
        if any(flags):
            # Per-community anytime provenance; omitted when exact so the
            # common-case payload is unchanged.
            wire_entry["partial"] = flags
        partitions.append(wire_entry)
    stats = result.stats
    wire = {
        "query": {
            "query": list(result.query.query),
            "k": result.query.k,
            "t": result.query.t,
            "j": result.query.j,
        },
        "partitions": partitions,
        "htk_vertices": result.htk_vertices,
        "htk_edges": result.htk_edges,
        "elapsed": result.elapsed,
        "stats": {
            "partitions": stats.partitions,
            "tasks": stats.tasks,
            "peel_rounds": stats.peel_rounds,
            "halfspaces_inserted": stats.halfspaces_inserted,
            "candidates": stats.candidates,
        },
        "engine": result.extra.get("engine", {}),
    }
    if getattr(result, "partial", False):
        wire["partial"] = True
        wire["progress"] = dict(getattr(result, "progress", {}))
    return wire


@dataclass
class ServicePartition:
    """Client-side view of one partition of R.

    ``partial`` holds one flag per community (aligned with
    ``communities``): True marks a best-so-far anytime answer rather
    than a certified MAC.  Empty means every community is exact.
    """

    weight: tuple[float, ...]
    communities: list[frozenset[int]]
    partial: tuple[bool, ...] = ()

    @property
    def best(self) -> frozenset[int]:
        return self.communities[0]

    @property
    def any_partial(self) -> bool:
        return any(self.partial)

    def sample_weight(self) -> np.ndarray:
        """Parity helper with :class:`PartitionEntry.sample_weight`."""
        return np.asarray(self.weight, dtype=float)


@dataclass
class ServiceResult:
    """Client-side view of a search result (engine-API parity).

    Mirrors the read surface of ``MACSearchResult``: ``partitions``
    (with ``best`` / ``communities`` per entry), ``htk_vertices``,
    ``elapsed``, ``communities()``, ``is_empty``, and the per-request
    engine telemetry under ``extra["engine"]``.
    """

    query: dict
    partitions: list[ServicePartition]
    htk_vertices: int
    htk_edges: int
    elapsed: float
    stats: dict
    extra: dict = field(default_factory=dict)
    #: Anytime provenance: True when the deadline expired and the result
    #: is the best feasible answer found so far (see MACRequest.anytime);
    #: ``progress`` then carries how far the search got.
    partial: bool = False
    progress: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.partitions

    def communities(self) -> set[frozenset[int]]:
        out: set[frozenset[int]] = set()
        for entry in self.partitions:
            out.update(entry.communities)
        return out

    def nc_communities(self) -> set[frozenset[int]]:
        return {entry.best for entry in self.partitions if entry.communities}


def result_from_wire(obj) -> ServiceResult:
    if not isinstance(obj, dict):
        raise ServiceError("malformed result payload (not an object)")
    try:
        partitions = [
            ServicePartition(
                weight=tuple(float(x) for x in entry["weight"]),
                communities=[
                    frozenset(int(v) for v in members)
                    for members in entry["communities"]
                ],
                partial=tuple(bool(x) for x in entry.get("partial", ())),
            )
            for entry in obj.get("partitions", [])
        ]
        return ServiceResult(
            query=dict(obj.get("query", {})),
            partitions=partitions,
            htk_vertices=int(obj.get("htk_vertices", 0)),
            htk_edges=int(obj.get("htk_edges", 0)),
            elapsed=float(obj.get("elapsed", 0.0)),
            stats=dict(obj.get("stats", {})),
            extra={"engine": dict(obj.get("engine", {}))},
            partial=bool(obj.get("partial", False)),
            progress=dict(obj.get("progress", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed result payload: {exc}") from exc


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
_PLAN_FIELDS = (
    "problem",
    "algorithm",
    "algorithm_reason",
    "searcher",
    "filter_strategy",
    "backend",
    "search_backend",
    "frontier",
    "gtree_built",
    "cached",
    "feasible",
    "htk_vertices",
    "htk_upper_bound",
    "stage_seconds",
    "notes",
)


def plan_to_wire(plan) -> dict:
    """A :class:`~repro.engine.QueryPlan` as JSON-able data."""
    wire = {name: getattr(plan, name) for name in _PLAN_FIELDS}
    wire["request"] = request_to_wire(plan.request)
    wire["summary"] = plan.summary()
    return wire


@dataclass
class ServicePlan:
    """Client-side view of a resolved query plan."""

    request: dict
    problem: str
    algorithm: str
    algorithm_reason: str
    searcher: str
    filter_strategy: str
    backend: str
    search_backend: str
    frontier: str
    gtree_built: bool
    cached: dict
    feasible: bool | None
    htk_vertices: int | None
    htk_upper_bound: int
    stage_seconds: dict
    notes: list
    summary_text: str

    def summary(self) -> str:
        """The server-rendered plan summary (engine-API parity)."""
        return self.summary_text


def plan_from_wire(obj) -> ServicePlan:
    if not isinstance(obj, dict):
        raise ServiceError("malformed plan payload (not an object)")
    try:
        return ServicePlan(
            request=dict(obj.get("request", {})),
            summary_text=str(obj.get("summary", "")),
            **{name: obj[name] for name in _PLAN_FIELDS},
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(f"malformed plan payload: {exc}") from exc


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def telemetry_to_wire(tel) -> dict:
    """An :class:`~repro.engine.EngineTelemetry` as JSON-able data."""
    caches = {}
    for name in ("filter", "core", "dominance", "result"):
        stats = getattr(tel, name)
        caches[name] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "size": stats.size,
            "capacity": stats.capacity,
        }
    return {
        "searches": tel.searches,
        "batches": tel.batches,
        "deadline_exceeded": tel.deadline_exceeded,
        "cache_hits": tel.hits,
        "cache_misses": tel.misses,
        "partial_results": tel.partial_results,
        "mutations": tel.mutations,
        "mutations_by_kind": dict(tel.mutations_by_kind),
        "cache_evicted_by_mutation": tel.cache_evicted_by_mutation,
        "caches": caches,
        "stage_seconds": dict(tel.stage_seconds),
    }


def telemetry_from_wire(obj) -> EngineTelemetry:
    """Rebuild an :class:`EngineTelemetry` from its wire form.

    The worker tier sends each worker's telemetry over a pipe in wire
    form; the parent decodes with this and merges the typed snapshots
    (:func:`repro.engine.merge_telemetry`) into the fleet view.
    Missing fields decode as zeros, so a partial payload degrades to
    undercounting instead of raising.
    """
    if not isinstance(obj, dict):
        raise ServiceError("malformed telemetry payload (not an object)")
    caches = obj.get("caches", {})

    def stats(name: str) -> CacheStats:
        entry = caches.get(name, {}) if isinstance(caches, dict) else {}
        return CacheStats(
            hits=int(entry.get("hits", 0)),
            misses=int(entry.get("misses", 0)),
            size=int(entry.get("size", 0)),
            capacity=int(entry.get("capacity", 0)),
        )

    stage_seconds = obj.get("stage_seconds", {})
    try:
        return EngineTelemetry(
            searches=int(obj.get("searches", 0)),
            batches=int(obj.get("batches", 0)),
            filter=stats("filter"),
            core=stats("core"),
            dominance=stats("dominance"),
            result=stats("result"),
            stage_seconds={
                str(k): float(v) for k, v in dict(stage_seconds).items()
            },
            deadline_exceeded=int(obj.get("deadline_exceeded", 0)),
            partial_results=int(obj.get("partial_results", 0)),
            mutations=int(obj.get("mutations", 0)),
            mutations_by_kind={
                str(k): int(v)
                for k, v in dict(obj.get("mutations_by_kind", {})).items()
            },
            cache_evicted_by_mutation=int(
                obj.get("cache_evicted_by_mutation", 0)
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed telemetry payload: {exc}") from exc


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
#: Every typed library error, by class name — the wire spelling.
_ERROR_TYPES = {
    name: cls
    for name, cls in vars(_errors).items()
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError)
}


def error_to_wire(exc: BaseException) -> dict:
    """An exception as its wire form (typed when it is a ReproError)."""
    name = type(exc).__name__
    wire = {
        "type": name if name in _ERROR_TYPES else "ServiceError",
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        wire["retry_after"] = retry_after
    return wire


def error_from_wire(obj) -> ReproError:
    """Rebuild the typed exception a server-side error payload names."""
    if not isinstance(obj, dict):
        return ServiceError("malformed error payload from server")
    name = obj.get("type")
    message = str(obj.get("message", "unknown service error"))
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        return ServiceError(f"{name}: {message}" if name else message)
    if issubclass(cls, ServiceOverloaded):
        try:
            retry_after = float(obj.get("retry_after", 1.0))
        except (TypeError, ValueError):
            retry_after = 1.0
        return cls(message, retry_after=retry_after)
    return cls(message)
