"""`repro.service`: the async serving API over :class:`MACEngine`.

One warm engine process, many concurrent remote queries:

* :class:`MACService` — stdlib-asyncio JSON-over-HTTP server with
  deadlines, bounded admission (429 + Retry-After back-pressure), and
  engine telemetry endpoints.  Boot it from the CLI with
  ``repro serve --dataset ... | --snapshot ...``.
* :class:`ServiceClient` — blocking Python client whose
  ``search`` / ``search_batch`` / ``explain`` mirror the engine API, so
  callers migrate by swapping the constructor.
* :mod:`repro.service.protocol` — the shared JSON wire codec (typed
  errors included; the client raises the same :mod:`repro.errors`
  classes the in-process engine raises).

See ENGINE.md ("Serving") for the protocol reference and quickstart.
"""

from repro.service.client import ServiceClient
from repro.service.executor import EngineExecutor
from repro.service.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ServicePlan,
    ServiceResult,
)
from repro.service.server import MACService

__all__ = [
    "MACService",
    "ServiceClient",
    "EngineExecutor",
    "ServiceResult",
    "ServicePlan",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
]
