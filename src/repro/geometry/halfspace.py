"""Half-spaces of the reduced preference domain and score arithmetic.

A weight vector ``w`` has ``d`` positive components summing to one; the
paper drops the last one, so all geometry lives in the reduced space of
dimension ``r = d - 1``.  For attribute vectors ``x`` the score is

    S(x; w) = sum_i w_i * x_i
            = x_d + sum_{i<d} w_i * (x_i - x_d)        (reduced form)

which is affine in the reduced ``w`` — hence every pairwise score
comparison ``S(u) >= S(v)`` is a half-space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError

#: Geometric tolerance shared by the whole geometry stack.
EPS = 1e-9


@dataclass(frozen=True)
class Halfspace:
    """The closed half-space ``{w : a . w <= b}`` in reduced weight space.

    Instances are normalized so that ``|a| == 1`` whenever ``a`` is not
    (numerically) zero; degenerate half-spaces (``a ~ 0``) represent
    "everything" (b >= 0) or "nothing" (b < 0).
    """

    a: tuple[float, ...]
    b: float

    @staticmethod
    def make(a: np.ndarray, b: float) -> Halfspace:
        a = np.asarray(a, dtype=float)
        norm = float(np.linalg.norm(a))
        if norm > EPS:
            a = a / norm
            b = float(b) / norm
        return Halfspace(tuple(float(x) for x in a), float(b))

    @property
    def dim(self) -> int:
        return len(self.a)

    @property
    def is_degenerate(self) -> bool:
        """True when the boundary hyperplane does not exist (a ~ 0)."""
        return float(np.linalg.norm(self.a)) <= EPS

    @property
    def degenerate_everything(self) -> bool:
        """For a degenerate half-space: does it contain the whole space?"""
        return self.b >= -EPS

    def complement(self) -> Halfspace:
        """The closed complement ``{w : a . w >= b}``."""
        return Halfspace(tuple(-x for x in self.a), -self.b)

    def contains(self, w: np.ndarray, tol: float = EPS) -> bool:
        return float(np.dot(self.a, w)) <= self.b + tol

    def signed_slack(self, w: np.ndarray) -> float:
        """``b - a . w`` (positive inside, negative outside)."""
        return self.b - float(np.dot(self.a, w))


def score(x: np.ndarray, w_reduced: np.ndarray) -> float:
    """Score of attribute vector ``x`` at reduced weight ``w_reduced``."""
    x = np.asarray(x, dtype=float)
    w = np.asarray(w_reduced, dtype=float)
    d = x.shape[0]
    if w.shape[0] != d - 1:
        raise GeometryError(
            f"reduced weight has dim {w.shape[0]}, expected {d - 1}"
        )
    if d == 1:
        return float(x[0])
    return float(x[-1] + np.dot(w, x[:-1] - x[-1]))


def expand_weights(w_reduced: np.ndarray) -> np.ndarray:
    """Recover the full d-dimensional weight vector (appends 1 - sum)."""
    w = np.asarray(w_reduced, dtype=float)
    return np.append(w, 1.0 - float(w.sum()))


def reduce_weights(w_full: np.ndarray) -> np.ndarray:
    """Drop the last weight; validates that weights sum to one."""
    w = np.asarray(w_full, dtype=float)
    if abs(float(w.sum()) - 1.0) > 1e-6:
        raise GeometryError(f"weights must sum to 1, got {w.sum()!r}")
    return w[:-1]


def score_gap_coefficients(
    x_u: np.ndarray, x_v: np.ndarray
) -> tuple[np.ndarray, float]:
    """Coefficients (g, c0) with ``S(u) - S(v) = c0 + g . w`` (reduced w)."""
    x_u = np.asarray(x_u, dtype=float)
    x_v = np.asarray(x_v, dtype=float)
    if x_u.shape != x_v.shape:
        raise GeometryError("attribute vectors must have equal dimension")
    c0 = float(x_u[-1] - x_v[-1])
    g = (x_u[:-1] - x_u[-1]) - (x_v[:-1] - x_v[-1])
    return g, c0


def score_halfspace(x_u: np.ndarray, x_v: np.ndarray) -> Halfspace:
    """Half-space of the preference domain where ``S(u) >= S(v)``.

    ``S(u) - S(v) = c0 + g . w >= 0``  ⇔  ``(-g) . w <= c0``.
    """
    g, c0 = score_gap_coefficients(x_u, x_v)
    return Halfspace.make(-g, c0)
