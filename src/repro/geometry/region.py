"""The region of interest R: an axis-parallel box in the preference domain.

R approximates the user's uncertain weight vector (Section II-C).  The box
must lie strictly inside the weight simplex (all weights positive, sum
below one), which makes its corner set exactly the polytope vertices used
by the O(pd) r-dominance test of Section IV-A.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.halfspace import EPS, Halfspace


class PreferenceRegion:
    """Axis-parallel hyper-rectangle ``[lo_i, hi_i]`` in reduced w-space.

    ``dim == 0`` (i.e. d == 1 attributes) is supported: the region is the
    single empty weight tuple and all geometry degenerates gracefully.
    """

    def __init__(
        self, lows: Sequence[float] = (), highs: Sequence[float] = ()
    ) -> None:
        lows_arr = np.asarray(lows, dtype=float)
        highs_arr = np.asarray(highs, dtype=float)
        if lows_arr.shape != highs_arr.shape:
            raise GeometryError("lows/highs must have the same length")
        if lows_arr.ndim > 1:
            raise GeometryError("region bounds must be 1-d sequences")
        if np.any(lows_arr > highs_arr):
            raise GeometryError("region must satisfy lo <= hi per axis")
        if lows_arr.size:
            if np.any(lows_arr <= 0.0) or np.any(highs_arr >= 1.0):
                raise GeometryError(
                    "region must lie strictly inside (0, 1) per axis"
                )
            if float(highs_arr.sum()) >= 1.0:
                raise GeometryError(
                    "region must keep the dropped weight positive "
                    "(sum of highs must be < 1)"
                )
        self.lows = lows_arr
        self.highs = highs_arr

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return int(self.lows.size)

    @property
    def num_attributes(self) -> int:
        return self.dim + 1

    @staticmethod
    def centered(center: Sequence[float], side: float) -> PreferenceRegion:
        """Box of side length ``side`` centered at ``center`` (clipped)."""
        c = np.asarray(center, dtype=float)
        half = side / 2.0
        return PreferenceRegion(c - half, c + half)

    @staticmethod
    def from_sigma(
        center: Sequence[float], sigma: float
    ) -> PreferenceRegion:
        """Paper parameterization: side length = ``sigma`` (fraction of axis).

        ``sigma`` is the percentage-of-axis-length parameter σ of Table III
        expressed as a fraction (0.01 for "1%").
        """
        return PreferenceRegion.centered(center, sigma)

    # ------------------------------------------------------------------
    def corners(self) -> np.ndarray:
        """All 2^dim corner points, shape ``(2^dim, dim)``."""
        if self.dim == 0:
            return np.zeros((1, 0))
        axes = [(lo, hi) for lo, hi in zip(self.lows, self.highs)]
        pts = list(itertools.product(*axes))
        return np.asarray(pts, dtype=float)

    def pivot(self) -> np.ndarray:
        """Mean of the corner points (Section IV-B's pivot vector)."""
        return (self.lows + self.highs) / 2.0 if self.dim else np.zeros(0)

    def center(self) -> np.ndarray:
        return self.pivot()

    def contains(self, w: np.ndarray, tol: float = EPS) -> bool:
        w = np.asarray(w, dtype=float)
        if w.shape != (self.dim,):
            return False
        return bool(
            np.all(w >= self.lows - tol) and np.all(w <= self.highs + tol)
        )

    def halfspaces(self) -> list[Halfspace]:
        """Bounding half-spaces (2 per axis) defining the box."""
        result = []
        for i in range(self.dim):
            lo_normal = np.zeros(self.dim)
            lo_normal[i] = -1.0
            result.append(Halfspace.make(lo_normal, -self.lows[i]))
            hi_normal = np.zeros(self.dim)
            hi_normal[i] = 1.0
            result.append(Halfspace.make(hi_normal, self.highs[i]))
        return result

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform samples inside the box, shape ``(n, dim)``."""
        if self.dim == 0:
            return np.zeros((n, 0))
        return rng.uniform(self.lows, self.highs, size=(n, self.dim))

    def volume(self) -> float:
        if self.dim == 0:
            return 1.0
        return float(np.prod(self.highs - self.lows))

    # Content equality: regions are immutable by convention, travel
    # through cache keys and the service wire format as their bounds,
    # and two regions with identical bounds answer every query alike.
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PreferenceRegion)
            and np.array_equal(self.lows, other.lows)
            and np.array_equal(self.highs, other.highs)
        )

    def __hash__(self) -> int:
        return hash(
            (tuple(self.lows.tolist()), tuple(self.highs.tolist()))
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        spans = ", ".join(
            f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.lows, self.highs)
        )
        return f"PreferenceRegion({spans or 'point'})"
