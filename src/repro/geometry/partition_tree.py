"""Algorithm 2: the binary tree of half-space arrangements.

``PartitionTree`` maintains a recursive subdivision of an initial cell
(a partition ρ of R).  Inserting a hyperplane refines exactly the leaves
it crosses; leaves fully covered by one side are left untouched, mirroring
lines 1-8 of Algorithm 2.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.geometry.cell import Cell
from repro.geometry.halfspace import Halfspace


class _PNode:
    __slots__ = ("cell", "plane", "left", "right")

    def __init__(self, cell: Cell) -> None:
        self.cell = cell
        self.plane: Halfspace | None = None
        self.left: _PNode | None = None  # inside the inserted half-space
        self.right: _PNode | None = None  # outside it


class PartitionTree:
    """Binary arrangement index over a root cell."""

    def __init__(self, root_cell: Cell) -> None:
        self._root = _PNode(root_cell)
        self._num_leaves = 1

    @property
    def num_leaves(self) -> int:
        return self._num_leaves

    def insert(self, h: Halfspace) -> None:
        """Refine the partition by the boundary hyperplane of ``h``."""
        self._insert(self._root, h)

    def _insert(self, node: _PNode, h: Halfspace) -> None:
        if node.left is None:
            side = node.cell.side_of(h)
            if side == "split":
                inside, outside = node.cell.split(h)
                node.plane = h
                node.left = _PNode(inside)
                node.right = _PNode(outside)
                self._num_leaves += 1
            # "inside"/"outside": leaf covered by one side — nothing to do.
            return
        # Internal node: recurse only into children the hyperplane crosses.
        side = node.cell.side_of(h)
        if side != "split":
            return
        self._insert(node.left, h)
        self._insert(node.right, h)

    def leaves(self) -> Iterator[Cell]:
        """All leaf cells (a partition of the root cell)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.left is None:
                yield node.cell
            else:
                stack.append(node.left)
                stack.append(node.right)
