"""Preference-domain geometry: half-spaces, convex cells, arrangements.

The preference domain is the (d-1)-dimensional reduced weight space of
Section II-C: ``w = (w_1, ..., w_{d-1})`` with ``w_d = 1 - sum(w)``.
"""

from repro.geometry.halfspace import (
    Halfspace,
    expand_weights,
    reduce_weights,
    score,
    score_halfspace,
)
from repro.geometry.cell import Cell
from repro.geometry.region import PreferenceRegion
from repro.geometry.partition_tree import PartitionTree
from repro.geometry.preference_learning import LearnedRegion

__all__ = [
    "Halfspace",
    "score",
    "score_halfspace",
    "expand_weights",
    "reduce_weights",
    "Cell",
    "PreferenceRegion",
    "PartitionTree",
    "LearnedRegion",
]
