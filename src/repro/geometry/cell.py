"""Convex cells of the preference domain.

A cell is an intersection of half-spaces: the region R's bounding box plus
the score-comparison half-spaces inserted by the search.  Representation
is dimension-adaptive for speed:

* ``dim == 1`` — exact interval arithmetic (no LP),
* ``dim == 2`` — exact convex-polygon clipping (Sutherland–Hodgman); this
  is the d = 3 default of every benchmark, and side-of tests reduce to
  evaluating the hyperplane at the polygon's vertices,
* ``dim >= 3`` — H-representation with a Chebyshev-centre LP (scipy HiGHS)
  for emptiness and interior points.

Cells are immutable; refinement returns new cells.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from repro.errors import GeometryError
from repro.geometry.halfspace import EPS, Halfspace

#: A cell thinner than this (inscribed radius / interval half-width) is
#: considered empty; polygon areas below AREA_TOL likewise.
EMPTY_TOL = 1e-9
AREA_TOL = 1e-14


def _clip_polygon(verts: np.ndarray, a: np.ndarray, b: float) -> np.ndarray:
    """Sutherland–Hodgman: keep the part of a convex polygon with a·w <= b."""
    if len(verts) == 0:
        return verts
    out: list[np.ndarray] = []
    slack = b - verts @ a  # >= 0 means inside
    n = len(verts)
    for i in range(n):
        cur, nxt = verts[i], verts[(i + 1) % n]
        s_cur, s_nxt = slack[i], slack[(i + 1) % n]
        if s_cur >= -EPS:
            out.append(cur)
        if (s_cur > EPS and s_nxt < -EPS) or (s_cur < -EPS and s_nxt > EPS):
            t = s_cur / (s_cur - s_nxt)
            out.append(cur + t * (nxt - cur))
    if not out:
        return np.zeros((0, 2))
    # Deduplicate consecutive near-identical vertices.
    dedup: list[np.ndarray] = []
    for p in out:
        if not dedup or np.max(np.abs(p - dedup[-1])) > EPS:
            dedup.append(p)
    if len(dedup) > 1 and np.max(np.abs(dedup[0] - dedup[-1])) <= EPS:
        dedup.pop()
    return np.asarray(dedup)


def _polygon_area(verts: np.ndarray) -> float:
    if len(verts) < 3:
        return 0.0
    x, y = verts[:, 0], verts[:, 1]
    return 0.5 * abs(
        float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
    )


class Cell:
    """Immutable convex cell = conjunction of half-space constraints."""

    __slots__ = ("dim", "constraints", "_verts", "_cheb")

    def __init__(
        self,
        dim: int,
        constraints: tuple[Halfspace, ...],
        _verts: np.ndarray | None = None,
    ) -> None:
        self.dim = dim
        self.constraints = constraints
        self._verts = _verts
        self._cheb: tuple[np.ndarray, float] | None = None

    @staticmethod
    def from_region(region) -> Cell:
        """The whole region R as a cell."""
        dim = region.dim
        constraints = tuple(region.halfspaces())
        verts: np.ndarray | None = None
        if dim == 1:
            verts = np.asarray([[region.lows[0]], [region.highs[0]]])
        elif dim == 2:
            (l1, l2), (h1, h2) = region.lows, region.highs
            verts = np.asarray([[l1, l2], [h1, l2], [h1, h2], [l1, h2]])
        return Cell(dim, constraints, verts)

    # ------------------------------------------------------------------
    def with_constraint(self, h: Halfspace) -> Cell:
        if h.dim != self.dim:
            raise GeometryError(
                f"half-space dim {h.dim} != cell dim {self.dim}"
            )
        verts = None
        if self._verts is not None:
            if h.is_degenerate:
                verts = (
                    self._verts
                    if h.degenerate_everything
                    else np.zeros((0, self.dim))
                )
            elif self.dim == 1:
                a, b = h.a[0], h.b
                lo, hi = float(self._verts[0, 0]), float(self._verts[1, 0])
                if a > 0:
                    hi = min(hi, b / a)
                else:
                    lo = max(lo, b / a)
                verts = (
                    np.asarray([[lo], [hi]])
                    if lo <= hi
                    else np.zeros((0, 1))
                )
            else:
                verts = _clip_polygon(
                    self._verts, np.asarray(h.a, dtype=float), h.b
                )
        return Cell(self.dim, self.constraints + (h,), verts)

    # ------------------------------------------------------------------
    # emptiness / interior (dimension-adaptive)
    # ------------------------------------------------------------------
    def is_empty(self, tol: float = EMPTY_TOL) -> bool:
        if self._verts is not None:
            if self.dim == 1:
                if len(self._verts) == 0:
                    return True
                return (self._verts[1, 0] - self._verts[0, 0]) / 2.0 < tol
            return _polygon_area(self._verts) < AREA_TOL
        return self._chebyshev()[1] < tol

    def interior_point(self) -> np.ndarray:
        """A point well inside the cell (centroid / Chebyshev centre)."""
        if self._verts is not None:
            if len(self._verts) == 0:
                raise GeometryError("interior point of an empty cell")
            return self._verts.mean(axis=0)
        center, radius = self._chebyshev()
        if radius < 0:
            raise GeometryError("interior point of an empty cell")
        return center

    def radius(self) -> float:
        """Size proxy: interval half-width, polygon inradius bound, or
        Chebyshev radius."""
        if self._verts is not None:
            if len(self._verts) == 0:
                return -math.inf
            if self.dim == 1:
                return float(self._verts[1, 0] - self._verts[0, 0]) / 2.0
            area = _polygon_area(self._verts)
            per = float(
                np.linalg.norm(
                    np.roll(self._verts, -1, axis=0) - self._verts, axis=1
                ).sum()
            )
            return area / per if per > 0 else 0.0
        return self._chebyshev()[1]

    def vertices(self) -> np.ndarray | None:
        """Explicit vertices when available (dim <= 2), else None."""
        return self._verts

    def contains(self, w: np.ndarray, tol: float = 1e-7) -> bool:
        return all(h.contains(w, tol) for h in self.constraints)

    # ------------------------------------------------------------------
    def side_of(self, h: Halfspace) -> str:
        """Position of this cell against half-space ``h``.

        Returns ``"inside"`` (cell ⊆ h), ``"outside"`` (cell ∩ int(h) = ∅)
        or ``"split"`` (the boundary hyperplane crosses the cell) — the
        three cases of Fig. 3.
        """
        if h.is_degenerate:
            return "inside" if h.degenerate_everything else "outside"
        if self._verts is not None:
            if len(self._verts) == 0:
                return "inside"  # empty cell: vacuous either way
            slack = h.b - self._verts @ np.asarray(h.a, dtype=float)
            if np.all(slack >= -EPS):
                return "inside"
            if np.all(slack <= EPS):
                return "outside"
            # The hyperplane separates vertices; only a genuinely 2-sided
            # cut counts as a split (slivers thinner than tol are absorbed).
            inside = self.with_constraint(h)
            outside = self.with_constraint(h.complement())
            if inside.is_empty():
                return "outside"
            if outside.is_empty():
                return "inside"
            return "split"
        if self.with_constraint(h.complement()).is_empty():
            return "inside"
        if self.with_constraint(h).is_empty():
            return "outside"
        return "split"

    def split(self, h: Halfspace) -> tuple[Cell, Cell]:
        """Cells (inside-h, outside-h); call only when side_of == 'split'."""
        return self.with_constraint(h), self.with_constraint(h.complement())

    # ------------------------------------------------------------------
    # LP path (dim >= 3 or dim == 0)
    # ------------------------------------------------------------------
    def _chebyshev(self) -> tuple[np.ndarray, float]:
        """Centre and radius of the largest inscribed ball.

        Radius is -inf for an infeasible system, +inf for an unbounded one
        (cannot happen for sub-cells of a bounded region, but handled).
        """
        if self._cheb is not None:
            return self._cheb
        if self.dim == 0:
            feasible = all(
                h.b >= -EPS for h in self.constraints if h.is_degenerate
            )
            radius = math.inf if feasible else -math.inf
            self._cheb = (np.zeros(0), radius)
            return self._cheb
        rows = []
        rhs = []
        for h in self.constraints:
            a = np.asarray(h.a, dtype=float)
            norm = float(np.linalg.norm(a))
            if norm <= EPS:
                if h.b < -EPS:
                    self._cheb = (np.zeros(self.dim), -math.inf)
                    return self._cheb
                continue
            rows.append(np.append(a, norm))
            rhs.append(h.b)
        if not rows:
            self._cheb = (np.zeros(self.dim), math.inf)
            return self._cheb
        c = np.zeros(self.dim + 1)
        c[-1] = -1.0  # maximize the radius
        bounds = [(None, None)] * self.dim + [(0.0, None)]
        res = linprog(
            c,
            A_ub=np.vstack(rows),
            b_ub=np.asarray(rhs),
            bounds=bounds,
            method="highs",
        )
        if not res.success:
            self._cheb = (np.zeros(self.dim), -math.inf)
        else:
            self._cheb = (res.x[:-1].copy(), float(res.x[-1]))
        return self._cheb

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell(dim={self.dim}, m={len(self.constraints)})"
