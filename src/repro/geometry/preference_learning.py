"""Learning the region R from pairwise feedback.

The paper assumes R is given ("there are already preference learning
techniques (e.g., [11]) to generate such a region instead of a specific
weight vector", Section I, footnote 1).  This module supplies that
substrate: starting from the whole preference domain (or any box), each
user judgement "item a is preferable to item b" adds the half-space
``S(a) >= S(b)``, monotonically shrinking a convex estimate of the
user's weight region — the adaptive pairwise-comparison scheme of Qian
et al. [11] in its deterministic core.

The learned :class:`LearnedRegion` exposes a bounding
:class:`PreferenceRegion` box ready to be passed to ``mac_search``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cell import Cell
from repro.geometry.halfspace import EPS, Halfspace, score_halfspace
from repro.geometry.region import PreferenceRegion


class LearnedRegion:
    """Convex weight-region estimate refined by pairwise comparisons."""

    def __init__(self, dimensions: int, margin: float = 0.02) -> None:
        """Start from (almost) the whole preference domain.

        ``dimensions`` is the number of attributes d (the region lives in
        the reduced (d-1)-space); ``margin`` keeps every weight — the
        dropped d-th one included — at least that far from zero, matching
        the paper's open-simplex assumption.  The initial estimate is the
        full margin-shrunk simplex, not a box.
        """
        if dimensions < 2:
            raise GeometryError("preference learning needs d >= 2")
        if not 0 < margin < 1.0 / (dimensions + 1):
            raise GeometryError(
                f"margin must be in (0, {1.0 / (dimensions + 1):.3f}) "
                f"for d={dimensions}"
            )
        r = dimensions - 1
        self._dims = dimensions
        self._margin = margin
        constraints = []
        for i in range(r):
            axis = np.zeros(r)
            axis[i] = -1.0
            constraints.append(Halfspace.make(axis, -margin))  # w_i >= m
        constraints.append(
            Halfspace.make(np.ones(r), 1.0 - margin)  # sum w <= 1 - m
        )
        verts = None
        if r == 1:
            verts = np.asarray([[margin], [1.0 - margin]])
        elif r == 2:
            verts = np.asarray(
                [
                    [margin, margin],
                    [1.0 - 2 * margin, margin],
                    [margin, 1.0 - 2 * margin],
                ]
            )
        self._cell = Cell(r, tuple(constraints), verts)
        self._comparisons: list[tuple[np.ndarray, np.ndarray]] = []

    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return self._dims

    @property
    def num_comparisons(self) -> int:
        return len(self._comparisons)

    def is_consistent(self) -> bool:
        """False once the comparisons admit no weight vector at all."""
        return not self._cell.is_empty()

    # ------------------------------------------------------------------
    def observe(
        self, preferred: Sequence[float], other: Sequence[float]
    ) -> bool:
        """Record "``preferred`` beats ``other``"; returns consistency.

        Each observation intersects the current estimate with the
        half-space where the preferred item scores at least as high.
        Inconsistent feedback (empty intersection) is *rejected* — the
        estimate keeps its last consistent state and False is returned.
        """
        a = np.asarray(preferred, dtype=float)
        b = np.asarray(other, dtype=float)
        if a.shape != (self._dims,) or b.shape != (self._dims,):
            raise GeometryError(
                f"items must have {self._dims} attributes"
            )
        h = score_halfspace(a, b)
        refined = self._cell.with_constraint(h)
        if refined.is_empty():
            return False
        self._cell = refined
        self._comparisons.append((a, b))
        return True

    # ------------------------------------------------------------------
    def center(self) -> np.ndarray:
        """The most plausible single weight vector (reduced form)."""
        return self._cell.interior_point()

    def contains(self, w_reduced: np.ndarray) -> bool:
        return self._cell.contains(np.asarray(w_reduced, dtype=float))

    def bounding_region(self, min_side: float = 1e-3) -> PreferenceRegion:
        """Axis-parallel box around the current estimate.

        The box is what ``mac_search`` consumes; it over-approximates the
        convex estimate where possible and is shrunk only when the box
        corners would leave the weight simplex (a box must satisfy
        ``sum(highs) < 1`` to be a valid :class:`PreferenceRegion`).
        """
        r = self._dims - 1
        verts = self._cell.vertices()
        if verts is not None and len(verts):
            lo = verts.min(axis=0)
            hi = verts.max(axis=0)
        else:
            # LP backend (r >= 3): probe the support in axis directions.
            lo = np.empty(r)
            hi = np.empty(r)
            for i in range(r):
                lo[i], hi[i] = self._axis_support(i)
        center = (lo + hi) / 2.0
        half = np.maximum((hi - lo) / 2.0, min_side / 2.0)
        eps = self._margin / 2.0
        lo = np.maximum(center - half, eps)
        hi = np.maximum(center + half, lo + 1e-9)
        hi = np.minimum(hi, 1.0 - eps)
        # Keep the dropped weight positive: scale highs toward lows until
        # the corner sum fits inside the simplex.
        total = float(hi.sum())
        if total >= 1.0 - eps:
            budget = (1.0 - eps) - float(lo.sum())
            if budget <= 0:
                raise GeometryError(
                    "estimate degenerated outside the weight simplex"
                )
            alpha = min(1.0, 0.999 * budget / (total - float(lo.sum())))
            hi = lo + alpha * (hi - lo)
        return PreferenceRegion(lo, np.maximum(hi, lo + 1e-12))

    def _axis_support(self, axis: int) -> tuple[float, float]:
        """Min/max of one coordinate over the estimate (via LP)."""
        from scipy.optimize import linprog

        r = self._dims - 1
        rows, rhs = [], []
        for h in self._cell.constraints:
            a = np.asarray(h.a, dtype=float)
            if np.linalg.norm(a) > EPS:
                rows.append(a)
                rhs.append(h.b)
        c = np.zeros(r)
        c[axis] = 1.0
        out = []
        for sign in (1.0, -1.0):
            res = linprog(
                sign * c,
                A_ub=np.vstack(rows),
                b_ub=np.asarray(rhs),
                bounds=[(None, None)] * r,
                method="highs",
            )
            if not res.success:
                raise GeometryError("inconsistent preference state")
            out.append(float(res.x[axis]))
        return min(out), max(out)

    def halfspaces(self) -> list[Halfspace]:
        """All accumulated constraints (base box + comparisons)."""
        return list(self._cell.constraints)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LearnedRegion(d={self._dims}, "
            f"comparisons={self.num_comparisons})"
        )
