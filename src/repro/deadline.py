"""Wall-clock budgets threaded through the MAC query pipeline.

A :class:`Deadline` is created by the engine when a request carries a
``deadline`` budget (seconds) and is passed down through the pipeline:
stage boundaries and the search inner loops call :meth:`Deadline.check`,
so a budget-exceeding request fails with the typed
:class:`~repro.errors.DeadlineExceeded` instead of hanging — the
property the serving API relies on to keep one slow query from wedging
a worker slot forever.

The clock is ``time.monotonic()``: budgets are relative, immune to wall
clock adjustments, and cheap to poll from hot loops.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded


class Deadline:
    """A monotonic-clock budget covering one request end to end."""

    __slots__ = ("budget", "_expires_at")

    def __init__(self, budget: float) -> None:
        if budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget}")
        self.budget = float(budget)
        self._expires_at = time.monotonic() + self.budget

    @classmethod
    def of(cls, budget: float | None) -> Deadline | None:
        """A deadline for ``budget`` seconds, or None for no budget."""
        return None if budget is None else cls(budget)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() > self._expires_at

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out.

        ``stage`` names the pipeline phase for the error message, so a
        caller (or a service log) can see *where* the budget went.
        """
        if self.expired():
            raise DeadlineExceeded(
                f"request exceeded its {self.budget:g}s deadline "
                f"during {stage}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(budget={self.budget:g}, remaining={self.remaining():.3f})"
