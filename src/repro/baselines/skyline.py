"""Skyline community search (Li et al., SIGMOD 2018 — "Sky"/"Sky+").

A skyline community is a maximal connected k-core H whose vector
``f(H) = (min_v x_1(v), ..., min_v x_d(v))`` is not dominated (in the
traditional, weight-free sense) by any other such community.  The paper
compares MAC search against the basic algorithm ("Sky") and its
space-partition variant ("Sky+"); both are exponential in d, which is why
Figs. 13-14(c) report "Inf" beyond d = 3 (Sky) / d = 5 (Sky+).

The implementation follows the recursive structure of the original: sweep
thresholds on the last dimension descending, recurse with one dimension
fewer on the filtered k-core, and keep the Pareto-maximal results.  Sky+
adds two prunings: threshold skipping when the filtered core is unchanged
and branch-and-bound domination of upper-bound vectors.  A configurable
operation budget turns runaway runs into :class:`SkylineBudgetExceeded`
(reported as "Inf" by the benchmark harness).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import ReproError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import peel_to_k_core


class SkylineBudgetExceeded(ReproError):
    """Raised when a skyline run exceeds its operation budget."""


def _dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """Traditional dominance: a >= b everywhere, > somewhere."""
    ge = all(x >= y - 1e-12 for x, y in zip(a, b))
    gt = any(x > y + 1e-12 for x, y in zip(a, b))
    return ge and gt


def _pareto_filter(
    items: list[tuple[frozenset[int], tuple[float, ...]]]
) -> list[tuple[frozenset[int], tuple[float, ...]]]:
    out: list[tuple[frozenset[int], tuple[float, ...]]] = []
    for members, f in items:
        if any(_dominates(f2, f) for _m2, f2 in items if f2 != f):
            continue
        if (members, f) not in out:
            out.append((members, f))
    return out


class _Budget:
    def __init__(self, limit: int | None) -> None:
        self.limit = limit
        self.used = 0

    def spend(self, amount: int = 1) -> None:
        self.used += amount
        if self.limit is not None and self.used > self.limit:
            raise SkylineBudgetExceeded(
                f"skyline budget of {self.limit} core operations exceeded"
            )


def _fvec(
    members: Iterable[int], attrs: Mapping[int, np.ndarray], dims: list[int]
) -> tuple[float, ...]:
    mat = np.asarray([attrs[v] for v in members])
    return tuple(float(x) for x in mat[:, dims].min(axis=0))


def _peel_last_dim(
    graph: AdjacencyGraph,
    attrs: Mapping[int, np.ndarray],
    k: int,
    dim: int,
    budget: _Budget,
) -> list[tuple[frozenset[int], float]]:
    """d = 1 base case: communities maximizing the minimum of one dim.

    Peels in increasing x_dim order; the surviving components just before
    extinction have the maximal f value.
    """
    import heapq

    g = graph.copy()
    heap = [(float(attrs[v][dim]), v) for v in g.vertices()]
    heapq.heapify(heap)
    last: list[tuple[frozenset[int], float]] = []
    while heap:
        w, u = heapq.heappop(heap)
        if u not in g:
            continue
        budget.spend()
        component = g.component_of(u)
        last = [(frozenset(component), w)]
        stack = [u]
        while stack:
            v = stack.pop()
            if v not in g:
                continue
            nbrs = list(g.neighbors(v))
            g.remove_vertex(v)
            for x in nbrs:
                if x in g and g.degree(x) < k:
                    stack.append(x)
    return last


def _skyline(
    graph: AdjacencyGraph,
    attrs: Mapping[int, np.ndarray],
    k: int,
    dims: list[int],
    budget: _Budget,
    prune: bool,
) -> list[tuple[frozenset[int], tuple[float, ...]]]:
    if graph.num_vertices == 0:
        return []
    if len(dims) == 1:
        return [
            (members, (f,))
            for members, f in _peel_last_dim(graph, attrs, k, dims[0], budget)
        ]
    *rest, last = dims
    thresholds = sorted(
        {float(attrs[v][last]) for v in graph.vertices()}, reverse=True
    )
    results: list[tuple[frozenset[int], tuple[float, ...]]] = []
    prev_core_size = -1
    for tau in thresholds:
        keep = [v for v in graph.vertices() if attrs[v][last] >= tau]
        sub = peel_to_k_core(graph.subgraph(keep), k)
        budget.spend()
        if sub.num_vertices == 0:
            continue
        if prune and sub.num_vertices == prev_core_size:
            continue  # Sky+: filtered core unchanged, nothing new below
        prev_core_size = sub.num_vertices
        if prune and results:
            ub = tuple(
                float(max(attrs[v][d] for v in sub.vertices()))
                for d in rest
            ) + (
                float(max(attrs[v][last] for v in sub.vertices())),
            )
            if any(_dominates(f, ub) for _m, f in results):
                continue  # Sky+: branch-and-bound domination
        sub_results = _skyline(sub, attrs, k, rest, budget, prune)
        for members, f_rest in sub_results:
            f_last = float(min(attrs[v][last] for v in members))
            results.append((members, f_rest + (f_last,)))
        results = _pareto_filter(results)
    return results


def skyline_communities(
    graph: AdjacencyGraph,
    attrs: Mapping[int, np.ndarray],
    k: int,
    dims: int | None = None,
    prune: bool = False,
    budget: int | None = None,
) -> list[tuple[frozenset[int], tuple[float, ...]]]:
    """All skyline communities of ``graph`` with their f-vectors.

    ``prune=False`` is "Sky" (basic), ``prune=True`` is "Sky+"
    (space-partition/branch-and-bound).  ``budget`` caps the number of
    core computations; exceeding it raises :class:`SkylineBudgetExceeded`.
    """
    core = peel_to_k_core(graph, k)
    if core.num_vertices == 0:
        return []
    if dims is None:
        dims = len(next(iter(attrs.values())))
    tracker = _Budget(budget)
    results = _skyline(core, attrs, k, list(range(dims)), tracker, prune)
    return _pareto_filter(results)
