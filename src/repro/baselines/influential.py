"""Influential community search (Li et al., PVLDB 2015 — "Influ"/"Influ+").

An influential community is a maximal connected k-core whose *influence*
(the minimum vertex weight inside) is not exceeded by any super-community
of equal coreness.  The paper's Figs. 13-14 compare MAC search against:

* ``Influ`` — the online DFS/peeling algorithm: repeatedly remove the
  globally smallest-weight vertex with structural cascade; the connected
  k-core containing each removed minimum (at removal time) is an
  influential community with influence equal to that minimum's weight.
* ``Influ+`` — the ICP-index: the complete laminar family of influential
  communities precomputed per k as a forest (reverse-deletion union-find),
  so queries are tree walks instead of peels.

For the comparison protocol of Section VII, the 1-d weight of a vertex is
the weighted sum of its d attributes at a sampled weight vector w ∈ R.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable, Mapping

from repro.errors import QueryError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import peel_to_k_core


def _peel_steps(
    core: AdjacencyGraph, weights: Mapping[int, float], k: int
) -> list[tuple[float, int, list[int]]]:
    """Peel the k-core in increasing weight order.

    Returns one step per score-deleted minimum: (influence, trigger,
    deleted vertices of the step — trigger plus structural cascade).
    """
    g = core.copy()
    heap = [(weights[v], v) for v in g.vertices()]
    heapq.heapify(heap)
    steps: list[tuple[float, int, list[int]]] = []
    while heap:
        w, u = heapq.heappop(heap)
        if u not in g:
            continue
        removed: list[int] = []
        stack = [u]
        while stack:
            v = stack.pop()
            if v not in g:
                continue
            nbrs = list(g.neighbors(v))
            g.remove_vertex(v)
            removed.append(v)
            for x in nbrs:
                if x in g and g.degree(x) < k:
                    stack.append(x)
        steps.append((w, u, removed))
    return steps


def influential_communities(
    graph: AdjacencyGraph,
    weights: Mapping[int, float],
    k: int,
    top_r: int | None = None,
    query: Iterable[int] | None = None,
) -> list[frozenset[int]]:
    """Online peeling ("Influ"): top-r influential k-communities.

    Communities are returned in decreasing influence order (strongest
    first).  With ``query`` given, only communities containing all query
    vertices are reported (the "involving Q" variant of Fig. 15(f,g)) —
    those form a nested chain.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    core = peel_to_k_core(graph, k)
    q = sorted(set(query)) if query is not None else []
    if any(v not in core for v in q):
        return []
    g = core.copy()
    heap = [(weights[v], v) for v in g.vertices()]
    heapq.heapify(heap)
    out: deque[frozenset[int]] = deque(maxlen=top_r)
    while heap:
        _w, u = heapq.heappop(heap)
        if u not in g:
            continue
        component = g.component_of(u)
        if not q or all(v in component for v in q):
            out.append(frozenset(component))
        stack = [u]
        while stack:
            v = stack.pop()
            if v not in g:
                continue
            nbrs = list(g.neighbors(v))
            g.remove_vertex(v)
            for x in nbrs:
                if x in g and g.degree(x) < k:
                    stack.append(x)
    return list(reversed(out))


def influ_nc(
    graph: AdjacencyGraph,
    weights: Mapping[int, float],
    k: int,
    query: Iterable[int],
) -> frozenset[int] | None:
    """The most influential (deepest) community containing Q."""
    found = influential_communities(graph, weights, k, top_r=1, query=query)
    return found[0] if found else None


class _ICPNode:
    __slots__ = ("influence", "trigger", "members", "children", "parent")

    def __init__(self, influence: float, trigger: int, members: list[int]):
        self.influence = influence
        self.trigger = trigger
        self.members = members  # vertices deleted exactly at this step
        self.children: list[int] = []
        self.parent: int | None = None


class ICPIndex:
    """The ICP-index ("Influ+"): influential communities as a forest.

    Construction reverses the peeling: steps are replayed last-to-first
    over a union-find, so each step's community becomes a node whose
    children are the components it engulfs.  The community of a node is
    its subtree's member union; communities containing Q correspond to the
    ancestors of the LCA of Q's nodes.  Space is O(n) per k.
    """

    def __init__(
        self,
        graph: AdjacencyGraph,
        weights: Mapping[int, float],
        k_values: Iterable[int],
    ) -> None:
        self.weights = dict(weights)
        self._forest: dict[int, list[_ICPNode]] = {}
        self._node_of: dict[int, dict[int, int]] = {}
        for k in sorted(set(k_values)):
            self._build(graph, k)

    def _build(self, graph: AdjacencyGraph, k: int) -> None:
        core = peel_to_k_core(graph, k)
        steps = _peel_steps(core, self.weights, k)
        nodes: list[_ICPNode] = []
        node_of: dict[int, int] = {}
        dsu: dict[int, int] = {}
        comp_node: dict[int, int] = {}  # dsu root -> newest node index

        def find(v: int) -> int:
            root = v
            while dsu[root] != root:
                root = dsu[root]
            while dsu[v] != root:
                dsu[v], v = root, dsu[v]
            return root

        for influence, trigger, removed in reversed(steps):
            idx = len(nodes)
            node = _ICPNode(influence, trigger, list(removed))
            nodes.append(node)
            for v in removed:
                dsu[v] = v
                node_of[v] = idx
            merged_nodes: set[int] = set()
            seed = removed[0]
            for v in removed:
                for u in core.neighbors(v):
                    if u in dsu:
                        ru, rv = find(u), find(v)
                        if ru != rv:
                            for r in (ru, rv):
                                child = comp_node.get(r)
                                if child is not None and child != idx:
                                    merged_nodes.add(child)
                            dsu[ru] = rv
            root = find(seed)
            for child in merged_nodes:
                nodes[child].parent = idx
                node.children.append(child)
            comp_node[root] = idx
        self._forest[k] = nodes
        self._node_of[k] = node_of

    # ------------------------------------------------------------------
    def k_values(self) -> list[int]:
        return sorted(self._forest)

    def _members(self, k: int, idx: int) -> frozenset[int]:
        nodes = self._forest[k]
        out: list[int] = []
        stack = [idx]
        while stack:
            node = nodes[stack.pop()]
            out.extend(node.members)
            stack.extend(node.children)
        return frozenset(out)

    def query(
        self,
        k: int,
        top_r: int | None = None,
        query: Iterable[int] | None = None,
    ) -> list[frozenset[int]]:
        """Top-r influential k-communities (optionally containing Q),
        strongest (highest influence) first."""
        if k not in self._forest:
            raise QueryError(f"index not built for k={k}")
        nodes = self._forest[k]
        if query is not None:
            q = sorted(set(query))
            node_of = self._node_of[k]
            if any(v not in node_of for v in q):
                return []
            # LCA of Q's nodes: deepest common ancestor in the forest.
            paths = []
            for v in q:
                path = []
                idx: int | None = node_of[v]
                while idx is not None:
                    path.append(idx)
                    idx = nodes[idx].parent
                paths.append(list(reversed(path)))
            common = 0
            for level in range(min(len(p) for p in paths)):
                first = paths[0][level]
                if all(p[level] == first for p in paths):
                    common = level
                else:
                    break
            if not all(
                p[common] == paths[0][common] for p in paths
            ):
                return []
            chain = list(reversed(paths[0][: common + 1]))
            if top_r is not None:
                chain = chain[:top_r]
            return [self._members(k, idx) for idx in chain]
        order = sorted(
            range(len(nodes)), key=lambda i: -nodes[i].influence
        )
        if top_r is not None:
            order = order[:top_r]
        return [self._members(k, idx) for idx in order]
