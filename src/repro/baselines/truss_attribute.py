"""ATC-style baseline: attribute-driven truss community search.

Fig. 15(h) compares the MAC model with ATC (Huang & Lakshmanan, PVLDB
2017 [7]): the (k+1)-truss containing Q whose members maximize coverage
of the query keyword.  Following the case study, we keep the vertices
carrying the query keyword (query vertices are always kept), and return
the maximal connected (k+1)-truss containing Q — a (k+1)-truss being a
k-core, this community is comparable to, and typically much larger than,
the corresponding MAC.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.truss import k_truss_containing


def attribute_truss_community(
    graph: AdjacencyGraph,
    keywords: Mapping[int, str],
    query: Iterable[int],
    k: int,
    keyword: str | None = None,
) -> frozenset[int] | None:
    """Maximal connected (k+1)-truss ⊇ Q among keyword-matching vertices.

    ``keyword=None`` skips the attribute filter (plain truss community).
    Returns None when no such community exists.
    """
    q = sorted(set(query))
    if keyword is None:
        keep = set(graph.vertices())
    else:
        keep = {v for v in graph.vertices() if keywords.get(v) == keyword}
        keep.update(q)
    sub = graph.subgraph(keep)
    truss = k_truss_containing(sub, q, k + 1)
    return frozenset(truss.vertices()) if truss is not None else None
