"""Baselines the paper compares against (Figs. 13-15).

* ``influential`` — Influ / Influ+ (Li et al., PVLDB 2015 [4]): k-core
  communities ranked by a 1-dimensional influence score; Influ+ uses the
  precomputed ICP-index.
* ``skyline`` — Sky / Sky+ (Li et al., SIGMOD 2018 [8]): skyline
  communities under traditional d-dimensional dominance; Sky+ adds
  space-partition pruning.
* ``truss_attribute`` — ATC-style (Huang & Lakshmanan, PVLDB 2017 [7]):
  (k+1)-truss community with keyword filtering (case-study comparator).
"""

from repro.baselines.influential import (
    ICPIndex,
    influ_nc,
    influential_communities,
)
from repro.baselines.skyline import skyline_communities
from repro.baselines.truss_attribute import attribute_truss_community

__all__ = [
    "influential_communities",
    "influ_nc",
    "ICPIndex",
    "skyline_communities",
    "attribute_truss_community",
]
