"""Typed mutations, their wire codec, and all-or-nothing batch validation.

A mutation batch is the unit of both application and replay: the engine
validates the *whole* batch against the current network (simulating
earlier edge operations in the batch) before touching anything, so a
rejected batch — :class:`~repro.errors.MutationError` — leaves the
network, the caches, and the delta log exactly as they were.  That
atomicity is what makes the append-only delta log deterministic to
replay.

The wire form is one JSON object per mutation with an ``"op"``
discriminator, e.g.::

    {"op": "add_social_edge", "u": 3, "v": 17}
    {"op": "update_attributes", "user": 5, "attributes": [0.2, 0.9, 0.4]}
    {"op": "move_user", "user": 5, "point": {"u": 40, "v": 41, "offset": 2.5}}
    {"op": "update_road_weight", "u": 40, "v": 41, "weight": 9.0}
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import ClassVar, Union

from repro.errors import GraphError, MutationError
from repro.road.network import SpatialPoint


@dataclass(frozen=True)
class AddSocialEdge:
    """Insert the undirected friendship edge ``(u, v)``."""

    u: int
    v: int
    kind: ClassVar[str] = "add_social_edge"

    def to_wire(self) -> dict:
        return {"op": self.kind, "u": self.u, "v": self.v}


@dataclass(frozen=True)
class RemoveSocialEdge:
    """Delete the undirected friendship edge ``(u, v)``."""

    u: int
    v: int
    kind: ClassVar[str] = "remove_social_edge"

    def to_wire(self) -> dict:
        return {"op": self.kind, "u": self.u, "v": self.v}


@dataclass(frozen=True)
class UpdateAttributes:
    """Replace user's d-dimensional attribute vector."""

    user: int
    attributes: tuple[float, ...]
    kind: ClassVar[str] = "update_attributes"

    def to_wire(self) -> dict:
        return {
            "op": self.kind,
            "user": self.user,
            "attributes": list(self.attributes),
        }


@dataclass(frozen=True)
class MoveUser:
    """Relocate a user to a new spatial point on the road network."""

    user: int
    point: SpatialPoint
    kind: ClassVar[str] = "move_user"

    def to_wire(self) -> dict:
        return {
            "op": self.kind,
            "user": self.user,
            "point": {
                "u": self.point.u,
                "v": self.point.v,
                "offset": self.point.offset,
            },
        }


@dataclass(frozen=True)
class UpdateRoadWeight:
    """Change the travel weight of the existing road edge ``(u, v)``."""

    u: int
    v: int
    weight: float
    kind: ClassVar[str] = "update_road_weight"

    def to_wire(self) -> dict:
        return {"op": self.kind, "u": self.u, "v": self.v, "weight": self.weight}


Mutation = Union[
    AddSocialEdge, RemoveSocialEdge, UpdateAttributes, MoveUser, UpdateRoadWeight
]

_MUTATION_TYPES = (
    AddSocialEdge, RemoveSocialEdge, UpdateAttributes, MoveUser, UpdateRoadWeight
)

MUTATION_KINDS: tuple[str, ...] = tuple(t.kind for t in _MUTATION_TYPES)

_BY_KIND = {t.kind: t for t in _MUTATION_TYPES}


# ----------------------------------------------------------------------
# convenience constructors (the public mutation-building API)
# ----------------------------------------------------------------------
def add_social_edge(u: int, v: int) -> AddSocialEdge:
    return AddSocialEdge(u, v)


def remove_social_edge(u: int, v: int) -> RemoveSocialEdge:
    return RemoveSocialEdge(u, v)


def update_attributes(user: int, attributes: Iterable[float]) -> UpdateAttributes:
    return UpdateAttributes(user, tuple(float(x) for x in attributes))


def move_user(user: int, point: SpatialPoint) -> MoveUser:
    return MoveUser(user, point)


def update_road_weight(u: int, v: int, weight: float) -> UpdateRoadWeight:
    return UpdateRoadWeight(u, v, float(weight))


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
def mutation_to_wire(mutation: Mutation) -> dict:
    """The JSON-safe wire form of one mutation."""
    return mutation.to_wire()


def _wire_int(obj: Mapping, field: str, op: str) -> int:
    value = obj.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise MutationError(
            f"mutation {op!r} needs an integer {field!r}, got {value!r}"
        )
    return value


def mutation_from_wire(obj: Mapping) -> Mutation:
    """Decode one wire object; :class:`MutationError` on malformed input."""
    if not isinstance(obj, Mapping):
        raise MutationError(
            f"a wire mutation must be an object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    cls = _BY_KIND.get(op)
    if cls is None:
        raise MutationError(
            f"unknown mutation op {op!r}; expected one of {MUTATION_KINDS}"
        )
    if cls in (AddSocialEdge, RemoveSocialEdge):
        return cls(_wire_int(obj, "u", op), _wire_int(obj, "v", op))
    if cls is UpdateAttributes:
        attrs = obj.get("attributes")
        if not isinstance(attrs, (list, tuple)):
            raise MutationError(
                f"mutation {op!r} needs an 'attributes' list, got {attrs!r}"
            )
        try:
            vector = tuple(float(x) for x in attrs)
        except (TypeError, ValueError):
            raise MutationError(
                f"mutation {op!r} attributes must be numbers, got {attrs!r}"
            ) from None
        return UpdateAttributes(_wire_int(obj, "user", op), vector)
    if cls is MoveUser:
        point = obj.get("point")
        if not isinstance(point, Mapping) or "u" not in point:
            raise MutationError(
                f"mutation {op!r} needs a 'point' object with at least 'u', "
                f"got {point!r}"
            )
        try:
            spatial = SpatialPoint(
                u=point["u"],
                v=point.get("v"),
                offset=float(point.get("offset", 0.0)),
            )
        except (TypeError, ValueError):
            raise MutationError(
                f"mutation {op!r} has a malformed point {point!r}"
            ) from None
        return MoveUser(_wire_int(obj, "user", op), spatial)
    weight = obj.get("weight")
    if isinstance(weight, bool) or not isinstance(weight, (int, float)):
        raise MutationError(
            f"mutation {op!r} needs a numeric 'weight', got {weight!r}"
        )
    return UpdateRoadWeight(
        _wire_int(obj, "u", op), _wire_int(obj, "v", op), float(weight)
    )


def normalize_batch(mutations: Iterable) -> list[Mutation]:
    """Coerce a mixed iterable of mutations / wire dicts to typed form."""
    out: list[Mutation] = []
    for m in mutations:
        if isinstance(m, _MUTATION_TYPES):
            out.append(m)
        elif isinstance(m, Mapping):
            out.append(mutation_from_wire(m))
        else:
            raise MutationError(
                f"expected a mutation or wire dict, got {type(m).__name__}"
            )
    return out


# ----------------------------------------------------------------------
# batch validation (all-or-nothing)
# ----------------------------------------------------------------------
def validate_batch(network, mutations: list[Mutation]) -> None:
    """Check every mutation against ``network`` plus the batch's own prefix.

    Social-edge operations earlier in the batch are simulated through an
    overlay, so ``[add(u,v), remove(u,v)]`` validates even when the edge
    does not exist yet.  Raises :class:`MutationError` naming the first
    offending mutation; on success the batch is guaranteed to apply
    cleanly in order.
    """
    if not mutations:
        raise MutationError("mutation batch is empty")
    social = network.social
    road = network.road
    added: set[frozenset] = set()
    removed: set[frozenset] = set()

    def has_social_edge(u: int, v: int) -> bool:
        key = frozenset((u, v))
        if key in added:
            return True
        if key in removed:
            return False
        return social.graph.has_edge(u, v)

    for i, m in enumerate(mutations):
        where = f"mutation {i} ({m.kind})"
        if isinstance(m, (AddSocialEdge, RemoveSocialEdge)):
            if m.u == m.v:
                raise MutationError(f"{where}: self-loop on user {m.u!r}")
            for w in (m.u, m.v):
                if w not in social.graph:
                    raise MutationError(
                        f"{where}: user {w!r} not in the social network"
                    )
            key = frozenset((m.u, m.v))
            if isinstance(m, AddSocialEdge):
                if has_social_edge(m.u, m.v):
                    raise MutationError(
                        f"{where}: edge ({m.u!r}, {m.v!r}) already exists"
                    )
                added.add(key)
                removed.discard(key)
            else:
                if not has_social_edge(m.u, m.v):
                    raise MutationError(
                        f"{where}: edge ({m.u!r}, {m.v!r}) does not exist"
                    )
                removed.add(key)
                added.discard(key)
        elif isinstance(m, UpdateAttributes):
            if m.user not in social.graph:
                raise MutationError(
                    f"{where}: user {m.user!r} not in the social network"
                )
            d = social.dimensionality
            if len(m.attributes) != d:
                raise MutationError(
                    f"{where}: expected {d} attributes, got "
                    f"{len(m.attributes)}"
                )
            if not all(math.isfinite(x) for x in m.attributes):
                raise MutationError(f"{where}: attributes must be finite")
        elif isinstance(m, MoveUser):
            if m.user not in social.graph:
                raise MutationError(
                    f"{where}: user {m.user!r} not in the social network"
                )
            try:
                road.validate_point(m.point)
            except GraphError as exc:
                raise MutationError(f"{where}: {exc}") from None
        elif isinstance(m, UpdateRoadWeight):
            if not math.isfinite(m.weight) or m.weight < 0:
                raise MutationError(
                    f"{where}: weight must be finite and non-negative, "
                    f"got {m.weight!r}"
                )
            try:
                road.weight(m.u, m.v)
            except GraphError:
                raise MutationError(
                    f"{where}: road edge ({m.u!r}, {m.v!r}) does not exist"
                ) from None
        else:  # pragma: no cover - normalize_batch rejects foreign types
            raise MutationError(f"{where}: unsupported mutation type")
