"""Live graph mutations: typed deltas against a road-social network.

A production road-social graph is not frozen — friendships appear and
disappear, user attributes drift, users move, road segments slow down.
This package is the mutation side of the engine: five typed mutation
kinds, batch validation with all-or-nothing semantics, bounded
incremental k-core maintenance (python reference here, flat CSR kernels
in :mod:`repro.kernels.livecore`), and the footprint rules that decide
which warm cache entries a mutation actually dirties.

Entry points:

* :meth:`repro.engine.MACEngine.apply` — apply a batch to a live engine
  (network mutation + warm-entry repair + footprint-scoped eviction).
* ``POST /v1/admin/mutate`` / :meth:`repro.service.ServiceClient.mutate`
  — the same over the wire, broadcast to every pool worker.
* :func:`repro.store.append_delta` / ``repro mutate`` — the append-only
  delta log beside a snapshot, replayed by :meth:`MACEngine.load`.
"""

from repro.live.kcore import repair_delete, repair_insert
from repro.live.mutations import (
    MUTATION_KINDS,
    AddSocialEdge,
    MoveUser,
    Mutation,
    RemoveSocialEdge,
    UpdateAttributes,
    UpdateRoadWeight,
    add_social_edge,
    move_user,
    mutation_from_wire,
    mutation_to_wire,
    normalize_batch,
    remove_social_edge,
    update_attributes,
    update_road_weight,
    validate_batch,
)

__all__ = [
    "MUTATION_KINDS",
    "AddSocialEdge",
    "MoveUser",
    "Mutation",
    "RemoveSocialEdge",
    "UpdateAttributes",
    "UpdateRoadWeight",
    "add_social_edge",
    "move_user",
    "mutation_from_wire",
    "mutation_to_wire",
    "normalize_batch",
    "remove_social_edge",
    "repair_delete",
    "repair_insert",
    "update_attributes",
    "update_road_weight",
    "validate_batch",
]
