"""Footprint rules: which warm cache entries does a mutation dirty?

The engine caches four stages — (Q, t) filters, (Q, k, t) cores,
(Q, k, t, R) dominance graphs, and full results.  A social-edge mutation
leaves every filter entry warm (query distances do not depend on the
social topology; the engine *repairs* the affected ones in place), and
the rules below decide, per downstream entry, whether the mutation can
possibly have changed it.  Keeping is only allowed when provably safe:

**Delete** ``(u, v)``: an entry's community ``C`` (a connected component
of the k-core of its filtered subgraph) can only change if both
endpoints lie in ``C``.  Coreness drops are confined to the subcore at
level ``r = min(core(u), core(v))``; a member of ``C`` has coreness
``>= k``, so a member can drop below ``k`` only when ``r >= k`` — and
then both endpoints are in the k-core, and an endpoint adjacent to a
member of ``C`` is itself in ``C``.  Likewise a split of ``C`` needs an
intra-``C`` edge removed.  So *both endpoints in members* is the exact
dirtiness condition, and it needs no repair context at all — it is
sound even for entries whose parent filter entry was evicted by LRU.
Infeasible entries stay infeasible (cores only shrink, components only
split).

**Insert** ``(u, v)``: with the parent filter entry warm we know the
repair delta ``changed`` (every coreness rise).  ``C`` can change by
(a) gaining an endpoint — some endpoint already in members, (b) gaining
a vertex whose coreness rose to ``>= k`` (it may be adjacent to ``C``
without being an endpoint — the naive ``members ∩ ({u,v} ∪ changed)``
test misses this), or (c) for infeasible entries, the new edge merging
two k-core components that split the query set — possible only when
both endpoints end with coreness ``>= k``.  Without a warm parent
filter there is no repair delta, so orphaned entries are evicted
conservatively.

**Attribute update** of ``user``: filters and cores keyed on topology
stay warm; an entry is dirty iff ``user`` is one of its members (the
attribute matrix / dominance DAG embeds the vector).

``move_user`` and ``update_road_weight`` change query distances, whose
footprint (every (Q, t) whose range filter the moved point intersects)
is not recoverable from cached state — the engine evicts globally for
those two kinds, by design.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RepairDelta:
    """Outcome of repairing one warm filter entry after an edge mutation.

    ``changed`` maps vertex -> new coreness for every vertex the repair
    moved; ``coreness`` is the full post-repair coreness map of the
    entry (shared by reference, not copied).
    """

    changed: dict
    coreness: dict


def edge_dirty_insert(k: int, members, delta: RepairDelta | None, u, v) -> bool:
    """Is a (Q, k, t) entry dirty after inserting social edge ``(u, v)``?

    ``members`` is any container supporting ``in`` over the entry's
    community vertices, or ``None`` for an infeasible (empty-core)
    entry.  ``delta`` is the parent filter entry's repair outcome, or
    ``None`` when that entry was not warm (conservative eviction).
    """
    if delta is None:
        return True
    if any(c >= k for c in delta.changed.values()):
        return True
    if members is None:
        # Feasibility can flip without any coreness change: the new edge
        # may merge k-core components that separated the query set.
        return (
            delta.coreness.get(u, 0) >= k and delta.coreness.get(v, 0) >= k
        )
    return u in members or v in members


def edge_dirty_delete(members, u, v) -> bool:
    """Is a (Q, k, t) entry dirty after deleting social edge ``(u, v)``?"""
    if members is None:
        return False
    return u in members and v in members


def attribute_dirty(members, user) -> bool:
    """Is a (Q, k, t) entry dirty after updating ``user``'s attributes?"""
    return members is not None and user in members
