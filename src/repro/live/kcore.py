"""Bounded incremental k-core maintenance (python reference).

When an edge ``(u, v)`` is inserted into or deleted from a graph, the
classic traversal-based maintenance results (Li, Yu & Mao, TKDE'14;
Sariyüce et al., PVLDB'13) localize the damage: only vertices of
coreness exactly ``r = min(core(u), core(v))`` can change, and any
change is exactly ±1.  Repairing after a mutation therefore costs a
traversal of the (usually tiny) affected region instead of an O(m)
Batagelj–Zaversnik re-peel, the asymmetry ``benchmarks/bench_live.py``
measures.  Two prunings keep the region small even when the level-``r``
subcore is most of the graph (low modal coreness):

* **insert** explores the *purecore*: a vertex can rise only if it has
  more than ``r`` neighbors of coreness ``>= r``, and risers form a
  connected chain of such vertices back to an inserted endpoint — so
  the traversal expands only through vertices passing that degree test.
* **delete** needs no candidate region at all: support (neighbors of
  current coreness ``>= r``) is locally computable, so the drop cascade
  starts at the endpoints and touches only vertices that actually fall
  plus their immediate frontier.

Both functions mutate the ``coreness`` dict in place and return the
``{vertex: new_coreness}`` delta.  The CSR-row twins with identical
semantics live in :mod:`repro.kernels.livecore`; the randomized suite in
``tests/live`` pits both against full re-decompositions.
"""

from __future__ import annotations


def _insert_candidates(graph, coreness: dict, roots: list, r: int) -> set:
    """Vertices that could rise past ``r`` after an insert at ``roots``.

    BFS over coreness-``r`` vertices, expanding only through vertices
    with more than ``r`` neighbors of coreness ``>= r``: anything with
    fewer can never collect the ``r + 1`` supporters a rise needs, so it
    stays at ``r`` and screens everything behind it.
    """
    seen = set(roots)
    stack = list(roots)
    while stack:
        w = stack.pop()
        mcd = sum(1 for n in graph.neighbors(w) if coreness[n] >= r)
        if mcd <= r:
            continue
        for n in graph.neighbors(w):
            if n not in seen and coreness[n] == r:
                seen.add(n)
                stack.append(n)
    return seen


def repair_insert(graph, coreness: dict, u, v) -> dict:
    """Repair ``coreness`` after edge ``(u, v)`` was added to ``graph``.

    ``graph`` must already contain the new edge.  A candidate survives
    at level ``r + 1`` iff the cascade leaves it with more than ``r``
    supporters — neighbors of coreness ``> r`` plus still-alive
    candidates; survivors rise by exactly one.
    """
    r = min(coreness[u], coreness[v])
    roots = [w for w in (u, v) if coreness[w] == r]
    cand = _insert_candidates(graph, coreness, roots, r)
    alive = set(cand)
    supp = {
        w: sum(1 for n in graph.neighbors(w) if coreness[n] > r or n in alive)
        for w in cand
    }
    stack = [w for w in cand if supp[w] <= r]
    while stack:
        w = stack.pop()
        if w not in alive:
            continue
        alive.discard(w)
        for n in graph.neighbors(w):
            if n in alive:
                supp[n] -= 1
                if supp[n] <= r:
                    stack.append(n)
    changed = {}
    for w in alive:
        coreness[w] = r + 1
        changed[w] = r + 1
    return changed


def repair_delete(graph, coreness: dict, u, v) -> dict:
    """Repair ``coreness`` after edge ``(u, v)`` was removed from ``graph``.

    ``graph`` must no longer contain the edge.  Support is computed
    lazily against the *current* coreness (already-dropped neighbors
    count as ``r - 1``), so the cascade never leaves the damaged region:
    a vertex drops by exactly one as soon as it has fewer than ``r``
    neighbors of coreness ``>= r``.
    """
    r = min(coreness[u], coreness[v])
    supp: dict = {}
    changed = {}
    stack = [w for w in (u, v) if coreness[w] == r]
    while stack:
        w = stack.pop()
        if coreness[w] < r:
            continue
        if w not in supp:
            supp[w] = sum(1 for n in graph.neighbors(w) if coreness[n] >= r)
        if supp[w] >= r:
            continue
        coreness[w] = r - 1
        changed[w] = r - 1
        for n in graph.neighbors(w):
            if coreness[n] == r:
                if n in supp:
                    supp[n] -= 1
                    if supp[n] < r:
                        stack.append(n)
                else:
                    stack.append(n)
    return changed
