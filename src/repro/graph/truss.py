"""k-truss machinery.

The paper remarks (Sec. II-B) that its techniques also apply to k-truss
cohesiveness, and the Fig. 15(h) case-study baseline (ATC [7]) is a
(k+1)-truss community.  Trusses are computed by support peeling on sorted
adjacency intersections — hand-rolled because networkx truss peeling is
too slow at benchmark scale.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph, Vertex

Edge = tuple[Vertex, Vertex]


def _canon(u: Vertex, v: Vertex) -> Edge:
    """Canonical (sorted) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


def _edge_supports(graph: AdjacencyGraph) -> dict[Edge, int]:
    """Number of triangles through each edge."""
    support: dict[Edge, int] = {}
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        support[_canon(u, v)] = len(common)
    return support


def truss_decomposition(graph: AdjacencyGraph) -> dict[Edge, int]:
    """Return the truss number of every edge.

    The truss number of an edge is the largest k such that the edge belongs
    to a k-truss (a subgraph where every edge closes at least k-2
    triangles).  Edges are peeled in order of increasing triangle support
    with lazy heap deletion: supports only decrease, so stale heap entries
    are skipped when popped.
    """
    g = graph.copy()
    current = _edge_supports(g)
    heap = [(s, e) for e, s in current.items()]
    heapq.heapify(heap)
    alive = set(current)
    truss: dict[Edge, int] = {}
    k = 2
    while heap:
        s, e = heapq.heappop(heap)
        if e not in alive or s != current[e]:
            continue
        u, v = e
        k = max(k, s + 2)
        truss[e] = k
        alive.discard(e)
        for w in list(g.neighbors(u) & g.neighbors(v)):
            for other in (_canon(u, w), _canon(v, w)):
                if other in alive:
                    current[other] -= 1
                    heapq.heappush(heap, (current[other], other))
        g.remove_edge(u, v)
    return truss


def k_truss(graph: AdjacencyGraph, k: int) -> AdjacencyGraph:
    """Maximal k-truss subgraph (every edge in ≥ k-2 triangles).

    Returns a (possibly disconnected, possibly empty) graph containing only
    vertices with at least one surviving edge.
    """
    if k < 2:
        raise GraphError(f"k-truss requires k >= 2, got {k}")
    g = graph.copy()
    support = _edge_supports(g)
    queue = deque(e for e, s in support.items() if s < k - 2)
    queued = set(queue)
    while queue:
        e = queue.popleft()
        u, v = e
        if not g.has_edge(u, v):
            continue
        for w in list(g.neighbors(u) & g.neighbors(v)):
            for other in (_canon(u, w), _canon(v, w)):
                if other in support:
                    support[other] -= 1
                    if support[other] < k - 2 and other not in queued:
                        queued.add(other)
                        queue.append(other)
        g.remove_edge(u, v)
        del support[e]
    for v in [x for x in g.vertices() if g.degree(x) == 0]:
        g.remove_vertex(v)
    return g


def k_truss_containing(
    graph: AdjacencyGraph, query: Iterable[Vertex], k: int
) -> AdjacencyGraph | None:
    """Maximal connected k-truss containing all query vertices, or None."""
    q = list(query)
    if not q:
        raise GraphError("query vertex set must be non-empty")
    truss = k_truss(graph, k)
    if any(v not in truss for v in q):
        return None
    component = truss.component_of(q[0])
    if not all(v in component for v in q):
        return None
    return truss.subgraph(component)
