"""k-core machinery: decomposition, peeling, and query-anchored k-ĉores.

``core_decomposition`` is the Batagelj–Zaversnik bucket algorithm (the
O(m) routine cited as [14] in the paper).  ``k_core_containing`` computes
the maximal connected k-core (k-ĉore) that contains all query vertices,
the building block of the maximal (k,t)-core (Lemma 2/3).

Every entry point takes ``backend="auto" | "flat" | "python"``: the flat
backend runs the vectorized CSR kernels of :mod:`repro.kernels` (batch
peeling, array BFS), the python backend the original per-vertex
implementations; ``"auto"`` picks flat for graphs large enough that the
array setup pays for itself.  Both backends return identical results
(asserted in ``tests/kernels/``).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Sequence

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph, Vertex
from repro.kernels import (
    FlatGraph,
    component_mask,
    core_numbers,
    k_core_component,
    resolve_backend,
)


def core_decomposition(
    graph: AdjacencyGraph, backend: str = "auto"
) -> dict[Vertex, int]:
    """Return the core number of every vertex (Batagelj–Zaversnik).

    The core number of ``v`` is the largest k such that ``v`` belongs to a
    k-core of ``graph``.
    """
    if resolve_backend(backend, graph.num_vertices) == "flat":
        fg = FlatGraph.from_adjacency(graph)
        return fg.relabel(core_numbers(fg))
    return _core_decomposition_python(graph)


def _core_decomposition_python(graph: AdjacencyGraph) -> dict[Vertex, int]:
    """Sequential Batagelj–Zaversnik with the position-swap bucket layout.

    ``vert`` holds the vertices sorted by current degree, ``pos`` each
    vertex's slot, and ``bin_start[d]`` the first slot of degree-d
    vertices.  A degree decrement swaps the vertex with the first member
    of its bucket and advances the boundary — O(1) per decrement and
    O(n) total memory, instead of appending a stale entry per decrement
    (worst-case O(m) bucket churn).
    """
    degree = {v: graph.degree(v) for v in graph.vertices()}
    n = len(degree)
    if n == 0:
        return {}
    max_deg = max(degree.values())
    bin_count = [0] * (max_deg + 1)
    for d in degree.values():
        bin_count[d] += 1
    bin_start = [0] * (max_deg + 1)
    start = 0
    for d in range(max_deg + 1):
        bin_start[d] = start
        start += bin_count[d]
    vert: list[Vertex] = [None] * n  # type: ignore[list-item]
    pos: dict[Vertex, int] = {}
    fill = list(bin_start)
    for v, d in degree.items():
        p = fill[d]
        vert[p] = v
        pos[v] = p
        fill[d] += 1
    core: dict[Vertex, int] = {}
    for i in range(n):
        v = vert[i]
        dv = degree[v]
        core[v] = dv
        for u in graph.neighbors(v):
            du = degree[u]
            if du > dv:
                pu = pos[u]
                pw = bin_start[du]
                w = vert[pw]
                if u is not w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bin_start[du] += 1
                degree[u] = du - 1
    return core


def peel_to_k_core(
    graph: AdjacencyGraph, k: int, backend: str = "auto"
) -> AdjacencyGraph:
    """Return the maximal k-core of ``graph`` as a new graph.

    The result may be empty and may be disconnected (the union of all
    k-ĉores).  The flat backend thresholds the coreness array (the
    maximal k-core is exactly the vertices with coreness >= k); the
    python backend runs the original removal cascade.
    """
    if k < 0:
        raise GraphError(f"k must be non-negative, got {k}")
    if resolve_backend(backend, graph.num_vertices) == "flat":
        fg = FlatGraph.from_adjacency(graph)
        return graph.subgraph(fg.select_ids(core_numbers(fg) >= k))
    g = graph.copy()
    queue = deque(v for v in g.vertices() if g.degree(v) < k)
    enqueued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in g:
            continue
        for u in list(g.neighbors(v)):
            g.remove_edge(v, u)
            if g.degree(u) < k and u not in enqueued:
                enqueued.add(u)
                queue.append(u)
        g.remove_vertex(v)
    return g


def k_core(
    graph: AdjacencyGraph, k: int, backend: str = "auto"
) -> AdjacencyGraph:
    """Alias for :func:`peel_to_k_core` (maximal, possibly disconnected)."""
    return peel_to_k_core(graph, k, backend=backend)


def k_core_containing(
    graph: AdjacencyGraph,
    query: Iterable[Vertex],
    k: int,
    backend: str = "auto",
) -> AdjacencyGraph | None:
    """The maximal connected k-core (k-ĉore) containing every query vertex.

    Returns ``None`` when no such community exists: some query vertex falls
    out of the k-core, or the query vertices end up in different connected
    components of it.
    """
    q = list(query)
    if not q:
        raise GraphError("query vertex set must be non-empty")
    if k < 0:
        raise GraphError(f"k must be non-negative, got {k}")
    if any(v not in graph for v in q):
        return None
    if resolve_backend(backend, graph.num_vertices) == "flat":
        fg = FlatGraph.from_adjacency(graph)
        comp = k_core_component(fg, fg.rows_of(q), k)
        if comp is None:
            return None
        return graph.subgraph(fg.select_ids(comp))
    core = peel_to_k_core(graph, k, backend="python")
    if any(v not in core for v in q):
        return None
    component = core.component_of(q[0])
    if not all(v in component for v in q):
        return None
    return core.subgraph(component)


def k_cores_containing(
    graph: AdjacencyGraph,
    query: Iterable[Vertex],
    ks: Sequence[int],
    backend: str = "auto",
) -> dict[int, AdjacencyGraph | None]:
    """Batched :func:`k_core_containing` over several coreness thresholds.

    One decomposition (and, on the flat backend, one CSR build) serves
    every k — the engine-style amortization for parameter sweeps.
    """
    q = list(query)
    if not q:
        raise GraphError("query vertex set must be non-empty")
    if any(kk < 0 for kk in ks):
        raise GraphError(f"k must be non-negative, got {min(ks)}")
    out: dict[int, AdjacencyGraph | None] = {}
    if any(v not in graph for v in q):
        return {int(kk): None for kk in ks}
    if resolve_backend(backend, graph.num_vertices) == "flat":
        fg = FlatGraph.from_adjacency(graph)
        core = core_numbers(fg)
        rows = fg.rows_of(q)
        for kk in ks:
            comp = k_core_component(fg, rows, kk, core)
            out[int(kk)] = (
                None if comp is None else graph.subgraph(fg.select_ids(comp))
            )
        return out
    coreness = _core_decomposition_python(graph)
    for kk in ks:
        keep = [v for v, c in coreness.items() if c >= kk]
        sub = graph.subgraph(keep)
        if any(v not in sub for v in q):
            out[int(kk)] = None
            continue
        component = sub.component_of(q[0])
        if not all(v in component for v in q):
            out[int(kk)] = None
            continue
        out[int(kk)] = sub.subgraph(component)
    return out


def coreness_upper_bound(num_vertices: int, num_edges: int) -> int:
    """Upper bound on the maximum coreness of a graph (cited as [2]).

    If ``k`` exceeds this bound there cannot be any k-core, so the search
    can terminate immediately (Section III of the paper):
    ``floor((1 + sqrt(9 + 8(m - n))) / 2)``.
    """
    if num_vertices <= 0:
        return 0
    slack = num_edges - num_vertices
    discriminant = 9 + 8 * slack
    if discriminant < 0:
        # Fewer edges than vertices: forest-like, coreness at most 1.
        return 1
    return int((1 + math.isqrt(discriminant)) // 2)
