"""k-core machinery: decomposition, peeling, and query-anchored k-ĉores.

``core_decomposition`` is the Batagelj–Zaversnik bucket algorithm (the
O(m) routine cited as [14] in the paper).  ``k_core_containing`` computes
the maximal connected k-core (k-ĉore) that contains all query vertices,
the building block of the maximal (k,t)-core (Lemma 2/3).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph, Vertex


def core_decomposition(graph: AdjacencyGraph) -> dict[Vertex, int]:
    """Return the core number of every vertex (Batagelj–Zaversnik).

    The core number of ``v`` is the largest k such that ``v`` belongs to a
    k-core of ``graph``.
    """
    degree = {v: graph.degree(v) for v in graph.vertices()}
    if not degree:
        return {}
    max_deg = max(degree.values())
    buckets: list[list[Vertex]] = [[] for _ in range(max_deg + 1)]
    for v, d in degree.items():
        buckets[d].append(v)

    core: dict[Vertex, int] = {}
    current = dict(degree)
    removed: set[Vertex] = set()
    k = 0
    for d in range(max_deg + 1):
        bucket = buckets[d]
        while bucket:
            v = bucket.pop()
            if v in removed or current[v] != d:
                # Stale bucket entry: the vertex moved to a lower bucket.
                continue
            k = max(k, d)
            core[v] = k
            removed.add(v)
            for u in graph.neighbors(v):
                if u in removed:
                    continue
                cu = current[u]
                if cu > d:
                    current[u] = cu - 1
                    buckets[cu - 1].append(u)
    return core


def peel_to_k_core(graph: AdjacencyGraph, k: int) -> AdjacencyGraph:
    """Return the maximal k-core of ``graph`` as a new graph.

    Iteratively removes vertices with degree < k (cascade).  The result may
    be empty and may be disconnected (the union of all k-ĉores).
    """
    if k < 0:
        raise GraphError(f"k must be non-negative, got {k}")
    g = graph.copy()
    queue = deque(v for v in g.vertices() if g.degree(v) < k)
    enqueued = set(queue)
    while queue:
        v = queue.popleft()
        if v not in g:
            continue
        for u in list(g.neighbors(v)):
            g.remove_edge(v, u)
            if g.degree(u) < k and u not in enqueued:
                enqueued.add(u)
                queue.append(u)
        g.remove_vertex(v)
    return g


def k_core(graph: AdjacencyGraph, k: int) -> AdjacencyGraph:
    """Alias for :func:`peel_to_k_core` (maximal, possibly disconnected)."""
    return peel_to_k_core(graph, k)


def k_core_containing(
    graph: AdjacencyGraph, query: Iterable[Vertex], k: int
) -> AdjacencyGraph | None:
    """The maximal connected k-core (k-ĉore) containing every query vertex.

    Returns ``None`` when no such community exists: some query vertex falls
    out of the k-core, or the query vertices end up in different connected
    components of it.
    """
    q = list(query)
    if not q:
        raise GraphError("query vertex set must be non-empty")
    if any(v not in graph for v in q):
        return None
    core = peel_to_k_core(graph, k)
    if any(v not in core for v in q):
        return None
    component = core.component_of(q[0])
    if not all(v in component for v in q):
        return None
    return core.subgraph(component)


def coreness_upper_bound(num_vertices: int, num_edges: int) -> int:
    """Upper bound on the maximum coreness of a graph (cited as [2]).

    If ``k`` exceeds this bound there cannot be any k-core, so the search
    can terminate immediately (Section III of the paper):
    ``floor((1 + sqrt(9 + 8(m - n))) / 2)``.
    """
    if num_vertices <= 0:
        return 0
    slack = num_edges - num_vertices
    discriminant = 9 + 8 * slack
    if discriminant < 0:
        # Fewer edges than vertices: forest-like, coreness at most 1.
        return 1
    return int((1 + math.isqrt(discriminant)) // 2)
