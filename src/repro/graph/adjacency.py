"""A small, fast, dynamic undirected graph on adjacency sets.

This is the workhorse structure for every social-graph algorithm in the
package (core decomposition, peeling cascades, truss computation, local
expansion).  It deliberately supports only what those algorithms need:
integer-keyed vertices, unweighted undirected edges, O(1) degree lookups,
cheap induced subgraphs and connected components.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError

Vertex = Hashable


class AdjacencyGraph:
    """Mutable undirected graph backed by a dict of adjacency sets.

    Vertices may be any hashable value (the library uses ints).  Parallel
    edges and self-loops are rejected, matching the simple-graph model of
    the paper.
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[tuple[Vertex, Vertex]] = ()) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Yield each undirected edge exactly once."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """Return the adjacency set of ``v`` (do not mutate it)."""
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} not in graph") from None

    def degree(self, v: Vertex) -> int:
        return len(self.neighbors(v))

    def min_degree(self) -> int:
        """Minimum degree over all vertices (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(nbrs) for nbrs in self._adj.values())

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise GraphError(f"self-loop on {u!r} not allowed")
        a = self._adj.setdefault(u, set())
        b = self._adj.setdefault(v, set())
        if v not in a:
            a.add(v)
            b.add(u)
            self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None
        self._num_edges -= 1

    def remove_vertex(self, v: Vertex) -> None:
        try:
            nbrs = self._adj.pop(v)
        except KeyError:
            raise GraphError(f"vertex {v!r} not in graph") from None
        for u in nbrs:
            self._adj[u].remove(v)
        self._num_edges -= len(nbrs)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> AdjacencyGraph:
        g = AdjacencyGraph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, keep: Iterable[Vertex]) -> AdjacencyGraph:
        """Induced subgraph on ``keep`` (vertices absent from self ignored)."""
        keep_set = {v for v in keep if v in self._adj}
        g = AdjacencyGraph()
        g._adj = {v: self._adj[v] & keep_set for v in keep_set}
        g._num_edges = sum(len(nbrs) for nbrs in g._adj.values()) // 2
        return g

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def component_of(self, source: Vertex) -> set[Vertex]:
        """Vertex set of the connected component containing ``source``."""
        if source not in self._adj:
            raise GraphError(f"vertex {source!r} not in graph")
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def connected_components(self) -> list[set[Vertex]]:
        remaining = set(self._adj)
        components = []
        while remaining:
            comp = self.component_of(next(iter(remaining)))
            components.append(comp)
            remaining -= comp
        return components

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.component_of(next(iter(self._adj)))) == len(self._adj)

    def same_component(self, vertices: Iterable[Vertex]) -> bool:
        """True iff all ``vertices`` lie in one connected component."""
        vs = list(vertices)
        if not vs:
            return True
        if any(v not in self._adj for v in vs):
            return False
        return set(vs) <= self.component_of(vs[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdjacencyGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
        )
