"""k-clique communities: the other Section II-B cohesiveness remark.

The paper notes its techniques also apply to the (quasi-)clique metric
of [15].  This module provides the clique substrate: Bron–Kerbosch
maximal-clique enumeration (with pivoting) and k-clique-component
communities in the palla-et-al sense — two k-cliques are adjacent when
they share k-1 vertices; a k-clique community is the union of a
connected component of that adjacency.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph, Vertex


def maximal_cliques(graph: AdjacencyGraph) -> Iterator[frozenset[Vertex]]:
    """Bron–Kerbosch with pivoting; yields every maximal clique."""

    def expand(r: set, p: set, x: set):
        if not p and not x:
            yield frozenset(r)
            return
        pivot = max(
            p | x, key=lambda v: len(graph.neighbors(v) & p), default=None
        )
        pivot_nbrs = graph.neighbors(pivot) if pivot is not None else set()
        for v in list(p - pivot_nbrs):
            nbrs = graph.neighbors(v)
            yield from expand(r | {v}, p & nbrs, x & nbrs)
            p.remove(v)
            x.add(v)

    yield from expand(set(), set(graph.vertices()), set())


def k_cliques(graph: AdjacencyGraph, k: int) -> list[frozenset[Vertex]]:
    """All cliques of exactly size k (subsets of maximal cliques)."""
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    import itertools

    out: set[frozenset[Vertex]] = set()
    for clique in maximal_cliques(graph):
        if len(clique) >= k:
            for sub in itertools.combinations(sorted(clique), k):
                out.add(frozenset(sub))
    return sorted(out, key=sorted)


def k_clique_communities(
    graph: AdjacencyGraph, k: int
) -> list[frozenset[Vertex]]:
    """k-clique percolation communities (adjacent = share k-1 vertices)."""
    cliques = k_cliques(graph, k)
    if not cliques:
        return []
    parent = list(range(len(cliques)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    # Index cliques by their (k-1)-subsets; cliques sharing one unite.
    import itertools

    by_face: dict[frozenset[Vertex], int] = {}
    for idx, clique in enumerate(cliques):
        for face in itertools.combinations(sorted(clique), k - 1):
            key = frozenset(face)
            first = by_face.get(key)
            if first is None:
                by_face[key] = idx
            else:
                union(first, idx)
    groups: dict[int, set[Vertex]] = {}
    for idx, clique in enumerate(cliques):
        groups.setdefault(find(idx), set()).update(clique)
    return sorted((frozenset(g) for g in groups.values()), key=sorted)


def k_clique_community_containing(
    graph: AdjacencyGraph, query: Iterable[Vertex], k: int
) -> frozenset[Vertex] | None:
    """The k-clique community containing every query vertex, or None."""
    q = set(query)
    if not q:
        raise GraphError("query vertex set must be non-empty")
    for community in k_clique_communities(graph, k):
        if q <= community:
            return community
    return None
