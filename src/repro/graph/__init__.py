"""Graph substrate: dynamic adjacency graphs and cohesive-subgraph peeling.

All hot-path graph algorithms in this package are implemented directly on
adjacency sets (no networkx), because pure-networkx core/truss peeling is
too slow at the dataset scales used by the benchmarks.
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import (
    core_decomposition,
    coreness_upper_bound,
    k_core,
    k_core_containing,
    k_cores_containing,
    peel_to_k_core,
)
from repro.graph.truss import k_truss, truss_decomposition
from repro.graph.clique import (
    k_clique_communities,
    k_clique_community_containing,
    maximal_cliques,
)

__all__ = [
    "AdjacencyGraph",
    "core_decomposition",
    "coreness_upper_bound",
    "k_core",
    "k_core_containing",
    "k_cores_containing",
    "peel_to_k_core",
    "k_truss",
    "truss_decomposition",
    "maximal_cliques",
    "k_clique_communities",
    "k_clique_community_containing",
]
