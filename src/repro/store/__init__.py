"""Persistent index snapshots: durable, versioned prepared-engine state.

The store turns the engine's in-memory indexes — the G-tree hierarchy
and distance matrices, road/social CSR views, per-(Q, t) coreness
arrays, and r-dominance DAGs — into an on-disk artifact
(``manifest.json`` + ``arrays.npz``) that a fresh process loads in
milliseconds instead of rebuilding in seconds:

    engine.search(request)                      # builds + caches
    engine.save("idx/")                         # persist prepared state

    engine = MACEngine.load("idx/", network)    # new process, warm start
    engine.search(request)                      # zero index builds

Snapshots are validated on load: format version, archive integrity, and
a content fingerprint of the target network all have to match, else
:class:`~repro.errors.SnapshotError` is raised.  See ENGINE.md ("Index
snapshots & warm start") and ``python -m repro.cli index --help``.
"""

from repro.store.fingerprint import network_fingerprint
from repro.store.snapshot import (
    DELTA_VERSION,
    FORMAT_VERSION,
    append_delta,
    load_snapshot,
    read_deltas,
    read_manifest,
    save_snapshot,
    snapshot_digest,
    snapshot_info,
    verify_snapshot,
)

__all__ = [
    "DELTA_VERSION",
    "FORMAT_VERSION",
    "append_delta",
    "load_snapshot",
    "network_fingerprint",
    "read_deltas",
    "read_manifest",
    "save_snapshot",
    "snapshot_digest",
    "snapshot_info",
    "verify_snapshot",
]
