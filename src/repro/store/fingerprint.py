"""Content fingerprints of road-social networks.

A snapshot (see :mod:`repro.store.snapshot`) is only valid against the
exact network it was built from: every serialized artifact — G-tree
matrices, CSR views, coreness arrays, dominance DAGs — is a pure
function of the road topology, social topology, attributes, and
check-in locations.  ``network_fingerprint`` hashes all four into one
stable digest that the snapshot manifest records and the load path
verifies, so a stale snapshot fails loudly instead of silently serving
answers for a different network.

The digest is independent of dict/set iteration order (everything is
canonicalized through sorted arrays) and of how the network object was
assembled, but deliberately sensitive to any semantic change: an added
edge, a perturbed weight or attribute, a moved check-in.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.social.roadsocial import RoadSocialNetwork


def _update(h: "hashlib._Hash", tag: str, arr: np.ndarray) -> None:
    """Hash one labelled array with an unambiguous shape/dtype header."""
    h.update(tag.encode())
    h.update(repr((arr.dtype.str, arr.shape)).encode())
    h.update(np.ascontiguousarray(arr).tobytes())


def network_fingerprint(network: RoadSocialNetwork) -> str:
    """Stable ``sha256:...`` digest of a road-social network's content."""
    h = hashlib.sha256()

    road = network.road
    road_verts = np.asarray(sorted(road.vertices()), np.int64)
    _update(h, "road.vertices", road_verts)
    coords = np.asarray(
        [
            road.coordinates(v) if road.has_coordinates(v) else (np.nan, np.nan)
            for v in road_verts.tolist()
        ],
        np.float64,
    ).reshape(-1, 2)
    _update(h, "road.coordinates", coords)
    road_edges = sorted(road.edges())
    _update(
        h, "road.edges",
        np.asarray([(u, v) for u, v, _w in road_edges], np.int64).reshape(-1, 2),
    )
    _update(
        h, "road.weights",
        np.asarray([w for _u, _v, w in road_edges], np.float64),
    )

    social = network.social
    users = sorted(social.graph.vertices())
    _update(h, "social.vertices", np.asarray(users, np.int64))
    social_edges = sorted(
        (u, v) if u <= v else (v, u) for u, v in social.graph.edges()
    )
    _update(
        h, "social.edges",
        np.asarray(social_edges, np.int64).reshape(-1, 2),
    )
    if users:
        attrs = np.asarray(
            [social.attributes[u] for u in users], np.float64
        ).reshape(len(users), -1)
    else:
        attrs = np.zeros((0, 0))
    _update(h, "social.attributes", attrs)
    locs = np.asarray(
        [
            (
                (p.u, -1 if p.v is None else p.v, p.offset)
                if (p := social.locations.get(u)) is not None
                else (-1, -1, np.nan)
            )
            for u in users
        ],
        np.float64,
    ).reshape(-1, 3)
    _update(h, "social.locations", locs)

    return f"sha256:{h.hexdigest()}"
