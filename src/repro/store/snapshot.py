"""Versioned on-disk snapshots of prepared MAC-engine state.

The paper's index machinery is pay-once-query-many: the G-tree, the CSR
views, the per-(Q, t) coreness arrays, and the r-dominance DAGs are all
expensive to build and cheap to use.  :class:`~repro.engine.MACEngine`
amortizes them in memory; this module makes them durable, so a fresh
process warm-starts from disk instead of rebuilding — the first query
after :func:`load_snapshot` performs zero index builds.

Format (one snapshot = one directory)::

    <snapshot>/
      manifest.json   format version, dataset fingerprint, backend,
                      engine configuration, per-entry keys + metadata
      arrays.npz      every numeric payload, keyed ``<component>.<field>``
      deltas.jsonl    optional append-only mutation log (one batch per
                      line); replayed by :func:`load_snapshot` to
                      fast-forward the base snapshot

The manifest is the source of truth for *what* is in the snapshot; the
``.npz`` holds only arrays.  Loads are strict: a missing file, corrupted
archive, unknown format version, or fingerprint mismatch against the
supplied network raises :class:`~repro.errors.SnapshotError` — a stale
snapshot must never silently answer for a different network.

The delta log makes small live mutations durable without re-saving the
whole snapshot: :func:`append_delta` appends one
:mod:`repro.live` batch (wire form) per line, and
:func:`load_snapshot` replays the log through
:meth:`~repro.engine.MACEngine.apply` after restoring the base arrays.
The manifest ``fingerprint`` always describes the *base* network; the
fingerprint check runs before replay, so the network handed to
``load_snapshot`` must match the snapshot's build-time state and is
then mutated forward batch by batch.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro import __version__ as _repro_version
from repro.dominance.graph import DominanceGraph
from repro.errors import ReproError, SnapshotError
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.kernels.flatgraph import FlatGraph
from repro.road.gtree import GTree
from repro.social.roadsocial import KTCore, RoadSocialNetwork
from repro.store.fingerprint import network_fingerprint

#: Bump on any incompatible change to the manifest or array layout.
FORMAT_VERSION = 1

FORMAT_NAME = "repro-index-snapshot"

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"
DELTAS_FILE = "deltas.jsonl"

#: Bump on any incompatible change to the delta-log record layout.
DELTA_VERSION = 1

_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    OSError,
    ValueError,
    EOFError,
)


# ----------------------------------------------------------------------
# small codecs
# ----------------------------------------------------------------------
def _graph_arrays(graph: AdjacencyGraph) -> tuple[np.ndarray, np.ndarray]:
    """An AdjacencyGraph as (sorted vertex ids, (m, 2) edge array)."""
    verts = np.asarray(sorted(graph.vertices()), np.int64)
    edges = np.asarray(
        sorted((u, v) if u <= v else (v, u) for u, v in graph.edges()),
        np.int64,
    ).reshape(-1, 2)
    return verts, edges


def _graph_from_arrays(
    verts: np.ndarray, edges: np.ndarray
) -> AdjacencyGraph:
    graph = AdjacencyGraph()
    for v in verts.tolist():
        graph.add_vertex(v)
    for u, v in edges.tolist():
        graph.add_edge(u, v)
    return graph


def _filter_key_json(key: tuple) -> dict:
    query, t, backend = key
    return {"query": list(query), "t": t, "backend": backend}


def _filter_key_from_json(entry: dict) -> tuple:
    return (
        tuple(int(v) for v in entry["query"]),
        float(entry["t"]),
        str(entry["backend"]),
    )


def _core_key_json(key: tuple) -> dict:
    query, k, t, backend = key
    return {"query": list(query), "k": k, "t": t, "backend": backend}


def _core_key_from_json(entry: dict) -> tuple:
    return (
        tuple(int(v) for v in entry["query"]),
        int(entry["k"]),
        float(entry["t"]),
        str(entry["backend"]),
    )


def _dominance_key_json(key: tuple) -> dict:
    query, k, t, region, backend = key
    return {
        "query": list(query),
        "k": k,
        "t": t,
        "region": [list(region[0]), list(region[1])],
        "backend": backend,
    }


def _dominance_key_from_json(entry: dict) -> tuple:
    lows, highs = entry["region"]
    return (
        tuple(int(v) for v in entry["query"]),
        int(entry["k"]),
        float(entry["t"]),
        (
            tuple(float(x) for x in lows),
            tuple(float(x) for x in highs),
        ),
        str(entry["backend"]),
    )


def _array_sha256(arr: np.ndarray) -> str:
    """Content hash of one array: dtype + shape + C-contiguous bytes.

    Hashing the logical content (not the on-disk encoding) keeps the
    checksum stable across compressed/uncompressed saves and across
    numpy serialization details.
    """
    digest = hashlib.sha256()
    digest.update(arr.dtype.str.encode())
    digest.update(repr(tuple(arr.shape)).encode())
    digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_snapshot(engine, path, *, compress: bool = True) -> dict:
    """Serialize an engine's prepared state under directory ``path``.

    Crash-safe in both directions: any existing manifest is removed
    first (instantly invalidating the old snapshot), both files are
    written to temporary names and renamed into place, and the manifest
    lands last — so a crash mid-save leaves a snapshot that fails to
    load (no manifest), never one pairing an old manifest with new
    arrays.  Returns the manifest dict.

    ``compress=False`` stores the arrays uncompressed, which makes the
    snapshot memory-mappable: ``load_snapshot(..., mmap=True)`` then
    opens the big payloads as shared read-only pages instead of copying
    them per process (the worker tier's memory-sharing substrate).
    """
    network: RoadSocialNetwork = engine.network
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise SnapshotError(f"snapshot path {path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    components: dict[str, Any] = {}

    road_flat = network.road._flat
    if road_flat is not None:
        for name, arr in road_flat.to_arrays().items():
            arrays[f"road_flat.{name}"] = arr
        components["road_flat"] = {
            "vertices": road_flat.n,
            "edges": road_flat.num_edges,
            "weighted": road_flat.weights is not None,
        }

    if network.has_gtree:
        gtree = network.gtree
        for name, arr in gtree.to_state().items():
            arrays[f"gtree.{name}"] = arr
        components["gtree"] = {
            "leaf_size": gtree.leaf_size,
            "backend": gtree.backend,
            "nodes": gtree.num_nodes,
            "leaves": gtree.num_leaves,
        }

    filter_entries = []
    for i, (key, prep) in enumerate(engine._filter_cache.items()):
        ids = sorted(prep.query_distance)
        arrays[f"filter.{i}.ids"] = np.asarray(ids, np.int64)
        arrays[f"filter.{i}.dist"] = np.asarray(
            [prep.query_distance[v] for v in ids], np.float64
        )
        arrays[f"filter.{i}.coreness"] = np.asarray(
            [prep.coreness[v] for v in ids], np.int64
        )
        _verts, edges = _graph_arrays(prep.filtered)
        arrays[f"filter.{i}.edges"] = edges
        entry = _filter_key_json(key)
        entry["vertices"] = len(ids)
        entry["has_flat"] = prep.flat is not None
        if prep.flat is not None:
            flat = prep.flat.to_arrays()
            arrays[f"filter.{i}.flat_indptr"] = flat["indptr"]
            arrays[f"filter.{i}.flat_indices"] = flat["indices"]
        filter_entries.append(entry)
    components["filter"] = filter_entries

    core_entries = []
    for i, (key, state) in enumerate(engine._core_cache.items()):
        entry = _core_key_json(key)
        entry["feasible"] = state.core is not None
        if state.core is not None:
            verts, edges = _graph_arrays(state.core.graph)
            arrays[f"core.{i}.vertices"] = verts
            arrays[f"core.{i}.edges"] = edges
            arrays[f"core.{i}.dist"] = np.asarray(
                [state.core.query_distance[v] for v in verts.tolist()],
                np.float64,
            )
            entry["vertices"] = int(verts.size)
        core_entries.append(entry)
    components["core"] = core_entries

    dominance_entries = []
    for i, (key, gd) in enumerate(engine._gd_cache.items()):
        order = gd.order
        pos = {v: j for j, v in enumerate(order)}
        parent_ptr = np.zeros(len(order) + 1, np.int64)
        parent_flat: list[int] = []
        for j, v in enumerate(order):
            parent_flat.extend(pos[p] for p in gd.parents[v])
            parent_ptr[j + 1] = len(parent_flat)
        arrays[f"dominance.{i}.order"] = np.asarray(order, np.int64)
        arrays[f"dominance.{i}.parent_ptr"] = parent_ptr
        arrays[f"dominance.{i}.parent_flat"] = np.asarray(
            parent_flat, np.int64
        )
        entry = _dominance_key_json(key)
        entry["vertices"] = gd.num_vertices
        entry["arcs"] = gd.num_arcs()
        entry["dg_backend"] = gd.backend
        dominance_entries.append(entry)
    components["dominance"] = dominance_entries

    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "repro_version": _repro_version,
        "numpy_version": np.__version__,
        "fingerprint": network_fingerprint(network),
        "compressed": bool(compress),
        "backend": engine._default_backend,
        "engine": {
            "default_use_gtree": engine._default_use_gtree,
            "default_backend": engine._default_backend,
            "gtree_leaf_size": engine.gtree_leaf_size,
            "auto_local_threshold": engine.auto_local_threshold,
            "filter_cache_size": engine._filter_cache.capacity,
            "core_cache_size": engine._core_cache.capacity,
            "dominance_cache_size": engine._gd_cache.capacity,
            "result_cache_size": (
                engine._result_cache.capacity
                if engine._result_cache is not None
                else 0
            ),
        },
        "network": {
            "road_vertices": network.road.num_vertices,
            "road_edges": network.road.num_edges,
            "social_users": network.social.num_users,
            "social_edges": network.social.num_edges,
            "dimensions": network.social.dimensionality,
        },
        "components": components,
        # Per-array content hashes for `repro index verify --deep`.
        # Additive: snapshots without this table (older saves) still
        # load and shallow-verify; deep verification just reports zero
        # checksums checked.
        "checksums": {key: _array_sha256(arr) for key, arr in arrays.items()},
    }

    manifest_path = path / MANIFEST_FILE
    manifest_path.unlink(missing_ok=True)
    # The tmp name must keep the .npz suffix (savez appends it otherwise).
    arrays_tmp = path / ("tmp-" + ARRAYS_FILE)
    if compress:
        np.savez_compressed(arrays_tmp, **arrays)
    else:
        np.savez(arrays_tmp, **arrays)
    arrays_tmp.replace(path / ARRAYS_FILE)
    manifest_tmp = path / (MANIFEST_FILE + ".tmp")
    manifest_tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    manifest_tmp.replace(manifest_path)
    return manifest


# ----------------------------------------------------------------------
# read-side helpers
# ----------------------------------------------------------------------
def read_manifest(path) -> dict:
    """Parse and structurally validate a snapshot manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not path.is_dir() or not manifest_path.is_file():
        raise SnapshotError(
            f"{path} is not an index snapshot (no {MANIFEST_FILE})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"unreadable snapshot manifest {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise SnapshotError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION}); rebuild the "
            f"snapshot with `python -m repro.cli index build`"
        )
    if "components" not in manifest or "fingerprint" not in manifest:
        raise SnapshotError(f"snapshot manifest {manifest_path} is incomplete")
    return manifest


def snapshot_digest(path) -> str:
    """Content digest (sha256 hex) of a snapshot's manifest.

    The network ``fingerprint`` identifies the *dataset*: two snapshots
    built from the same network — say, rebuilt with different warmed
    stages — share it.  The manifest digest identifies the *index
    build* (components, warmed cache keys, versions, build metadata),
    so the zero-downtime reload path can report an observable identity
    flip even when a live swap lands on the same dataset.
    """
    path = Path(path)
    read_manifest(path)  # validate before digesting
    return hashlib.sha256((path / MANIFEST_FILE).read_bytes()).hexdigest()


# ----------------------------------------------------------------------
# delta log
# ----------------------------------------------------------------------
def read_deltas(path) -> list[dict]:
    """Parse a snapshot's delta log into a list of batch records.

    Each record is ``{"delta_version": 1, "seq": n, "mutations": [...]}``
    with ``seq`` running 1..N without gaps — the sequence number of the
    batch doubles as the engine ``delta_seq`` after replaying it.  A
    missing log is an empty list (every base snapshot starts at depth
    0); a malformed line, version mismatch, or sequence gap raises
    :class:`SnapshotError` — a half-understood log must never be
    half-replayed.
    """
    path = Path(path)
    log = path / DELTAS_FILE
    if not log.is_file():
        return []
    try:
        lines = log.read_text().splitlines()
    except OSError as exc:
        raise SnapshotError(f"unreadable delta log {log}: {exc}") from exc
    batches: list[dict] = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"corrupted delta log {log} line {lineno}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise SnapshotError(
                f"delta log {log} line {lineno} is not a batch record"
            )
        version = record.get("delta_version")
        if version != DELTA_VERSION:
            raise SnapshotError(
                f"delta log {log} line {lineno} has version {version!r} "
                f"(this build reads version {DELTA_VERSION})"
            )
        mutations = record.get("mutations")
        if not isinstance(mutations, list) or not mutations:
            raise SnapshotError(
                f"delta log {log} line {lineno} has no mutations"
            )
        expected = len(batches) + 1
        if record.get("seq") != expected:
            raise SnapshotError(
                f"delta log {log} line {lineno}: expected seq {expected}, "
                f"got {record.get('seq')!r} (the log is append-only and "
                f"gap-free)"
            )
        batches.append(record)
    return batches


def append_delta(path, mutations) -> int:
    """Append one mutation batch to a snapshot's delta log.

    ``mutations`` is a :mod:`repro.live` batch (typed mutations or wire
    dicts); it is normalized to wire form before writing, so a log line
    is always replayable without the originating process.  Returns the
    batch's sequence number (= the delta depth after the append).  The
    caller is responsible for only appending batches that actually
    applied cleanly to the snapshot's engine — the log records history,
    it does not validate against a network.
    """
    from repro.live.mutations import mutation_to_wire, normalize_batch

    path = Path(path)
    read_manifest(path)  # only ever log against a real snapshot
    wire = [mutation_to_wire(m) for m in normalize_batch(mutations)]
    seq = len(read_deltas(path)) + 1
    record = {"delta_version": DELTA_VERSION, "seq": seq, "mutations": wire}
    with open(path / DELTAS_FILE, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, separators=(",", ":")) + "\n")
    return seq


class _MmapArchive:
    """Read-only ``.npz`` view that memory-maps uncompressed members.

    ``np.load(mmap_mode=...)`` silently ignores the mmap request for
    zipped archives, so this opens the zip by hand: a member stored
    uncompressed (``save_snapshot(compress=False)``) comes back as a
    read-only ``np.memmap`` into the archive file — demand-paged
    physical memory the kernel shares across every process mapping the
    same snapshot — while a deflated member falls back to a normal
    in-memory read.  ``mapped`` counts how many lookups actually
    mapped, so callers can tell whether sharing is in effect.
    """

    def __init__(self, path: Path) -> None:
        self._path = Path(path)
        self._zf = zipfile.ZipFile(self._path)
        self.files = [
            name[:-4]
            for name in self._zf.namelist()
            if name.endswith(".npy")
        ]
        self.mapped = 0

    def __getitem__(self, key: str) -> np.ndarray:
        name = key + ".npy"
        try:
            info = self._zf.getinfo(name)
        except KeyError:
            raise KeyError(key) from None
        if info.compress_type == zipfile.ZIP_STORED:
            array = self._map_member(info)
            if array is not None:
                self.mapped += 1
                return array
        with self._zf.open(name) as member:
            return np.lib.format.read_array(member)

    def _map_member(self, info: zipfile.ZipInfo) -> np.ndarray | None:
        # ``header_offset`` points at the member's *local* file header,
        # whose name/extra fields may differ in length from the central
        # directory's copy — the payload offset must come from it.
        with open(self._path, "rb") as f:
            f.seek(info.header_offset)
            local = f.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                return None
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            data_offset = info.header_offset + 30 + name_len + extra_len
        readers = {
            (1, 0): np.lib.format.read_array_header_1_0,
            (2, 0): np.lib.format.read_array_header_2_0,
        }
        try:
            with self._zf.open(info.filename) as member:
                version = np.lib.format.read_magic(member)
                read_header = readers.get(tuple(version))
                if read_header is None:
                    return None  # unknown .npy version: take the copy path
                shape, fortran, dtype = read_header(member)
                npy_header = member.tell()
        except Exception:
            return None  # unreadable .npy header: take the copy path
        if dtype.hasobject or any(s == 0 for s in shape):
            return None  # not mappable (pickled objects / zero bytes)
        return np.memmap(
            self._path,
            dtype=dtype,
            mode="r",
            offset=data_offset + npy_header,
            shape=shape,
            order="F" if fortran else "C",
        )

    def close(self) -> None:
        self._zf.close()

    def __enter__(self) -> _MmapArchive:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _open_arrays(path: Path, mmap: bool = False):
    arrays_path = path / ARRAYS_FILE
    if not arrays_path.is_file():
        raise SnapshotError(f"snapshot is missing {arrays_path}")
    try:
        if mmap:
            return _MmapArchive(arrays_path)
        return np.load(arrays_path)
    except _CORRUPTION_ERRORS as exc:
        raise SnapshotError(
            f"corrupted snapshot archive {arrays_path}: {exc}"
        ) from exc


def _get(npz, key: str) -> np.ndarray:
    try:
        return npz[key]
    except KeyError:
        raise SnapshotError(
            f"snapshot archive is missing array {key!r}"
        ) from None
    except _CORRUPTION_ERRORS as exc:
        raise SnapshotError(
            f"corrupted snapshot array {key!r}: {exc}"
        ) from exc


def _expected_keys(manifest: dict) -> list[str]:
    """Every array key the manifest promises the archive contains."""
    comp = manifest["components"]
    keys: list[str] = []
    if "road_flat" in comp:
        keys += ["road_flat.indptr", "road_flat.indices", "road_flat.ids"]
        if comp["road_flat"].get("weighted"):
            keys.append("road_flat.weights")
    if "gtree" in comp:
        keys += [
            f"gtree.{name}"
            for name in (
                "parent", "is_leaf", "vert_ptr", "vert_flat",
                "border_ptr", "border_flat", "mat_ptr", "mat_src",
                "mat_dst", "mat_w",
            )
        ]
    for i, entry in enumerate(comp.get("filter", [])):
        keys += [
            f"filter.{i}.ids", f"filter.{i}.dist",
            f"filter.{i}.coreness", f"filter.{i}.edges",
        ]
        if entry.get("has_flat"):
            keys += [f"filter.{i}.flat_indptr", f"filter.{i}.flat_indices"]
    for i, entry in enumerate(comp.get("core", [])):
        if entry.get("feasible"):
            keys += [
                f"core.{i}.vertices", f"core.{i}.edges", f"core.{i}.dist",
            ]
    for i in range(len(comp.get("dominance", []))):
        keys += [
            f"dominance.{i}.order", f"dominance.{i}.parent_ptr",
            f"dominance.{i}.parent_flat",
        ]
    return keys


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def load_snapshot(path, network: RoadSocialNetwork, *, mmap=False, **overrides):
    """Reconstruct a warm :class:`~repro.engine.MACEngine` from ``path``.

    ``network`` must be content-identical to the network the snapshot
    was built from (checked via :func:`network_fingerprint`; mismatch
    raises :class:`SnapshotError`).  Engine construction knobs are
    restored from the manifest; ``overrides`` (any ``MACEngine``
    keyword) win over the recorded values.

    If the snapshot carries a delta log (``deltas.jsonl``, see
    :func:`append_delta`), every logged batch is replayed through
    :meth:`~repro.engine.MACEngine.apply` after the base restore: the
    network is fast-forwarded in place and the engine comes back with
    ``delta_seq`` equal to the log depth.  A batch that no longer
    applies cleanly raises :class:`SnapshotError` naming the failing
    sequence number.

    After the restore every snapshotted pipeline stage is a cache hit:
    the first query builds no filter, core, or dominance state, which
    ``telemetry().stage_seconds`` and the per-result ``timings`` report
    as exact zeros.

    With ``mmap=True``, arrays stored uncompressed (``save_snapshot``
    with ``compress=False``) are opened as read-only ``np.memmap``
    views instead of copies, so the CSR payloads (road/filter flat
    graphs) stay file-backed and page-shared across processes.  State
    rebuilt into Python objects (G-tree node maps, coreness dicts,
    dominance DAGs) is materialized either way — the worker tier shares
    those via fork copy-on-write.  Compressed members silently fall
    back to a normal read.
    """
    from repro.engine.engine import (
        MACEngine,
        _PreparedCore,
        _PreparedFilter,
    )

    path = Path(path)
    manifest = read_manifest(path)
    fingerprint = network_fingerprint(network)
    if fingerprint != manifest["fingerprint"]:
        raise SnapshotError(
            f"snapshot {path} was built for a different network "
            f"(fingerprint {manifest['fingerprint'][:23]}..., "
            f"supplied network is {fingerprint[:23]}...); rebuild the "
            f"snapshot or load the matching dataset"
        )

    cfg = manifest.get("engine", {})
    kwargs: dict[str, Any] = {
        "use_gtree": cfg.get("default_use_gtree", "auto"),
        "backend": cfg.get("default_backend", "auto"),
        "gtree_leaf_size": cfg.get("gtree_leaf_size", 64),
        "auto_local_threshold": cfg.get("auto_local_threshold", 256),
        "filter_cache_size": cfg.get("filter_cache_size", 128),
        "core_cache_size": cfg.get("core_cache_size", 128),
        "dominance_cache_size": cfg.get("dominance_cache_size", 64),
        "result_cache_size": cfg.get("result_cache_size", 256),
    }
    kwargs.update(overrides)

    comp = manifest["components"]
    with _open_arrays(path, mmap=bool(mmap)) as npz:
        if "road_flat" in comp:
            network.road._flat = FlatGraph.from_arrays(
                _get(npz, "road_flat.indptr"),
                _get(npz, "road_flat.indices"),
                _get(npz, "road_flat.ids"),
                (
                    _get(npz, "road_flat.weights")
                    if comp["road_flat"].get("weighted")
                    else None
                ),
            )

        if "gtree" in comp and not network.has_gtree:
            meta = comp["gtree"]
            state = {
                name: _get(npz, f"gtree.{name}")
                for name in (
                    "parent", "is_leaf", "vert_ptr", "vert_flat",
                    "border_ptr", "border_flat", "mat_ptr", "mat_src",
                    "mat_dst", "mat_w",
                )
            }
            network._gtree = GTree.from_state(
                network.road,
                state,
                leaf_size=int(meta["leaf_size"]),
                backend=str(meta["backend"]),
            )

        engine = MACEngine(network, **kwargs)

        for i, entry in enumerate(comp.get("filter", [])):
            key = _filter_key_from_json(entry)
            ids = _get(npz, f"filter.{i}.ids")
            dist = _get(npz, f"filter.{i}.dist")
            core_arr = _get(npz, f"filter.{i}.coreness")
            filtered = _graph_from_arrays(ids, _get(npz, f"filter.{i}.edges"))
            query_distance = dict(zip(ids.tolist(), dist.tolist()))
            coreness = dict(zip(ids.tolist(), core_arr.tolist()))
            flat = core_rows = None
            if entry.get("has_flat"):
                flat = FlatGraph.from_arrays(
                    _get(npz, f"filter.{i}.flat_indptr"),
                    _get(npz, f"filter.{i}.flat_indices"),
                    ids,
                )
                core_rows = core_arr.astype(np.int64, copy=False)
            engine._filter_cache.put(key, _PreparedFilter(
                query_distance=query_distance,
                filtered=filtered,
                coreness=coreness,
                max_coreness=max(coreness.values(), default=0),
                flat=flat,
                core_rows=core_rows,
            ))

        for i, entry in enumerate(comp.get("core", [])):
            key = _core_key_from_json(entry)
            if not entry.get("feasible"):
                engine._core_cache.put(key, _PreparedCore(None, None))
                continue
            verts = _get(npz, f"core.{i}.vertices")
            graph = _graph_from_arrays(verts, _get(npz, f"core.{i}.edges"))
            dist = _get(npz, f"core.{i}.dist")
            core = KTCore(
                graph=graph,
                query_distance=dict(zip(verts.tolist(), dist.tolist())),
            )
            attrs = network.social.attributes_for(verts.tolist())
            engine._core_cache.put(key, _PreparedCore(core, attrs))

        for i, entry in enumerate(comp.get("dominance", [])):
            key = _dominance_key_from_json(entry)
            order = _get(npz, f"dominance.{i}.order").tolist()
            ptr = _get(npz, f"dominance.{i}.parent_ptr").tolist()
            flat_pos = _get(npz, f"dominance.{i}.parent_flat").tolist()
            parents = {
                v: tuple(order[p] for p in flat_pos[ptr[j]:ptr[j + 1]])
                for j, v in enumerate(order)
            }
            lows, highs = key[3]
            gd = DominanceGraph.from_hasse(
                network.social.attributes_for(order),
                PreferenceRegion(lows, highs),
                order,
                parents,
                backend=entry.get("dg_backend", "auto"),
            )
            engine._gd_cache.put(key, gd)

    for batch in read_deltas(path):
        try:
            engine.apply(batch["mutations"])
        except ReproError as exc:
            raise SnapshotError(
                f"snapshot {path} delta replay failed at seq "
                f"{batch['seq']}: {exc}"
            ) from exc
    return engine


# ----------------------------------------------------------------------
# info / verify
# ----------------------------------------------------------------------
def snapshot_info(path) -> dict:
    """Manifest plus on-disk sizes, without decompressing any arrays."""
    path = Path(path)
    manifest = read_manifest(path)
    files = {}
    for name in (MANIFEST_FILE, ARRAYS_FILE, DELTAS_FILE):
        f = path / name
        if f.is_file():
            files[name] = f.stat().st_size
    comp = manifest["components"]
    return {
        "path": str(path),
        "manifest": manifest,
        "files": files,
        "entry_counts": {
            "filter": len(comp.get("filter", [])),
            "core": len(comp.get("core", [])),
            "dominance": len(comp.get("dominance", [])),
        },
        "has_gtree": "gtree" in comp,
        "has_road_flat": "road_flat" in comp,
        "delta_depth": len(read_deltas(path)),
    }


def verify_snapshot(
    path, network: RoadSocialNetwork | None = None, *, deep: bool = False
) -> dict:
    """Fully check a snapshot's integrity; raise ``SnapshotError`` if bad.

    Reads the manifest (format + version checks), decompresses every
    array the manifest promises (catching truncation/corruption), and —
    when ``network`` is given — verifies the dataset fingerprint.  With
    ``deep=True``, additionally recomputes every array's sha256 content
    hash against the manifest's ``checksums`` table, catching silent
    bit-flips that still decompress cleanly; snapshots saved before the
    table existed pass deep verification with ``checksums_checked: 0``.
    Returns the :func:`snapshot_info` dict augmented with the number of
    arrays (and checksums) checked.
    """
    path = Path(path)
    info = snapshot_info(path)
    manifest = info["manifest"]
    expected = _expected_keys(manifest)
    checksums = manifest.get("checksums") if deep else None
    checksums_checked = 0
    with _open_arrays(path) as npz:
        present = set(npz.files)
        for key in expected:
            if key not in present:
                raise SnapshotError(
                    f"snapshot archive is missing array {key!r}"
                )
            arr = _get(npz, key)  # decompress: surfaces truncated members
            if checksums and key in checksums:
                actual = _array_sha256(np.asarray(arr))
                if actual != checksums[key]:
                    raise SnapshotError(
                        f"snapshot array {key!r} failed its content "
                        f"checksum (expected {checksums[key][:16]}..., "
                        f"got {actual[:16]}...); the archive is corrupted"
                    )
                checksums_checked += 1
    if network is not None:
        fingerprint = network_fingerprint(network)
        if fingerprint != manifest["fingerprint"]:
            raise SnapshotError(
                f"snapshot fingerprint {manifest['fingerprint'][:23]}... "
                f"does not match the supplied network "
                f"({fingerprint[:23]}...)"
            )
        info["fingerprint_checked"] = True
    else:
        info["fingerprint_checked"] = False
    info["arrays_checked"] = len(expected)
    info["deep"] = bool(deep)
    info["checksums_checked"] = checksums_checked
    return info
