"""repro: Multi-attributed Community Search in Road-social Networks.

A from-scratch reproduction of Guo et al., ICDE 2021 (arXiv:2101.09668):
the MAC community model over road-social networks, the r-dominance graph,
and the global/local top-j and non-contained MAC search algorithms —
plus every substrate they stand on (road network + G-tree, k-core /
k-truss peeling, R-tree + BBS, preference-domain geometry) and the
baselines they are evaluated against (influential and skyline community
search).

Quickstart (the stateful engine API — preferred)::

    from repro import MACEngine, MACRequest, PreferenceRegion, datasets

    net = datasets.load_dataset("sf+slashdot", scale=0.02, seed=7)
    engine = MACEngine(net.network)
    region = PreferenceRegion([0.30, 0.30], [0.36, 0.36])   # d = 3
    request = MACRequest.make(net.suggest_query(4, k=8, t=250),
                              k=8, t=250, region=region)
    result = engine.search(request)       # repeated calls reuse indexes
    for entry in result.partitions:
        print(entry.cell, sorted(entry.best.members))

One-shot free functions (``mac_search`` and the GS/LS wrappers) remain
available for scripts that run a single query; see ``ENGINE.md``.
"""

from repro.core.api import (
    MACSearchResult,
    gs_nc,
    gs_topj,
    ls_nc,
    ls_topj,
    mac_search,
)
from repro.engine import (
    EngineTelemetry,
    MACEngine,
    MACRequest,
    QueryPlan,
)
from repro.core.query import Community, MACQuery, PartitionEntry
from repro.dominance.graph import DominanceGraph
from repro.errors import (
    DatasetError,
    DeadlineExceeded,
    GeometryError,
    GraphError,
    MutationError,
    QueryError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    SnapshotError,
    WorkerCrashed,
)
from repro.geometry.preference_learning import LearnedRegion
from repro.geometry.region import PreferenceRegion
from repro.graph.adjacency import AdjacencyGraph
from repro.kernels import FlatGraph
from repro.road.network import RoadNetwork, SpatialPoint
from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

__version__ = "1.3.0"

__all__ = [
    "MACEngine",
    "MACRequest",
    "QueryPlan",
    "EngineTelemetry",
    "mac_search",
    "gs_topj",
    "gs_nc",
    "ls_topj",
    "ls_nc",
    "MACSearchResult",
    "MACQuery",
    "Community",
    "PartitionEntry",
    "PreferenceRegion",
    "LearnedRegion",
    "DominanceGraph",
    "AdjacencyGraph",
    "FlatGraph",
    "RoadNetwork",
    "SpatialPoint",
    "SocialNetwork",
    "RoadSocialNetwork",
    "ReproError",
    "GraphError",
    "QueryError",
    "GeometryError",
    "DatasetError",
    "SnapshotError",
    "MutationError",
    "DeadlineExceeded",
    "ServiceError",
    "ServiceOverloaded",
    "WorkerCrashed",
    "__version__",
]
