"""Social-network substrate: attributed users + road-social pairing."""

from repro.social.network import SocialNetwork
from repro.social.roadsocial import RoadSocialNetwork

__all__ = ["SocialNetwork", "RoadSocialNetwork"]
