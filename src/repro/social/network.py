"""Social network Gs = (Vs, Es, L, X) of Section II-A.

Users form an undirected graph; each user carries a location mapping
``L(v)`` (a :class:`SpatialPoint` on the road network) and a d-dimensional
real attribute vector ``X(v)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import core_decomposition
from repro.road.network import SpatialPoint


class SocialNetwork:
    """Attributed, located social graph.

    Parameters
    ----------
    graph:
        Friendship structure (vertices are user ids).
    attributes:
        ``user -> d-dimensional numpy vector``; all users must share d.
    locations:
        ``user -> SpatialPoint`` on the paired road network.  Optional at
        construction (attach later with :meth:`set_location`), but required
        by road-social queries.
    """

    def __init__(
        self,
        graph: AdjacencyGraph,
        attributes: Mapping[int, np.ndarray],
        locations: Mapping[int, SpatialPoint] | None = None,
    ) -> None:
        self.graph = graph
        self.attributes: dict[int, np.ndarray] = {}
        dim: int | None = None
        for v in graph.vertices():
            if v not in attributes:
                raise GraphError(f"user {v!r} has no attribute vector")
            x = np.asarray(attributes[v], dtype=float)
            if x.ndim != 1:
                raise GraphError(f"user {v!r} attributes must be a vector")
            if dim is None:
                dim = x.shape[0]
            elif x.shape[0] != dim:
                raise GraphError(
                    f"user {v!r} has {x.shape[0]} attributes, expected {dim}"
                )
            self.attributes[v] = x
        self._dim = dim or 0
        self.locations: dict[int, SpatialPoint] = {}
        if locations:
            for v, p in locations.items():
                if v in self.attributes:
                    self.locations[v] = p

    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def dimensionality(self) -> int:
        """d: number of numerical attributes per user."""
        return self._dim

    def location(self, v: int) -> SpatialPoint:
        try:
            return self.locations[v]
        except KeyError:
            raise GraphError(f"user {v!r} has no location") from None

    def set_location(self, v: int, p: SpatialPoint) -> None:
        if v not in self.attributes:
            raise GraphError(f"user {v!r} not in network")
        self.locations[v] = p

    def attribute(self, v: int) -> np.ndarray:
        try:
            return self.attributes[v]
        except KeyError:
            raise GraphError(f"user {v!r} not in network") from None

    def set_attributes(self, v: int, x) -> None:
        """Replace ``v``'s attribute vector (dimensionality-checked)."""
        if v not in self.attributes:
            raise GraphError(f"user {v!r} not in network")
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self._dim,):
            raise GraphError(
                f"user {v!r} attributes must have shape ({self._dim},), "
                f"got {arr.shape}"
            )
        self.attributes[v] = arr

    def attributes_for(self, users: Iterable[int]) -> dict[int, np.ndarray]:
        return {v: self.attribute(v) for v in users}

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, float]:
        """Table-II style summary: |V|, |E|, dg_avg, dg_max, k_max."""
        core = core_decomposition(self.graph)
        return {
            "vertices": self.num_users,
            "edges": self.num_edges,
            "dg_avg": round(self.graph.average_degree(), 2),
            "dg_max": self.graph.max_degree(),
            "k_max": max(core.values(), default=0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SocialNetwork(|V|={self.num_users}, |E|={self.num_edges},"
            f" d={self._dim})"
        )
