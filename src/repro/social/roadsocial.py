"""Road-social network pairing (Gr, Gs) and the maximal (k,t)-core.

Implements the Section-III warm-up pipeline (Lemmas 1-3):

1. range-filter the users whose query distance ``D_Q`` exceeds ``t``
   (t-bounded Dijkstra per query location, or a G-tree);
2. reject early when ``k`` exceeds the coreness upper bound of [2];
3. core-decompose the filtered social subgraph and keep the maximal
   connected k-core containing Q — the maximal (k,t)-core ``H^t_k``.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import core_decomposition, coreness_upper_bound
from repro.road.dijkstra import bounded_dijkstra
from repro.road.gtree import GTree
from repro.road.network import RoadNetwork, SpatialPoint
from repro.social.network import SocialNetwork

INF = math.inf


@dataclass
class KTCore:
    """The maximal (k,t)-core H^t_k plus the query-distance map."""

    graph: AdjacencyGraph
    query_distance: dict[int, float] = field(default_factory=dict)

    @property
    def vertices(self) -> set[int]:
        return set(self.graph.vertices())

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


def kt_core_from_coreness(
    filtered: AdjacencyGraph,
    coreness: dict[int, int],
    query_distance: dict[int, float],
    query: Iterable[int],
    k: int,
) -> KTCore | None:
    """Extract H^t_k from a t-filtered subgraph and its coreness array.

    The single Lemma-2/3 implementation shared by the legacy
    :meth:`RoadSocialNetwork.maximal_kt_core` path and the
    :class:`~repro.engine.MACEngine` (which caches ``filtered`` and
    ``coreness`` per (Q, t) and calls this once per k).  The k-core is
    exactly the subgraph on vertices with coreness >= k; H^t_k is its
    connected component containing all of Q, or None when Q is filtered
    out or split across components.
    """
    q_list = list(query)
    if any(q not in query_distance for q in q_list):
        return None
    keep = [v for v, c in coreness.items() if c >= k]
    sub = filtered.subgraph(keep)
    if any(q not in sub for q in q_list):
        return None
    component = sub.component_of(q_list[0])
    if not all(q in component for q in q_list):
        return None
    graph = sub.subgraph(component)
    return KTCore(
        graph=graph,
        query_distance={v: query_distance[v] for v in graph.vertices()},
    )


def _point_distance(
    road: RoadNetwork,
    dmap: dict[int, float],
    source: SpatialPoint,
    target: SpatialPoint,
) -> float:
    """Distance to ``target`` given vertex distances ``dmap`` from source."""
    if target.on_vertex:
        best = dmap.get(target.u, INF)
    else:
        length = road.weight(target.u, target.v)
        best = min(
            dmap.get(target.u, INF) + target.offset,
            dmap.get(target.v, INF) + (length - target.offset),
        )
    if (
        not source.on_vertex
        and not target.on_vertex
        and {source.u, source.v} == {target.u, target.v}
    ):
        off_t = (
            target.offset
            if source.u == target.u
            else road.weight(source.u, source.v) - target.offset
        )
        best = min(best, abs(source.offset - off_t))
    return best


class RoadSocialNetwork:
    """A paired road and social network, the query substrate of the paper."""

    def __init__(self, road: RoadNetwork, social: SocialNetwork) -> None:
        self.road = road
        self.social = social
        self._gtree: GTree | None = None
        self._gtree_lock = threading.Lock()

    # ------------------------------------------------------------------
    def build_gtree(
        self, leaf_size: int = 64, backend: str = "auto"
    ) -> GTree:
        """Build (and cache) the G-tree range-query accelerator.

        Thread-safe and idempotent: concurrent callers (e.g. engine
        batch workers) share one build; ``leaf_size`` and ``backend``
        (matrix-assembly kernels, see :class:`~repro.road.gtree.GTree`)
        only apply to the first construction.
        """
        if self._gtree is None:
            with self._gtree_lock:
                if self._gtree is None:
                    self._gtree = GTree(
                        self.road, leaf_size=leaf_size, backend=backend
                    )
        return self._gtree

    @property
    def gtree(self) -> GTree:
        """The shared G-tree, built on first access (cached property).

        Every consumer — the legacy ``use_gtree=True`` free functions
        and the :class:`~repro.engine.MACEngine` — goes through this one
        instance, so the index is never rebuilt per call.  Use
        :attr:`has_gtree` to test for the index without triggering a
        build.
        """
        return self.build_gtree()

    @property
    def has_gtree(self) -> bool:
        """Whether the G-tree has been built (never triggers a build)."""
        return self._gtree is not None

    def drop_gtree(self) -> None:
        """Discard the cached G-tree (road weights changed; rebuild lazily)."""
        with self._gtree_lock:
            self._gtree = None

    # ------------------------------------------------------------------
    def query_distance_filter(
        self,
        query: Iterable[int],
        t: float,
        use_gtree: bool = False,
        backend: str = "auto",
    ) -> dict[int, float]:
        """Users v with ``D_Q(v) <= t`` mapped to ``D_Q(v)`` (Lemma 1)."""
        q_list = list(query)
        if not q_list:
            raise QueryError("query user set must be non-empty")
        for q in q_list:
            if q not in self.social.graph:
                raise QueryError(f"query user {q!r} not in social network")
        q_points = [self.social.location(q) for q in q_list]
        gtree = self.build_gtree(backend=backend) if use_gtree else None
        dmaps: list[tuple[SpatialPoint, dict[int, float]]] = []
        for p in q_points:
            if gtree is not None:
                dmap = gtree.range_query(p, t)
            else:
                dmap = bounded_dijkstra(self.road, p, t, backend=backend)
            dmaps.append((p, dmap))
        kept: dict[int, float] = {}
        for v in self.social.graph.vertices():
            loc = self.social.locations.get(v)
            if loc is None:
                continue
            worst = 0.0
            for p, dmap in dmaps:
                d = _point_distance(self.road, dmap, p, loc)
                if d > t:
                    worst = INF
                    break
                worst = max(worst, d)
            if worst <= t:
                kept[v] = worst
        return kept

    def maximal_kt_core(
        self,
        query: Iterable[int],
        k: int,
        t: float,
        use_gtree: bool = False,
        backend: str = "auto",
    ) -> KTCore | None:
        """The maximal (k,t)-core H^t_k for Q, or None when it is empty."""
        q_list = list(query)
        if k < 0:
            raise QueryError(f"k must be non-negative, got {k}")
        if t < 0:
            raise QueryError(f"t must be non-negative, got {t}")
        dq = self.query_distance_filter(
            q_list, t, use_gtree=use_gtree, backend=backend
        )
        if any(q not in dq for q in q_list):
            return None
        filtered = self.social.graph.subgraph(dq)
        bound = coreness_upper_bound(
            filtered.num_vertices, filtered.num_edges
        )
        if k > bound:
            return None
        coreness = core_decomposition(filtered, backend=backend)
        return kt_core_from_coreness(filtered, coreness, dq, q_list, k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoadSocialNetwork({self.road!r}, {self.social!r})"
