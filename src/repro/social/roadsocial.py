"""Road-social network pairing (Gr, Gs) and the maximal (k,t)-core.

Implements the Section-III warm-up pipeline (Lemmas 1-3):

1. range-filter the users whose query distance ``D_Q`` exceeds ``t``
   (t-bounded Dijkstra per query location, or a G-tree);
2. reject early when ``k`` exceeds the coreness upper bound of [2];
3. core-decompose the filtered social subgraph and keep the maximal
   connected k-core containing Q — the maximal (k,t)-core ``H^t_k``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.core import coreness_upper_bound, k_core_containing
from repro.road.dijkstra import bounded_dijkstra
from repro.road.gtree import GTree
from repro.road.network import RoadNetwork, SpatialPoint
from repro.social.network import SocialNetwork

INF = math.inf


@dataclass
class KTCore:
    """The maximal (k,t)-core H^t_k plus the query-distance map."""

    graph: AdjacencyGraph
    query_distance: dict[int, float] = field(default_factory=dict)

    @property
    def vertices(self) -> set[int]:
        return set(self.graph.vertices())

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


def _point_distance(
    road: RoadNetwork,
    dmap: dict[int, float],
    source: SpatialPoint,
    target: SpatialPoint,
) -> float:
    """Distance to ``target`` given vertex distances ``dmap`` from source."""
    if target.on_vertex:
        best = dmap.get(target.u, INF)
    else:
        length = road.weight(target.u, target.v)
        best = min(
            dmap.get(target.u, INF) + target.offset,
            dmap.get(target.v, INF) + (length - target.offset),
        )
    if (
        not source.on_vertex
        and not target.on_vertex
        and {source.u, source.v} == {target.u, target.v}
    ):
        off_t = (
            target.offset
            if source.u == target.u
            else road.weight(source.u, source.v) - target.offset
        )
        best = min(best, abs(source.offset - off_t))
    return best


class RoadSocialNetwork:
    """A paired road and social network, the query substrate of the paper."""

    def __init__(self, road: RoadNetwork, social: SocialNetwork) -> None:
        self.road = road
        self.social = social
        self._gtree: GTree | None = None

    # ------------------------------------------------------------------
    def build_gtree(self, leaf_size: int = 64) -> GTree:
        """Build (and cache) the G-tree range-query accelerator."""
        if self._gtree is None:
            self._gtree = GTree(self.road, leaf_size=leaf_size)
        return self._gtree

    @property
    def gtree(self) -> GTree | None:
        return self._gtree

    # ------------------------------------------------------------------
    def query_distance_filter(
        self,
        query: Iterable[int],
        t: float,
        use_gtree: bool = False,
    ) -> dict[int, float]:
        """Users v with ``D_Q(v) <= t`` mapped to ``D_Q(v)`` (Lemma 1)."""
        q_list = list(query)
        if not q_list:
            raise QueryError("query user set must be non-empty")
        for q in q_list:
            if q not in self.social.graph:
                raise QueryError(f"query user {q!r} not in social network")
        q_points = [self.social.location(q) for q in q_list]
        gtree = self.build_gtree() if use_gtree else None
        dmaps: list[tuple[SpatialPoint, dict[int, float]]] = []
        for p in q_points:
            if gtree is not None:
                dmap = gtree.range_query(p, t)
            else:
                dmap = bounded_dijkstra(self.road, p, t)
            dmaps.append((p, dmap))
        kept: dict[int, float] = {}
        for v in self.social.graph.vertices():
            loc = self.social.locations.get(v)
            if loc is None:
                continue
            worst = 0.0
            for p, dmap in dmaps:
                d = _point_distance(self.road, dmap, p, loc)
                if d > t:
                    worst = INF
                    break
                worst = max(worst, d)
            if worst <= t:
                kept[v] = worst
        return kept

    def maximal_kt_core(
        self,
        query: Iterable[int],
        k: int,
        t: float,
        use_gtree: bool = False,
    ) -> KTCore | None:
        """The maximal (k,t)-core H^t_k for Q, or None when it is empty."""
        q_list = list(query)
        if k < 0:
            raise QueryError(f"k must be non-negative, got {k}")
        if t < 0:
            raise QueryError(f"t must be non-negative, got {t}")
        dq = self.query_distance_filter(q_list, t, use_gtree=use_gtree)
        if any(q not in dq for q in q_list):
            return None
        filtered = self.social.graph.subgraph(dq)
        bound = coreness_upper_bound(
            filtered.num_vertices, filtered.num_edges
        )
        if k > bound:
            return None
        core = k_core_containing(filtered, q_list, k)
        if core is None:
            return None
        return KTCore(
            graph=core,
            query_distance={v: dq[v] for v in core.vertices()},
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoadSocialNetwork({self.road!r}, {self.social!r})"
