"""Incremental k-core maintenance on CSR rows (the flat backend).

The live-mutation counterpart of :func:`repro.kernels.core.core_numbers`:
instead of re-peeling the whole graph after a social edge insert/delete,
these kernels repair the per-row coreness array by a bounded traversal
around the touched endpoints.  The classic locality theorems (Li, Yu &
Mao, TKDE'14; Sariyüce et al., PVLDB'13) guarantee only vertices of
coreness exactly ``r = min(core(u), core(v))`` change, each by exactly
±1, and two prunings keep the traversal small even when the level-``r``
subcore spans most of the graph:

* **insert**: candidates are the *purecore* — coreness-``r`` vertices
  reachable from the endpoints through vertices with more than ``r``
  neighbors of coreness ``>= r`` (anything with fewer can never rise
  and screens the region behind it).  A candidate survives at ``r + 1``
  iff it keeps ``r + 1`` supporters (neighbors of coreness ``> r`` plus
  still-alive candidates) through a cascade peel.
* **delete**: no candidate region at all — support (neighbors of
  current coreness ``>= r``) is locally computable, so the drop cascade
  starts at the endpoints and touches only vertices that actually fall
  plus their immediate frontier.

The python reference implementation with identical semantics lives in
:mod:`repro.live.kcore`; both are exercised against full re-peels by the
randomized equivalence suite in ``tests/live``.

Edges are spliced into the immutable CSR by :func:`insert_edge_rows` /
:func:`delete_edge_rows`, which return a new :class:`FlatGraph` sharing
the id mapping of the old one (row numbering is untouched, so cached
per-row arrays like coreness stay aligned).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.kernels.flatgraph import FlatGraph, ragged_offsets


def _spliced(fg: FlatGraph, indptr: np.ndarray, indices: np.ndarray) -> FlatGraph:
    """A new FlatGraph over ``fg``'s ids with replaced CSR arrays."""
    out = FlatGraph(indptr, indices, fg.ids, None)
    out._ids_arr = fg._ids_arr
    out._row_of = fg._row_of
    return out


def insert_edge_rows(fg: FlatGraph, u: int, v: int) -> FlatGraph:
    """New FlatGraph with undirected edge ``(u, v)`` added (rows).

    Row numbering and the id map are preserved, so per-row companion
    arrays (coreness, masks) remain aligned with the result.
    """
    if fg.weights is not None:
        raise GraphError("insert_edge_rows expects an unweighted FlatGraph")
    if u == v:
        raise GraphError("self-loops not allowed in a FlatGraph")
    if u > v:
        u, v = v, u
    indptr = fg.indptr
    # Splice each direction at the end of its row; positions are sorted
    # (u < v), and on a tie (all rows between are empty) np.insert keeps
    # the given order, which places row u's element first.
    pu, pv = int(indptr[u + 1]), int(indptr[v + 1])
    new_indices = np.insert(fg.indices, [pu, pv], [v, u])
    new_indptr = indptr.copy()
    new_indptr[u + 1:] += 1
    new_indptr[v + 1:] += 1
    return _spliced(fg, new_indptr, new_indices)


def delete_edge_rows(fg: FlatGraph, u: int, v: int) -> FlatGraph:
    """New FlatGraph with undirected edge ``(u, v)`` removed (rows)."""
    if fg.weights is not None:
        raise GraphError("delete_edge_rows expects an unweighted FlatGraph")
    indptr, indices = fg.indptr, fg.indices
    su, eu = int(indptr[u]), int(indptr[u + 1])
    sv, ev = int(indptr[v]), int(indptr[v + 1])
    at_u = np.nonzero(indices[su:eu] == v)[0]
    at_v = np.nonzero(indices[sv:ev] == u)[0]
    if at_u.size == 0 or at_v.size == 0:
        raise GraphError(f"edge rows ({u}, {v}) not in FlatGraph")
    new_indices = np.delete(indices, [su + int(at_u[0]), sv + int(at_v[0])])
    new_indptr = indptr.copy()
    new_indptr[u + 1:] -= 1
    new_indptr[v + 1:] -= 1
    return _spliced(fg, new_indptr, new_indices)


def _candidate_mask(
    fg: FlatGraph, core: np.ndarray, roots: list[int], r: int
) -> np.ndarray:
    """Boolean mask of the insert candidates at level ``r`` from ``roots``.

    BFS restricted to vertices of coreness exactly ``r``, expanding only
    through vertices with more than ``r`` neighbors of coreness ``>= r``
    (the *purecore* pruning of Sariyüce et al.): a vertex with at most
    ``r`` such neighbors can never collect the ``r + 1`` supporters a
    rise needs, so it stays at ``r`` and screens everything behind it —
    risers always form a chain of prunable-degree-passing vertices back
    to an inserted endpoint.  On graphs whose level-``r`` subcore is
    huge (low modal coreness), this keeps the traversal near the
    actually-affected region instead of most of the graph.
    """
    in_cand = np.zeros(fg.n, bool)
    frontier = np.asarray(roots, np.int64)
    in_cand[frontier] = True
    while frontier.size:
        offsets, counts = ragged_offsets(fg.indptr, frontier)
        owner = np.repeat(np.arange(frontier.size), counts)
        nbrs = fg.indices[offsets]
        nbr_core = core[nbrs]
        mcd = np.bincount(owner[nbr_core >= r], minlength=frontier.size)
        conducting = mcd > r
        fresh = nbrs[(nbr_core == r) & conducting[owner] & ~in_cand[nbrs]]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        in_cand[frontier] = True
    return in_cand


def _writable(core: np.ndarray) -> np.ndarray:
    # Snapshot-restored coreness arrays may be read-only memory maps;
    # repair copies on first write instead of mutating the page cache.
    return core if core.flags.writeable else core.copy()


def repair_insert_rows(
    fg: FlatGraph, core: np.ndarray, u: int, v: int
) -> tuple[np.ndarray, np.ndarray]:
    """Repair ``core`` after edge ``(u, v)`` was inserted into ``fg``.

    ``fg`` must already contain the new edge.  Returns
    ``(core, changed_rows)`` where ``core`` is the repaired per-row
    coreness array (the input array mutated in place when writable) and
    ``changed_rows`` the rows whose coreness rose (by exactly one).
    """
    r = int(min(core[u], core[v]))
    roots = [w for w in (u, v) if core[w] == r]
    in_cand = _candidate_mask(fg, core, roots, r)
    cand = np.nonzero(in_cand)[0]
    # Support at level r+1: neighbors of coreness > r always count;
    # same-level neighbors count only while they are still candidates.
    alive = in_cand.copy()
    offsets, counts = ragged_offsets(fg.indptr, cand)
    owner = np.repeat(np.arange(cand.size), counts)
    nbrs = fg.indices[offsets]
    good = (core[nbrs] > r) | alive[nbrs]
    supp = np.bincount(owner[good], minlength=cand.size)
    pos = np.full(fg.n, -1, np.int64)
    pos[cand] = np.arange(cand.size)
    drop = cand[supp <= r]
    while drop.size:
        alive[drop] = False
        offsets, _ = ragged_offsets(fg.indptr, drop)
        nbrs = fg.indices[offsets]
        nbrs = nbrs[alive[nbrs]]
        lost = np.bincount(pos[nbrs], minlength=cand.size)
        newly = (supp > r) & (supp - lost <= r)
        supp -= lost
        drop = cand[newly & alive[cand]]
    changed = cand[alive[cand]]
    if changed.size:
        core = _writable(core)
        core[changed] = r + 1
    return core, changed


def repair_delete_rows(
    fg: FlatGraph, core: np.ndarray, u: int, v: int
) -> tuple[np.ndarray, np.ndarray]:
    """Repair ``core`` after edge ``(u, v)`` was deleted from ``fg``.

    ``fg`` must no longer contain the edge.  Returns
    ``(core, changed_rows)`` where ``changed_rows`` are the rows whose
    coreness fell (by exactly one).

    Support is computed lazily against the *current* core array
    (already-dropped rows count as ``r - 1``), so the cascade never
    leaves the damaged region — no subcore is materialized.
    """
    r = int(min(core[u], core[v]))
    indptr, indices = fg.indptr, fg.indices
    supp: dict[int, int] = {}
    changed: list[int] = []
    stack = [w for w in (u, v) if core[w] == r]
    while stack:
        w = stack.pop()
        if core[w] < r:
            continue
        nbrs = indices[indptr[w]:indptr[w + 1]]
        if w not in supp:
            supp[w] = int(np.count_nonzero(core[nbrs] >= r))
        if supp[w] >= r:
            continue
        if not changed:
            core = _writable(core)
        core[w] = r - 1
        changed.append(w)
        for n in nbrs[core[nbrs] == r]:
            n = int(n)
            if n in supp:
                supp[n] -= 1
                if supp[n] < r:
                    stack.append(n)
            else:
                stack.append(n)
    return core, np.asarray(changed, np.int64)
