"""Flat-array primitives for the GS/LS search hot loops.

PR 2 flattened the *index* stages (core decomposition, components,
dominance); this module flattens the *search* loops — the cascade
deletes, per-task peeling, k-ĉore probes and fixed-weight deletion
chains that GS and LS run thousands of times per query.  Everything
operates on int row arrays of a :class:`FlatGraph` with batch degree
updates (one ragged gather + ``bincount`` per cascade round), mirroring
the level-synchronous pattern of :func:`repro.kernels.core.core_numbers`.

Equivalence with the dict-based reference paths rests on two facts:

* a cascade delete (and any ``deg < k`` peel) is an order-independent
  fixpoint, so batch rounds remove exactly the set the per-vertex DFS
  removes;
* rows are assigned in ascending vertex-id order, so every ``(score,
  row)`` tie-break matches the reference ``(score, id)`` tie-break.

:func:`search_flatgraph` additionally sorts each CSR row's neighbor
list, which pins the frontier push order of the LS expand loop to the
sorted-neighbor order the python path uses — heap contents stay
bit-identical across backends.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import heapq

import numpy as np

from repro.errors import QueryError
from repro.kernels.core import component_mask
from repro.kernels.flatgraph import FlatGraph, ragged_offsets

_EMPTY = np.empty(0, np.int64)


def search_flatgraph(graph) -> FlatGraph:
    """CSR view of ``graph`` with each row's neighbors sorted by row.

    The searchers' substrate: sorted rows make neighbor iteration order
    deterministic (and identical to iterating ``sorted(neighbors(v))``
    on the dict graph), which the expand frontier's heap tie-breaking
    depends on.
    """
    fg = FlatGraph.from_adjacency(graph)
    if fg.n and fg.indices.size:
        src = np.repeat(np.arange(fg.n), np.diff(fg.indptr))
        order = np.lexsort((fg.indices, src))
        fg.indices = fg.indices[order]
    return fg


def _gather(fg: FlatGraph, rows: np.ndarray) -> np.ndarray:
    offsets, _counts = ragged_offsets(fg.indptr, rows)
    return fg.indices[offsets]


def alive_degrees(fg: FlatGraph, alive: np.ndarray) -> np.ndarray:
    """Per-row degree within the subgraph induced by the ``alive`` mask.

    Entries of dead rows are zero (and meaningless — the searchers only
    read degrees of alive rows).
    """
    if fg.indices.size == 0:
        return np.zeros(fg.n, np.int64)
    src = np.repeat(np.arange(fg.n), np.diff(fg.indptr))
    live = alive[src] & alive[fg.indices]
    return np.bincount(src[live], minlength=fg.n)


def cascade_rows(
    fg: FlatGraph,
    deg: np.ndarray,
    alive: np.ndarray,
    trigger: int,
    k: int,
) -> np.ndarray:
    """Flat cascade delete: remove ``trigger``, then peel ``deg < k``.

    Mutates ``alive`` and ``deg`` in place (degrees of removed rows are
    left stale — only alive rows carry meaningful degrees) and returns
    the removed rows.  The removed set is the unique fixpoint of the
    DFS procedure of Algorithm 1 (lines 15-20), computed one cascade
    level per python iteration.
    """
    if not alive[trigger]:
        return _EMPTY
    n = fg.n
    removed: list[np.ndarray] = []
    cand = np.asarray([trigger], np.int64)
    while cand.size:
        alive[cand] = False
        removed.append(cand)
        nb = _gather(fg, cand)
        nb = nb[alive[nb]]
        if nb.size == 0:
            break
        deg -= np.bincount(nb, minlength=n)
        touched = np.unique(nb)
        cand = touched[deg[touched] < k]
    return np.concatenate(removed)


def restrict_rows(
    fg: FlatGraph, alive: np.ndarray, query_rows: list[int]
) -> np.ndarray | None:
    """Keep only the component of Q; ``None`` when Q breaks apart.

    Mutates ``alive`` down to the query component and returns the
    dropped rows.  Degrees of surviving rows need no update: a dropped
    component has no alive neighbor in the kept one.
    """
    if not all(alive[r] for r in query_rows):
        return None
    comp = component_mask(fg, query_rows[0], alive)
    if not all(comp[r] for r in query_rows):
        return None
    dropped = np.nonzero(alive & ~comp)[0]
    if dropped.size:
        alive[dropped] = False
    return dropped


def restrict_rows_incremental(
    fg: FlatGraph,
    alive: np.ndarray,
    query_rows: list[int],
    removed_rows: np.ndarray,
) -> np.ndarray | None:
    """Keep only the component of Q after ``removed_rows`` just died.

    Incremental form of :func:`restrict_rows` for the search loops'
    invariant: *before* the removal, the alive rows (plus the removed
    ones) formed a single connected component containing Q.  Any
    component split off by the removal must then contain an alive
    ex-neighbor of the removed set, so only those neighbors need
    classifying.  An early-exit BFS first re-verifies Q-side
    connectivity (stopping as soon as every query row is reached);
    each ex-neighbor's BFS then either touches the known query side
    (same component — its explored prefix joins the known side) or
    exhausts, which is exactly a dropped component.  Per peel round
    this replaces a full-component sweep with work proportional to
    the dropped components plus short early-exit prefixes.

    Mutates ``alive`` like :func:`restrict_rows` and returns the
    dropped rows, or ``None`` when Q itself breaks apart.
    """
    if not all(alive[r] for r in query_rows):
        return None
    nb = _gather(fg, removed_rows)
    touched = np.unique(nb[alive[nb]])
    if touched.size == 0:
        return _EMPTY
    n = fg.n
    qside = np.zeros(n, bool)
    q0 = query_rows[0]
    qside[q0] = True
    frontier = np.asarray([q0], np.int64)
    while frontier.size and not all(qside[r] for r in query_rows):
        step = _gather(fg, frontier)
        step = step[alive[step] & ~qside[step]]
        frontier = np.unique(step)
        qside[frontier] = True
    if not all(qside[r] for r in query_rows):
        return None
    seen = np.zeros(n, bool)
    dropped: list[np.ndarray] = []
    for a in touched.tolist():
        if qside[a] or not alive[a]:
            continue
        start = np.asarray([a], np.int64)
        seen[a] = True
        comp = [start]
        frontier = start
        hit = False
        while frontier.size:
            step = _gather(fg, frontier)
            step = step[alive[step]]
            if qside[step].any():
                hit = True
                break
            step = step[~seen[step]]
            frontier = np.unique(step)
            seen[frontier] = True
            comp.append(frontier)
        rows = np.concatenate(comp)
        seen[rows] = False
        if hit:
            qside[rows] = True
        else:
            alive[rows] = False
            dropped.append(rows)
    if not dropped:
        return _EMPTY
    return np.concatenate(dropped)


def k_core_containing_rows(
    fg: FlatGraph,
    mask: np.ndarray,
    query_rows: list[int],
    k: int,
) -> np.ndarray | None:
    """Row mask of the connected k-core of ``fg[mask]`` containing Q.

    The flat analogue of :func:`repro.graph.core.k_core_containing`
    restricted to an induced subgraph, without materializing it: peel
    ``deg < k`` within the mask, then keep Q's component.  ``None``
    when a query row is peeled away or the rows straddle components.
    """
    n = fg.n
    alive = mask.copy()
    deg = alive_degrees(fg, alive)
    cand = np.nonzero(alive & (deg < k))[0]
    while cand.size:
        alive[cand] = False
        nb = _gather(fg, cand)
        nb = nb[alive[nb]]
        if nb.size == 0:
            cand = _EMPTY
            continue
        deg -= np.bincount(nb, minlength=n)
        touched = np.unique(nb)
        cand = touched[deg[touched] < k]
    if not all(alive[r] for r in query_rows):
        return None
    comp = component_mask(fg, query_rows[0], alive)
    if not all(comp[r] for r in query_rows):
        return None
    return comp


def deletion_chain_rows(
    fg: FlatGraph,
    query: Iterable[int],
    k: int,
    scores: Mapping[int, float],
    max_batches: int | None = None,
) -> tuple[list[set[int]], list[frozenset[int]]]:
    """Flat :func:`repro.core.peeling.deletion_chain` (id-space output).

    Same contract: ``chain[i]`` is the vertex-id set of the i-th MAC,
    ``batches[i]`` the set removed between chain[i] and chain[i+1].
    The heap orders by ``(score, row)``, which equals the reference
    ``(score, id)`` order because rows ascend with ids; the early
    Corollary-1 breaks discard the mutated state instead of restoring
    it (the reference restores only to immediately break too).
    """
    q = list(query)
    if not q:
        raise QueryError("query set must be non-empty")
    n = fg.n
    qrows = fg.rows_of(q)
    qrow_set = set(qrows)
    query_set = set(q)
    alive = np.ones(n, bool)
    deg = np.diff(fg.indptr).astype(np.int64)
    ids = fg.ids
    heap = [(scores[ids[r]], r) for r in range(n)]
    heapq.heapify(heap)
    current = set(ids)
    chain: list[set[int]] = [set(current)]
    batches: list[frozenset[int]] = []
    while heap:
        _s, r = heapq.heappop(heap)
        if not alive[r]:
            continue
        if r in qrow_set:
            break  # Corollary 1, condition (1): Q member is the minimum.
        removed = cascade_rows(fg, deg, alive, r, k)
        removed_ids = {ids[i] for i in removed.tolist()}
        if removed_ids & query_set:
            break  # Corollary 1, condition (2): cascade destroys Q.
        dropped = restrict_rows_incremental(fg, alive, qrows, removed)
        if dropped is None:
            break
        batch = frozenset(
            removed_ids | {ids[i] for i in dropped.tolist()}
        )
        current -= batch
        batches.append(batch)
        chain.append(set(current))
        if max_batches is not None and len(chain) > max_batches + 1:
            chain.pop(0)
            batches.pop(0)
    return chain, batches
