"""Backend selection shared by every kernel-accelerated entry point.

``"flat"`` runs the vectorized CSR kernels, ``"python"`` the original
dict/heap implementations, and ``"auto"`` picks per call site: flat for
graphs large enough that numpy wins, python below that (array setup has
a fixed cost the dict paths do not pay on tiny inputs).
"""

from __future__ import annotations

from repro.errors import GraphError

#: Valid backend selectors, in every ``backend=`` parameter.
BACKENDS = ("auto", "flat", "python")

#: ``"auto"`` switches to the flat kernels at this vertex count.  The
#: flat paths pay a CSR conversion per call; measured one-shot breakeven
#: against the python paths sits around a couple thousand vertices
#: (callers that convert once and reuse — e.g. the engine's prepared
#: stages — can force ``"flat"`` below it).
AUTO_FLAT_MIN_VERTICES = 2048


def resolve_backend(backend: str, num_vertices: int) -> str:
    """Map a backend selector to the concrete ``"flat"``/``"python"``."""
    if backend not in BACKENDS:
        raise GraphError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "flat" if num_vertices >= AUTO_FLAT_MIN_VERTICES else "python"
    return backend
