"""Flat-array compute kernels: the package's performance layer.

Every hot kernel of the reproduction — core decomposition, peeling
cascades, connected components, bounded Dijkstra, G-tree matrix
assembly, corner-score dominance sweeps — has a vectorized
implementation here, operating on an int-indexed CSR graph
(:class:`FlatGraph`) instead of dicts-of-sets.  The higher layers
(``graph.core``, ``road.dijkstra``, ``road.gtree``,
``dominance.graph``) delegate to these kernels behind their existing
APIs; the pure-Python paths remain available as ``backend="python"``
and are asserted equivalent in ``tests/kernels/``.
"""

from repro.kernels.backend import BACKENDS, resolve_backend
from repro.kernels.core import (
    component_labels,
    component_mask,
    core_numbers,
    k_core_component,
    k_core_mask,
)
from repro.kernels.flatgraph import FlatGraph
from repro.kernels.livecore import (
    delete_edge_rows,
    insert_edge_rows,
    repair_delete_rows,
    repair_insert_rows,
)
from repro.kernels.paths import (
    all_pairs_minplus,
    bounded_dijkstra_rows,
    dense_weight_matrix,
    masked_dijkstra_rows,
)
from repro.kernels.search import (
    alive_degrees,
    cascade_rows,
    deletion_chain_rows,
    k_core_containing_rows,
    restrict_rows,
    restrict_rows_incremental,
    search_flatgraph,
)

__all__ = [
    "BACKENDS",
    "FlatGraph",
    "alive_degrees",
    "all_pairs_minplus",
    "bounded_dijkstra_rows",
    "cascade_rows",
    "component_labels",
    "component_mask",
    "core_numbers",
    "delete_edge_rows",
    "deletion_chain_rows",
    "dense_weight_matrix",
    "insert_edge_rows",
    "k_core_component",
    "k_core_containing_rows",
    "k_core_mask",
    "masked_dijkstra_rows",
    "repair_delete_rows",
    "repair_insert_rows",
    "restrict_rows",
    "restrict_rows_incremental",
    "resolve_backend",
    "search_flatgraph",
]
