"""`FlatGraph`: an immutable int-indexed CSR view of a graph.

The kernel layer's substrate.  Vertices are rows ``0..n-1``; the
original vertex ids round-trip through ``ids`` / ``row_of`` so callers
on :class:`~repro.graph.adjacency.AdjacencyGraph` or
:class:`~repro.road.network.RoadNetwork` (both int-keyed in practice)
convert losslessly.  Edges live in ``indptr``/``indices`` arrays (both
directions of every undirected edge), optionally weighted.

Int-keyed graphs take a fully vectorized construction path (rows are
the sorted vertex ids; neighbor streams map through ``searchsorted``);
arbitrary hashable vertices fall back to a dict-mapped fill loop.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from itertools import chain

import numpy as np

from repro.errors import GraphError


def ragged_offsets(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat-array offsets of the CSR slices of ``rows``.

    Returns ``(offsets, counts)``: ``offsets`` indexes the concatenated
    ``indptr[r]:indptr[r+1]`` ranges of every row (the shared ragged
    gather of the kernel layer), ``counts`` the per-row slice lengths.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64), counts
    csum = np.cumsum(counts) - counts
    offsets = np.repeat(starts - csum, counts) + np.arange(total)
    return offsets, counts


class FlatGraph:
    """CSR adjacency over rows ``0..n-1`` with an id ↔ row mapping.

    ``weights`` is ``None`` for unweighted graphs, else a float64 array
    aligned with ``indices``.  Instances are snapshots: mutating the
    source graph afterwards does not update the flat view.
    """

    __slots__ = ("n", "indptr", "indices", "weights", "ids", "_row_of",
                 "_ids_arr", "_lists", "_pairs")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        ids: list,
        weights: np.ndarray | None = None,
    ) -> None:
        self.n = len(ids)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.ids = ids
        self._row_of: dict[Hashable, int] | None = None
        self._ids_arr: np.ndarray | None = None
        self._lists: tuple | None = None
        self._pairs: list | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, graph) -> FlatGraph:
        """Flatten anything with ``vertices()``/``neighbors()`` (sets)."""
        return cls._from_neighbor_maps(graph, weighted=False)

    @classmethod
    def from_road(cls, road) -> FlatGraph:
        """Flatten a road network (``neighbors`` maps vertex → weight)."""
        return cls._from_neighbor_maps(road, weighted=True)

    @classmethod
    def _from_neighbor_maps(cls, graph, weighted: bool) -> FlatGraph:
        adj = getattr(graph, "_adj", None)
        if adj is None:  # generic duck-typed graph
            adj = {v: graph.neighbors(v) for v in graph.vertices()}
        n = len(adj)
        if n == 0:
            return cls(np.zeros(1, np.int64), np.zeros(0, np.int64), [],
                       np.zeros(0, np.float64) if weighted else None)
        keys = np.array(list(adj.keys()))
        # Integer keys (the common case) take the vectorized path; any
        # other dtype — floats, objects, bools — falls back to dicts.
        if keys.dtype.kind in "iu":
            ids_arr = np.sort(keys.astype(np.int64, copy=False))
            verts = ids_arr.tolist()
            nbr_maps = [adj[v] for v in verts]
            counts = np.fromiter(map(len, nbr_maps), np.int64, count=n)
            total = int(counts.sum())
            indptr = np.zeros(n + 1, np.int64)
            np.cumsum(counts, out=indptr[1:])
            raw = np.fromiter(
                chain.from_iterable(nbr_maps), np.int64, count=total
            )
            lo, hi = verts[0], verts[-1]
            if lo == 0 and hi == n - 1:
                indices = raw  # rows are the ids themselves
            elif hi - lo + 1 <= 4 * n:
                lut = np.empty(hi - lo + 1, np.int64)
                lut[ids_arr - lo] = np.arange(n)
                indices = lut[raw - lo]
            else:
                indices = np.searchsorted(ids_arr, raw)
            weights = (
                np.fromiter(
                    chain.from_iterable(m.values() for m in nbr_maps),
                    np.float64, count=total,
                )
                if weighted else None
            )
            fg = cls(indptr, indices, verts, weights)
            fg._ids_arr = ids_arr
            return fg
        verts = list(adj.keys())
        counts = np.fromiter(map(len, adj.values()), np.int64, count=n)
        total = int(counts.sum())
        indptr = np.zeros(n + 1, np.int64)
        np.cumsum(counts, out=indptr[1:])
        row_of = {v: i for i, v in enumerate(verts)}
        indices = np.empty(total, np.int64)
        weights = np.empty(total, np.float64) if weighted else None
        pos = 0
        for v in verts:
            nbrs = adj[v]
            for u in nbrs:
                indices[pos] = row_of[u]
                if weighted:
                    weights[pos] = nbrs[u]
                pos += 1
        fg = cls(indptr, indices, verts, weights)
        fg._row_of = row_of
        return fg

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple], weighted: bool | None = None
    ) -> FlatGraph:
        """Build from ``(u, v)`` or ``(u, v, w)`` int tuples.

        Undirected simple-graph semantics: self-loops are rejected,
        duplicate edges collapse (keeping the minimum weight).
        """
        rows = list(edges)
        if not rows:
            return cls(np.zeros(1, np.int64), np.zeros(0, np.int64), [],
                       np.zeros(0, np.float64) if weighted else None)
        if weighted is None:
            weighted = len(rows[0]) == 3
        u = np.asarray([e[0] for e in rows], dtype=np.int64)
        v = np.asarray([e[1] for e in rows], dtype=np.int64)
        if np.any(u == v):
            raise GraphError("self-loops not allowed in a FlatGraph")
        w = (
            np.asarray([e[2] for e in rows], dtype=np.float64)
            if weighted else None
        )
        ids_arr = np.unique(np.concatenate([u, v]))
        ur, vr = np.searchsorted(ids_arr, u), np.searchsorted(ids_arr, v)
        # canonical (min, max) keys to collapse duplicates
        lo, hi = np.minimum(ur, vr), np.maximum(ur, vr)
        key = lo * len(ids_arr) + hi
        order = np.argsort(key, kind="stable")
        keep = np.ones(len(key), bool)
        keep[1:] = key[order][1:] != key[order][:-1]
        if w is not None:
            # min weight per duplicate group
            w_sorted = np.minimum.reduceat(
                w[order], np.nonzero(keep)[0]
            )
        lo, hi = lo[order][keep], hi[order][keep]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        if w is not None:
            ww = np.concatenate([w_sorted, w_sorted])
        n = len(ids_arr)
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, np.int64)
        np.cumsum(counts, out=indptr[1:])
        order2 = np.argsort(src, kind="stable")
        indices = dst[order2]
        weights = ww[order2] if w is not None else None
        fg = cls(indptr, indices, ids_arr.tolist(), weights)
        fg._ids_arr = ids_arr
        return fg

    # ------------------------------------------------------------------
    # snapshot round-trip (repro.store)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """CSR arrays + id map as plain numpy arrays (snapshot payload).

        Only int-keyed graphs serialize (the library's road and social
        substrates); arbitrary hashable ids have no array representation.
        """
        ids = np.asarray(self.ids)
        if ids.dtype.kind not in "iu":
            raise GraphError(
                "only int-keyed FlatGraphs can be serialized to arrays"
            )
        out = {
            "indptr": self.indptr,
            "indices": self.indices,
            "ids": ids.astype(np.int64, copy=False),
        }
        if self.weights is not None:
            out["weights"] = self.weights
        return out

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        ids: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> FlatGraph:
        """Rebuild a FlatGraph from :meth:`to_arrays` output (no copies)."""
        ids_arr = np.asarray(ids, np.int64)
        fg = cls(
            np.asarray(indptr, np.int64),
            np.asarray(indices, np.int64),
            ids_arr.tolist(),
            None if weights is None else np.asarray(weights, np.float64),
        )
        if ids_arr.size == 0 or bool(np.all(np.diff(ids_arr) > 0)):
            fg._ids_arr = ids_arr  # sorted ids: keep the bisection path
        return fg

    # ------------------------------------------------------------------
    # id ↔ row mapping
    # ------------------------------------------------------------------
    @property
    def row_map(self) -> dict:
        """Lazily-built ``{vertex id: row}`` dict."""
        if self._row_of is None:
            self._row_of = {v: i for i, v in enumerate(self.ids)}
        return self._row_of

    def row_of(self, vertex) -> int:
        # Sorted int ids resolve by bisection — no O(n) dict build for
        # a handful of lookups (e.g. the engine's query rows).
        if self._ids_arr is not None:
            try:
                pos = int(np.searchsorted(self._ids_arr, vertex))
            except TypeError:
                pos = self.n
            if pos < self.n and self.ids[pos] == vertex:
                return pos
            raise GraphError(f"vertex {vertex!r} not in FlatGraph")
        try:
            return self.row_map[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} not in FlatGraph") from None

    def __contains__(self, vertex) -> bool:
        try:
            self.row_of(vertex)
        except GraphError:
            return False
        return True

    def id_of(self, row: int):
        return self.ids[row]

    def rows_of(self, vertices: Iterable) -> list[int]:
        if self._ids_arr is not None:
            arr = np.fromiter(vertices, np.int64)
            pos = np.searchsorted(self._ids_arr, arr)
            clipped = np.minimum(pos, self.n - 1)
            if (pos >= self.n).any() or (self._ids_arr[clipped] != arr).any():
                missing = arr[
                    (pos >= self.n) | (self._ids_arr[clipped] != arr)
                ]
                raise GraphError(
                    f"vertex {missing[0]!r} not in FlatGraph"
                )
            return pos.tolist()
        m = self.row_map
        try:
            return [m[v] for v in vertices]
        except KeyError as exc:
            raise GraphError(
                f"vertex {exc.args[0]!r} not in FlatGraph"
            ) from None

    def select_ids(self, mask: np.ndarray) -> list:
        """Vertex ids of the rows selected by a boolean mask."""
        if self._ids_arr is not None:
            return self._ids_arr[mask].tolist()
        return [self.ids[i] for i in np.nonzero(mask)[0]]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0]) // 2

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbor_rows(self, row: int) -> np.ndarray:
        return self.indices[self.indptr[row]:self.indptr[row + 1]]

    def lists(self) -> tuple[list[int], list[int], list[float] | None]:
        """CSR arrays as python lists (cached) — the Dijkstra hot path.

        Plain list indexing beats both dict hashing and numpy scalar
        indexing inside the per-vertex heap loop, which is why the
        shortest-path kernels run on this view.
        """
        if self._lists is None:
            self._lists = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist() if self.weights is not None else None,
            )
        return self._lists

    def adjacency_pairs(self) -> list[list[tuple[int, float]]]:
        """Per-row ``[(neighbor row, weight), ...]`` lists (cached).

        The tightest iteration shape python offers for the Dijkstra
        inner loop: one tuple unpack per neighbor, no index arithmetic.
        """
        if self._pairs is None:
            ptr, ind, wts = self.lists()
            if wts is None:
                raise GraphError("adjacency_pairs needs a weighted graph")
            self._pairs = [
                list(zip(ind[ptr[r]:ptr[r + 1]], wts[ptr[r]:ptr[r + 1]]))
                for r in range(self.n)
            ]
        return self._pairs

    def relabel(self, values: np.ndarray) -> dict:
        """``{vertex id: values[row]}`` for a per-row result array."""
        return dict(zip(self.ids, values.tolist()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "weighted" if self.weights is not None else "unweighted"
        return f"FlatGraph(|V|={self.n}, |E|={self.num_edges}, {kind})"
