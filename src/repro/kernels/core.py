"""Vectorized core decomposition and component kernels over CSR arrays.

``core_numbers`` replaces the per-vertex Batagelj–Zaversnik bucket walk
with level-synchronous batch peeling: every cascade round removes *all*
current candidates at once and updates neighbor degrees with one ragged
gather + ``bincount``, so the python-level loop runs once per cascade
round instead of once per vertex.  On power-law social graphs (shallow
cascades) that is a large constant-factor win; the result is exactly the
coreness array of the sequential algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.flatgraph import FlatGraph, ragged_offsets

_EMPTY = np.empty(0, np.int64)


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor rows of ``rows`` (ragged CSR gather)."""
    offsets, _counts = ragged_offsets(indptr, rows)
    return indices[offsets]


def core_numbers(fg: FlatGraph) -> np.ndarray:
    """Coreness of every row (the k-core decomposition), batch-peeled."""
    n = fg.n
    if n == 0:
        return np.zeros(0, np.int64)
    indptr, indices = fg.indptr, fg.indices
    deg = np.diff(indptr).astype(np.int64)
    core = np.zeros(n, np.int64)
    alive = np.ones(n, bool)
    remaining = n
    k = 0
    cand = np.nonzero(deg <= 0)[0]
    while remaining:
        if cand.size == 0:
            # All alive degrees exceed k: jump to the next level.
            k = int(deg[alive].min())
            cand = np.nonzero(alive & (deg <= k))[0]
        while cand.size:
            core[cand] = k
            alive[cand] = False
            remaining -= cand.size
            if remaining == 0:
                break
            nb = _gather_neighbors(indptr, indices, cand)
            nb = nb[alive[nb]]
            if nb.size == 0:
                cand = _EMPTY
                break
            deg -= np.bincount(nb, minlength=n)
            # New candidates can only appear among just-touched rows.
            touched = np.unique(nb)
            cand = touched[deg[touched] <= k]
    return core


def k_core_mask(
    fg: FlatGraph, k: int, core: np.ndarray | None = None
) -> np.ndarray:
    """Boolean row mask of the maximal k-core (coreness >= k)."""
    if core is None:
        core = core_numbers(fg)
    return core >= k


def component_mask(
    fg: FlatGraph, source_row: int, mask: np.ndarray | None = None
) -> np.ndarray:
    """Rows of the connected component of ``source_row`` (array BFS).

    ``mask`` restricts the traversal to an induced subgraph; the source
    must lie inside it.
    """
    n = fg.n
    seen = np.zeros(n, bool)
    if mask is not None and not mask[source_row]:
        return seen
    seen[source_row] = True
    frontier = np.asarray([source_row], dtype=np.int64)
    indptr, indices = fg.indptr, fg.indices
    # Scratch mask for per-level frontier dedup: marking + flatnonzero
    # is a linear scan, far cheaper than hashing every gathered edge
    # with np.unique (this BFS runs once per peel round in the search
    # loops, so its constant factor is the restrict stage's cost).
    scratch = np.zeros(n, bool)
    while frontier.size:
        nb = _gather_neighbors(indptr, indices, frontier)
        if mask is not None:
            nb = nb[mask[nb]]
        nb = nb[~seen[nb]]
        if nb.size == 0:
            break
        scratch[nb] = True
        frontier = np.flatnonzero(scratch)
        scratch[frontier] = False
        seen[frontier] = True
    return seen


def component_labels(
    fg: FlatGraph, mask: np.ndarray | None = None
) -> np.ndarray:
    """Connected-component label per row (-1 for rows outside ``mask``)."""
    labels = np.full(fg.n, -1, np.int64)
    todo = (
        np.ones(fg.n, bool) if mask is None else mask.copy()
    )
    label = 0
    while True:
        rest = np.nonzero(todo)[0]
        if rest.size == 0:
            return labels
        comp = component_mask(fg, int(rest[0]), mask)
        labels[comp] = label
        todo &= ~comp
        label += 1


def k_core_component(
    fg: FlatGraph,
    query_rows: list[int],
    k: int,
    core: np.ndarray | None = None,
) -> np.ndarray | None:
    """Row mask of the connected k-core containing all ``query_rows``.

    The flat version of Lemma 2/3's k-ĉore extraction: ``None`` when a
    query row falls outside the k-core or the rows straddle components.
    """
    mask = k_core_mask(fg, k, core)
    if not all(mask[r] for r in query_rows):
        return None
    comp = component_mask(fg, query_rows[0], mask)
    if not all(comp[r] for r in query_rows):
        return None
    return comp
