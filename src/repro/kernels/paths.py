"""Shortest-path kernels: heap-on-arrays Dijkstra and dense min-plus.

``bounded_dijkstra_rows`` is the flat counterpart of
``road.dijkstra.bounded_dijkstra``: the distance table is a flat list
indexed by row (no hashing) and adjacency comes from the CSR arrays'
list view.  ``all_pairs_minplus`` is the vectorized Floyd–Warshall used
by the G-tree matrix assembly, where one (B, B) numpy relaxation per
pivot replaces a per-border python Dijkstra over the border mini-graph.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

import numpy as np

from repro.errors import GraphError
from repro.kernels.flatgraph import FlatGraph, ragged_offsets

INF = math.inf


def bounded_dijkstra_rows(
    fg: FlatGraph,
    seeds: Iterable[tuple[int, float]],
    bound: float = INF,
) -> dict[int, float]:
    """Distances (<= bound) from multi-point seeds, keyed by row.

    ``seeds`` are ``(row, initial distance)`` pairs — two entries encode
    a source lying mid-edge.  The distance table is a flat list indexed
    by row (no hashing); rows are settled in distance order, so the
    returned dict iterates nearest-first.
    """
    adj = fg.adjacency_pairs()
    dist = [INF] * fg.n
    heap = []
    for row, off in seeds:
        if off <= bound and off < dist[row]:
            dist[row] = off
            heap.append((off, row))
    heapq.heapify(heap)
    out: dict[int, float] = {}
    pop, push = heapq.heappop, heapq.heappush
    while heap:
        d, u = pop(heap)
        if u in out or d > dist[u]:
            continue
        out[u] = d
        for v, w in adj[u]:
            nd = d + w
            if nd <= bound and nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    return out


def masked_dijkstra_rows(
    fg: FlatGraph, source_row: int, allowed, bound: float = INF
) -> dict[int, float]:
    """Single-source distances restricted to rows in ``allowed``.

    ``allowed`` is a set-like container of row indices, or a boolean
    row mask (converted up front — ``in`` on a numpy array would test
    element equality, not membership).  The source must be allowed.
    """
    if isinstance(allowed, np.ndarray):
        allowed = (
            set(np.nonzero(allowed)[0].tolist())
            if allowed.dtype == bool
            else set(allowed.tolist())
        )
    adj = fg.adjacency_pairs()
    dist = {source_row: 0.0}
    out: dict[int, float] = {}
    heap = [(0.0, source_row)]
    pop, push = heapq.heappop, heapq.heappush
    while heap:
        d, u = pop(heap)
        if u in out:
            continue
        out[u] = d
        for v, w in adj[u]:
            if v not in allowed:
                continue
            nd = d + w
            if nd <= bound and nd < dist.get(v, INF):
                dist[v] = nd
                push(heap, (nd, v))
    return out


def dense_weight_matrix(fg: FlatGraph, rows: np.ndarray) -> np.ndarray:
    """(L, L) direct-edge weight matrix of the subgraph induced on rows.

    ``rows`` must be sorted ascending.  Missing edges are +inf, the
    diagonal 0 — the seed matrix for :func:`all_pairs_minplus`.  Work is
    O(L + incident edges): neighbor columns resolve to local positions
    by bisection into ``rows``, with no whole-graph scratch array.
    """
    if fg.weights is None:
        raise GraphError("dense_weight_matrix needs a weighted FlatGraph")
    rows = np.asarray(rows, dtype=np.int64)
    m = rows.shape[0]
    out = np.full((m, m), INF)
    np.fill_diagonal(out, 0.0)
    if m == 0:
        return out
    offsets, counts = ragged_offsets(fg.indptr, rows)
    if offsets.size:
        src = np.repeat(np.arange(m), counts)
        cols = fg.indices[offsets]
        dst = np.searchsorted(rows, cols)
        clipped = np.minimum(dst, m - 1)
        keep = rows[clipped] == cols
        out[src[keep], clipped[keep]] = fg.weights[offsets][keep]
    return out


def all_pairs_minplus(dense: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths by in-place vectorized Floyd–Warshall.

    ``dense`` is a square direct-distance matrix (inf = no edge, 0 on
    the diagonal).  Each pivot applies one (L, L) min-plus relaxation;
    with non-negative weights the result equals per-source Dijkstra.
    """
    n = dense.shape[0]
    for k in range(n):
        np.minimum(dense, dense[:, k, None] + dense[None, k, :], out=dense)
    return dense
