"""Thread-safe LRU caches backing the :class:`~repro.engine.MACEngine`.

The engine keys every prepared artifact (range-filter maps, coreness
decompositions, (k,t)-cores, r-dominance graphs) on a canonicalized
query tuple, so identical requests — and requests that share a prefix of
the pipeline — reuse work.  ``LRUCache.get_or_create`` deduplicates
concurrent builds of the same key: when several batch workers ask for
one missing entry, a single thread computes it and the rest wait on an
event instead of redoing the (potentially seconds-long) build.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time telemetry snapshot of one cache."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class LRUCache:
    """A small LRU map with hit/miss accounting and build deduplication.

    Values may be ``None`` (the engine caches "this (k,t)-core is empty"
    just like any other answer); presence is tracked by key, not by
    truthiness.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    def get_or_create(
        self,
        key: Hashable,
        factory: Callable[[], Any],
        deadline: Any | None = None,
    ) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``, building via ``factory`` on a miss.

        Concurrent callers with the same missing key block until the one
        elected builder finishes (or, if it raises, the next waiter takes
        over the build).  Waiters that receive a value built by another
        thread count as hits: they paid none of the build cost.

        ``deadline`` (an object with ``remaining()``/``check()``, see
        :class:`repro.deadline.Deadline`) bounds the *wait*: a budgeted
        caller stuck behind someone else's slow build fails typed
        (``check`` raises) instead of blocking unboundedly — without it,
        a deadline-carrying request could hang on ``event.wait()`` for
        the full duration of an unbudgeted caller's build.
        """
        while True:
            with self._lock:
                if key in self._data:
                    self._hits += 1
                    self._data.move_to_end(key)
                    return self._data[key], True
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    elected = True
                else:
                    elected = False
            if not elected:
                if deadline is None:
                    event.wait()
                elif not event.wait(
                    timeout=max(deadline.remaining(), 0.0)
                ):
                    # Timed out waiting on the in-flight build: expired
                    # (check raises) or a clock sliver (loop re-waits).
                    deadline.check("waiting for an in-flight build")
                continue  # re-check: value present, evicted, or build failed
            try:
                value = factory()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()
                raise
            with self._lock:
                self._misses += 1
                self._data[key] = value
                self._data.move_to_end(key)
                while len(self._data) > self.capacity:
                    self._data.popitem(last=False)
                self._inflight.pop(key, None)
            event.set()
            return value, False

    def evict_if(self, pred: Callable[[Hashable, Any], bool]) -> int:
        """Drop every entry for which ``pred(key, value)`` is true.

        The dirty-region invalidation hook of :mod:`repro.live`: a
        mutation computes its touched footprint and evicts only the
        entries that intersect it, leaving disjoint hot entries warm.
        Returns the number of entries evicted.  ``pred`` runs under the
        cache lock, so it must be cheap and must not re-enter the cache.
        """
        with self._lock:
            doomed = [
                key for key, value in self._data.items() if pred(key, value)
            ]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    # ------------------------------------------------------------------
    def items(self) -> list[tuple[Hashable, Any]]:
        """Snapshot of ``(key, value)`` pairs, oldest first (no counters).

        The save path of :mod:`repro.store` iterates this to persist
        prepared entries; LRU order and hit/miss accounting are
        untouched.
        """
        with self._lock:
            return list(self._data.items())

    def put(self, key: Hashable, value: Any) -> None:
        """Insert an entry directly (snapshot restore; no miss counted)."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def peek(self, key: Hashable) -> tuple[Any, bool]:
        """``(value, present)`` without touching LRU order or counters."""
        with self._lock:
            if key in self._data:
                return self._data[key], True
            return None, False

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping every cached entry.

        Worker processes call this at boot so their telemetry reflects
        only the traffic they served — the forked cache *contents*
        (snapshot-warmed stages) stay, but the parent's accounting does
        not leak into per-worker counters.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                capacity=self.capacity,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats
        return (
            f"LRUCache(size={s.size}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses})"
        )
