"""The stateful query-engine API: prepared indexes + typed requests.

Quickstart::

    from repro import MACEngine, MACRequest, PreferenceRegion, datasets

    ds = datasets.load_dataset("sf+slashdot", scale=0.25, seed=7)
    engine = MACEngine(ds.network)
    request = MACRequest.make(
        ds.suggest_query(4, k=6, t=150.0), k=6, t=150.0,
        region=PreferenceRegion.from_sigma([0.3, 0.3], 0.01),
    )
    print(engine.explain(request).summary())
    result = engine.search(request)          # cold: builds + caches
    result = engine.search(request)          # warm: result-cache hit
    results = engine.search_batch([request] * 8, workers=4)
    print(engine.telemetry())

See ``ENGINE.md`` at the repository root for the full guide, including
the migration table from the free-function API.
"""

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.engine import (
    EngineTelemetry,
    MACEngine,
    QueryPlan,
    merge_telemetry,
)
from repro.engine.request import MACRequest, region_key

__all__ = [
    "MACEngine",
    "MACRequest",
    "QueryPlan",
    "EngineTelemetry",
    "CacheStats",
    "LRUCache",
    "merge_telemetry",
    "region_key",
]
